//! OPT — exact pairwise priority assignment via specialised
//! branch-and-bound.

use std::time::{Duration, Instant};

use msmr_dca::{Analysis, DelayBoundKind, DelayEvaluator};
use msmr_model::{JobId, JobSet, Time};

use crate::orientation::Orientation;
use crate::PairwiseAssignment;

/// How many search nodes are explored between wall-clock deadline checks;
/// a power of two so the check compiles to a mask test.
const DEADLINE_CHECK_INTERVAL: u64 = 4_096;

/// Configuration of the pairwise branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseSearchConfig {
    /// Maximum number of search nodes before the search is truncated.
    /// Truncation is reported as [`PairwiseSearchOutcome::Unknown`], never
    /// silently as infeasible.
    pub node_limit: u64,
    /// Optional wall-clock budget; exceeding it truncates the search the
    /// same way the node limit does (checked every few thousand nodes).
    pub time_limit: Option<Duration>,
}

impl Default for PairwiseSearchConfig {
    fn default() -> Self {
        PairwiseSearchConfig {
            node_limit: 5_000_000,
            time_limit: None,
        }
    }
}

/// Counters describing one branch-and-bound run, reported by
/// [`OptPairwise::assign_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairwiseSearchStats {
    /// Search nodes explored.
    pub nodes: u64,
    /// Whether the node or time budget truncated the search.
    pub truncated: bool,
}

/// Result of an exact pairwise priority search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairwiseSearchOutcome {
    /// A feasible pairwise assignment was found.
    Feasible(PairwiseAssignment),
    /// The search proved that no pairwise assignment satisfies every
    /// deadline under the selected bound.
    Infeasible,
    /// The node budget was exhausted before a conclusion was reached.
    Unknown,
}

impl PairwiseSearchOutcome {
    /// The assignment, if one was found.
    #[must_use]
    pub fn assignment(&self) -> Option<&PairwiseAssignment> {
        match self {
            PairwiseSearchOutcome::Feasible(a) => Some(a),
            _ => None,
        }
    }

    /// `true` if a feasible assignment was found.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, PairwiseSearchOutcome::Feasible(_))
    }

    /// `true` if the search reached a definite answer.
    #[must_use]
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, PairwiseSearchOutcome::Unknown)
    }
}

/// OPT — an exact solver for problem P2: assign a priority direction to
/// every competing job pair such that every job's delay bound stays within
/// its deadline.
///
/// The paper formulates this as an ILP (Eqs. 7–9) and solves it with
/// Gurobi. This engine instead branches directly on the orientation
/// variables `X_{i,k}`, pruning a branch as soon as the partial delay bound
/// of either job of the newly oriented pair exceeds its deadline. Because
/// every delay bound of `msmr-dca` is monotone in both `H_i` and `L_i`,
/// the partial bound is a valid lower bound and the search is exact: on
/// instances completed within the node budget the answer matches the ILP
/// optimum. (The verbatim ILP encoding is available as
/// [`PairwiseIlp`](crate::PairwiseIlp) and is cross-checked against this
/// engine in the test suite.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptPairwise {
    bound: DelayBoundKind,
    config: PairwiseSearchConfig,
}

impl OptPairwise {
    /// Creates the solver for the given delay bound with the default
    /// search budget.
    #[must_use]
    pub fn new(bound: DelayBoundKind) -> Self {
        OptPairwise {
            bound,
            config: PairwiseSearchConfig::default(),
        }
    }

    /// Creates the solver with an explicit search budget.
    #[must_use]
    pub fn with_config(bound: DelayBoundKind, config: PairwiseSearchConfig) -> Self {
        OptPairwise { bound, config }
    }

    /// The delay bound used by the solver.
    #[must_use]
    pub const fn bound(&self) -> DelayBoundKind {
        self.bound
    }

    /// The active search configuration.
    #[must_use]
    pub const fn config(&self) -> PairwiseSearchConfig {
        self.config
    }

    /// Searches for a feasible pairwise assignment.
    #[must_use]
    pub fn assign(&self, jobs: &JobSet) -> PairwiseSearchOutcome {
        let analysis = Analysis::new(jobs);
        self.assign_with_analysis(&analysis)
    }

    /// Like [`OptPairwise::assign`] but reuses a precomputed [`Analysis`].
    #[must_use]
    pub fn assign_with_analysis(&self, analysis: &Analysis<'_>) -> PairwiseSearchOutcome {
        self.assign_with_stats(analysis).0
    }

    /// Like [`OptPairwise::assign_with_analysis`], additionally reporting
    /// how many nodes the search explored and whether it was truncated.
    ///
    /// The search keeps a *single* mutable state — an incremental
    /// [`DelayEvaluator`] plus a flat tri-state orientation matrix — and
    /// undoes each pair decision on backtrack instead of cloning an
    /// assignment per node. For job populations of `n ≤ 64` a search node
    /// therefore performs zero heap allocations.
    #[must_use]
    pub fn assign_with_stats(
        &self,
        analysis: &Analysis<'_>,
    ) -> (PairwiseSearchOutcome, PairwiseSearchStats) {
        let jobs = analysis.jobs();
        let evaluator = analysis.evaluator(self.bound);

        // Jobs with no interference at all must already be feasible on
        // their own, otherwise nothing can help them. The isolated bounds
        // double as the slack keys of the pair ordering below.
        let mut alone: Vec<Time> = Vec::with_capacity(jobs.len());
        for i in jobs.job_ids() {
            let delay = evaluator.delay(i);
            if delay > jobs.job(i).deadline() {
                return (
                    PairwiseSearchOutcome::Infeasible,
                    PairwiseSearchStats::default(),
                );
            }
            alone.push(delay);
        }

        // Undirected competing pairs, most critical first (smallest slack
        // of either endpoint when the rest of the system is ignored).
        let mut pairs: Vec<(JobId, JobId)> = Vec::new();
        for i in jobs.job_ids() {
            for k in analysis.tables().competitor_mask(i).iter() {
                if i < k {
                    pairs.push((i, k));
                }
            }
        }
        let slack =
            |job: JobId| -> i128 { jobs.job(job).deadline().signed_diff(alone[job.index()]) };
        pairs.sort_by_cached_key(|&(a, b)| slack(a).min(slack(b)));

        let mut search = PairSearch {
            evaluator,
            orientation: Orientation::new(jobs.len()),
            jobs,
            pairs,
            node_limit: self.config.node_limit,
            deadline: self.config.time_limit.map(|limit| Instant::now() + limit),
            nodes: 0,
            truncated: false,
            solution: None,
        };
        search.explore(0);

        let stats = PairwiseSearchStats {
            nodes: search.nodes,
            truncated: search.truncated,
        };
        let outcome = match (search.solution, search.truncated) {
            (Some(assignment), _) => PairwiseSearchOutcome::Feasible(assignment),
            (None, true) => PairwiseSearchOutcome::Unknown,
            (None, false) => PairwiseSearchOutcome::Infeasible,
        };
        (outcome, stats)
    }
}

/// Mutable state of one branch-and-bound run: one incremental evaluator
/// and one orientation matrix, mutated on the way down and undone on
/// backtrack.
struct PairSearch<'a, 'j> {
    evaluator: DelayEvaluator<'a>,
    orientation: Orientation,
    jobs: &'j JobSet,
    pairs: Vec<(JobId, JobId)>,
    node_limit: u64,
    deadline: Option<Instant>,
    nodes: u64,
    truncated: bool,
    solution: Option<PairwiseAssignment>,
}

impl PairSearch<'_, '_> {
    /// Depth-first exploration over the pair list. Returns `true` when the
    /// search should stop (solution found or budget exhausted).
    fn explore(&mut self, depth: usize) -> bool {
        if self.nodes >= self.node_limit {
            self.truncated = true;
            return true;
        }
        if let Some(deadline) = self.deadline {
            if self.nodes.is_multiple_of(DEADLINE_CHECK_INTERVAL) && Instant::now() >= deadline {
                self.truncated = true;
                return true;
            }
        }
        self.nodes += 1;

        if depth == self.pairs.len() {
            self.solution = Some(self.orientation.to_assignment());
            return true;
        }

        let (a, b) = self.pairs[depth];
        // Deadline-monotonic direction first: it is the direction DM/DMR
        // would pick, which empirically succeeds most often.
        let prefer_a_first = self.jobs.job(a).deadline() <= self.jobs.job(b).deadline();
        let orientations = if prefer_a_first {
            [(a, b), (b, a)]
        } else {
            [(b, a), (a, b)]
        };

        for (winner, loser) in orientations {
            self.orientation.set(winner, loser);
            self.evaluator.add_higher(loser, winner);
            self.evaluator.add_lower(winner, loser);
            // Monotonicity: the partial bounds of the two affected jobs are
            // lower bounds on their final delays, so pruning here is safe.
            if self.evaluator.fits(winner) && self.evaluator.fits(loser) && self.explore(depth + 1)
            {
                return true;
            }
            self.evaluator.remove_higher(loser, winner);
            self.evaluator.remove_lower(winner, loser);
            self.orientation.clear(winner, loser);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_dca::InterferenceSets;
    use msmr_model::{JobSetBuilder, PreemptionPolicy};

    fn jid(i: usize) -> JobId {
        JobId::new(i)
    }

    /// The Observation V.1 system: a pairwise assignment exists although no
    /// total ordering does.
    fn observation_v1() -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s1", 2, PreemptionPolicy::Preemptive)
            .stage("s2", 2, PreemptionPolicy::Preemptive)
            .stage("s3", 2, PreemptionPolicy::Preemptive);
        let rows: [([u64; 3], [usize; 3], u64); 4] = [
            ([5, 7, 15], [0, 1, 1], 60),
            ([7, 9, 17], [1, 1, 1], 55),
            ([6, 8, 30], [0, 0, 0], 55),
            ([2, 4, 3], [1, 0, 0], 50),
        ];
        for (times, resources, deadline) in rows {
            b.job()
                .deadline(Time::new(deadline))
                .stage_time(Time::new(times[0]), resources[0])
                .stage_time(Time::new(times[1]), resources[1])
                .stage_time(Time::new(times[2]), resources[2])
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn observation_v1_pairwise_assignment_is_found() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let outcome = OptPairwise::new(DelayBoundKind::RefinedPreemptive).assign(&jobs);
        assert!(outcome.is_conclusive());
        let assignment = outcome.assignment().expect("Observation V.1 is feasible");
        assert!(assignment.is_complete(&jobs));
        assert!(assignment.is_feasible(&analysis, DelayBoundKind::RefinedPreemptive));
        // And it must be cyclic across resources (otherwise a total
        // ordering would exist): check it is *not* derivable from any
        // ordering by verifying OPDCA's conclusion indirectly — the four
        // pairwise decisions necessarily form the J3>J1>J2>J4>J3 cycle of
        // Figure 2(b) or its reverse.
        let cycle_a = assignment.is_higher(jid(2), jid(0))
            && assignment.is_higher(jid(0), jid(1))
            && assignment.is_higher(jid(1), jid(3))
            && assignment.is_higher(jid(3), jid(2));
        let cycle_b = assignment.is_higher(jid(0), jid(2))
            && assignment.is_higher(jid(1), jid(0))
            && assignment.is_higher(jid(3), jid(1))
            && assignment.is_higher(jid(2), jid(3));
        assert!(cycle_a || cycle_b, "unexpected assignment: {assignment}");
    }

    #[test]
    fn infeasible_sets_are_proven_infeasible() {
        // Two jobs on one CPU whose combined demand cannot meet the tighter
        // deadline in either order.
        let mut b = JobSetBuilder::new();
        b.stage("cpu", 1, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(5))
            .stage_time(Time::new(4), 0)
            .add()
            .unwrap();
        b.job()
            .deadline(Time::new(5))
            .stage_time(Time::new(4), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let outcome = OptPairwise::new(DelayBoundKind::RefinedPreemptive).assign(&jobs);
        assert_eq!(outcome, PairwiseSearchOutcome::Infeasible);
        assert!(!outcome.is_feasible());
        assert!(outcome.assignment().is_none());
    }

    #[test]
    fn isolated_overload_is_detected_immediately() {
        let mut b = JobSetBuilder::new();
        b.stage("cpu", 1, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(3))
            .stage_time(Time::new(10), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let outcome = OptPairwise::new(DelayBoundKind::RefinedPreemptive).assign(&jobs);
        assert_eq!(outcome, PairwiseSearchOutcome::Infeasible);
    }

    #[test]
    fn node_limit_reports_unknown() {
        let jobs = observation_v1();
        let solver = OptPairwise::with_config(
            DelayBoundKind::RefinedPreemptive,
            PairwiseSearchConfig {
                node_limit: 1,
                ..PairwiseSearchConfig::default()
            },
        );
        let outcome = solver.assign(&jobs);
        // With a single node the search cannot finish; it must not claim
        // infeasibility.
        assert!(matches!(
            outcome,
            PairwiseSearchOutcome::Unknown | PairwiseSearchOutcome::Feasible(_)
        ));
        assert_eq!(solver.config().node_limit, 1);
        assert_eq!(solver.bound(), DelayBoundKind::RefinedPreemptive);
    }

    #[test]
    fn agrees_with_exhaustive_enumeration_on_random_systems() {
        use msmr_workload::{RandomMsmrConfig, RandomMsmrGenerator};
        let generator = RandomMsmrGenerator::new(RandomMsmrConfig {
            jobs: (3, 5),
            stages: (2, 3),
            resources_per_stage: (1, 2),
            deadline_factor: (1.0, 2.5),
            ..RandomMsmrConfig::default()
        })
        .unwrap();
        for seed in 0..30 {
            let jobs = generator.generate_seeded(seed);
            let analysis = Analysis::new(&jobs);
            let bound = DelayBoundKind::RefinedPreemptive;
            let expected = exhaustive_pairwise_exists(&analysis, bound);
            let outcome = OptPairwise::new(bound).assign_with_analysis(&analysis);
            assert!(outcome.is_conclusive(), "seed {seed} hit the node limit");
            assert_eq!(outcome.is_feasible(), expected, "seed {seed} disagrees");
            if let Some(assignment) = outcome.assignment() {
                assert!(assignment.is_feasible(&analysis, bound));
            }
        }
    }

    /// Enumerates all `2^m` orientations of the competing pairs.
    fn exhaustive_pairwise_exists(analysis: &Analysis<'_>, bound: DelayBoundKind) -> bool {
        let jobs = analysis.jobs();
        let mut pairs = Vec::new();
        for i in jobs.job_ids() {
            for k in jobs.competitors(i) {
                if i < k {
                    pairs.push((i, k));
                }
            }
        }
        let m = pairs.len();
        for mask in 0u64..(1 << m) {
            let mut assignment = PairwiseAssignment::new();
            for (idx, &(a, b)) in pairs.iter().enumerate() {
                if mask & (1 << idx) != 0 {
                    assignment.set_higher(a, b);
                } else {
                    assignment.set_higher(b, a);
                }
            }
            if assignment.is_feasible(analysis, bound) {
                return true;
            }
        }
        m == 0
            && jobs.job_ids().all(|i| {
                analysis.delay_bound(bound, i, &InterferenceSets::default())
                    <= jobs.job(i).deadline()
            })
    }

    #[test]
    fn edge_hybrid_bound_is_supported() {
        let jobs = observation_v1();
        let outcome = OptPairwise::new(DelayBoundKind::EdgeHybrid).assign(&jobs);
        // The hybrid bound adds blocking, so the set may or may not be
        // feasible — but the search must terminate conclusively.
        assert!(outcome.is_conclusive());
        if let Some(assignment) = outcome.assignment() {
            let analysis = Analysis::new(&jobs);
            assert!(assignment.is_feasible(&analysis, DelayBoundKind::EdgeHybrid));
        }
    }
}
