//! Optimal fixed-priority scheduling for multi-stage multi-resource (MSMR)
//! distributed real-time systems.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Optimal Fixed Priority Scheduling in Multi-Stage Multi-Resource
//! Distributed Real-Time Systems"*, DATE 2024). On top of the delay
//! composition bounds of [`msmr_dca`] it provides:
//!
//! * [`Sdca`] — the OPA-compatible schedulability test `S_DCA(J_i, H_i,
//!   L_i)` of §IV-A, parameterised by the delay bound
//!   ([`DelayBoundKind`]).
//! * [`Opdca`] — Algorithm 1: Audsley's optimal priority assignment driven
//!   by `S_DCA`, producing a total [`PriorityOrdering`] (problem P1), plus
//!   the admission-controller variant used in Fig. 4d.
//! * [`PairwiseAssignment`] — the pairwise priority relation of problem
//!   P2, with [`Dm`] (deadline-monotonic), [`Dmr`] (Algorithm 2:
//!   deadline-monotonic & repair), and two exact engines for OPT:
//!   [`OptPairwise`] (a specialised branch-and-bound over the orientation
//!   variables) and [`PairwiseIlp`] (the paper's ILP formulation, Eqs.
//!   7–9, solved with the `msmr-ilp` substitute for Gurobi).
//! * [`Dcmp`] — the decomposition baseline of §VI-A: per-stage virtual
//!   deadlines plus simulated deadline-monotonic execution on the
//!   `msmr-sim` engine.
//! * [`admission`] — helpers shared by the admission-controller variants
//!   (rejected-heaviness metric of Fig. 4d).
//!
//! # Quick start
//!
//! ```
//! use msmr_dca::DelayBoundKind;
//! use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};
//! use msmr_sched::Opdca;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = JobSetBuilder::new();
//! b.stage("net", 1, PreemptionPolicy::Preemptive)
//!     .stage("cpu", 2, PreemptionPolicy::Preemptive);
//! b.job()
//!     .deadline(Time::from_millis(60))
//!     .stage_time(Time::from_millis(5), 0)
//!     .stage_time(Time::from_millis(30), 0)
//!     .add()?;
//! b.job()
//!     .deadline(Time::from_millis(50))
//!     .stage_time(Time::from_millis(8), 0)
//!     .stage_time(Time::from_millis(20), 1)
//!     .add()?;
//! let jobs = b.build()?;
//!
//! let result = Opdca::new(DelayBoundKind::RefinedPreemptive).assign(&jobs)?;
//! assert_eq!(result.ordering().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod dcmp;
mod dmr;
mod error;
mod ilp_encoding;
mod opdca;
mod opt;
mod ordering;
mod pairwise;
mod sdca;

pub use dcmp::{Dcmp, DcmpOutcome};
pub use dmr::{Dm, Dmr, PairwiseAdmissionOutcome};
pub use error::InfeasibleError;
pub use ilp_encoding::PairwiseIlp;
pub use opdca::{Opdca, OrderingAdmissionOutcome, OrderingResult};
pub use opt::{OptPairwise, PairwiseSearchConfig, PairwiseSearchOutcome};
pub use ordering::PriorityOrdering;
pub use pairwise::{PairwiseAssignment, PairwiseCycleError};
pub use sdca::Sdca;

// Re-export the bound selector so downstream users rarely need msmr-dca
// directly.
pub use msmr_dca::DelayBoundKind;
