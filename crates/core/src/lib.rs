//! Optimal fixed-priority scheduling for multi-stage multi-resource (MSMR)
//! distributed real-time systems.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Optimal Fixed Priority Scheduling in Multi-Stage Multi-Resource
//! Distributed Real-Time Systems"*, DATE 2024). On top of the delay
//! composition bounds of [`msmr_dca`] it provides:
//!
//! * [`Sdca`] — the OPA-compatible schedulability test `S_DCA(J_i, H_i,
//!   L_i)` of §IV-A, parameterised by the delay bound
//!   ([`DelayBoundKind`]).
//! * [`Opdca`] — Algorithm 1: Audsley's optimal priority assignment driven
//!   by `S_DCA`, producing a total [`PriorityOrdering`] (problem P1), plus
//!   the admission-controller variant used in Fig. 4d.
//! * [`PairwiseAssignment`] — the pairwise priority relation of problem
//!   P2, with [`Dm`] (deadline-monotonic), [`Dmr`] (Algorithm 2:
//!   deadline-monotonic & repair), and two exact engines for OPT:
//!   [`OptPairwise`] (a specialised branch-and-bound over the orientation
//!   variables) and [`PairwiseIlp`] (the paper's ILP formulation, Eqs.
//!   7–9, solved with the `msmr-ilp` substitute for Gurobi).
//! * [`Dcmp`] — the decomposition baseline of §VI-A: per-stage virtual
//!   deadlines plus simulated deadline-monotonic execution on the
//!   `msmr-sim` engine.
//! * [`admission`] — helpers shared by the admission-controller variants
//!   (rejected-heaviness metric of Fig. 4d).
//!
//! All six engines are also exposed through one object-safe seam:
//!
//! * [`Solver`] — `solve(&SolveCtx) -> Verdict` plus capability queries
//!   ([`Solver::is_exact`], [`Solver::supports_admission`],
//!   [`Solver::name`]), implemented by [`Dm`], [`Dmr`], [`Opdca`],
//!   [`OptPairwise`], [`PairwiseIlp`] and [`Dcmp`].
//! * [`SolveCtx`] — shared, lazily-built [`msmr_dca::Analysis`] (one
//!   `O(n²·N)` pass per job set, not per approach) and a [`Budget`]
//!   (node limit, wall-clock deadline).
//! * [`Verdict`] — the unified, serde-serializable report: accepted /
//!   rejected / undecided, an optional [`Witness`]
//!   ([`PriorityOrdering`] or [`PairwiseAssignment`]), per-job delay
//!   bounds and [`SolverStats`].
//! * [`SolverRegistry`] — maps names to boxed solvers, encodes the
//!   `DMR ⇒ OPT` / `OPDCA ⇒ OPT` implication shortcuts declaratively, and
//!   fans batches of job sets out over worker threads
//!   ([`SolverRegistry::evaluate_batch`]).
//!
//! # Quick start
//!
//! Build a job set, then evaluate every approach of the paper through the
//! registry — the analysis is computed once and shared, and OPT is
//! short-circuited whenever DMR or OPDCA already proves feasibility:
//!
//! ```
//! use msmr_dca::DelayBoundKind;
//! use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};
//! use msmr_sched::{Budget, SolverRegistry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = JobSetBuilder::new();
//! b.stage("net", 1, PreemptionPolicy::Preemptive)
//!     .stage("cpu", 2, PreemptionPolicy::Preemptive);
//! b.job()
//!     .deadline(Time::from_millis(60))
//!     .stage_time(Time::from_millis(5), 0)
//!     .stage_time(Time::from_millis(30), 0)
//!     .add()?;
//! b.job()
//!     .deadline(Time::from_millis(50))
//!     .stage_time(Time::from_millis(8), 0)
//!     .stage_time(Time::from_millis(20), 1)
//!     .add()?;
//! let jobs = b.build()?;
//!
//! let registry = SolverRegistry::paper_suite(DelayBoundKind::RefinedPreemptive);
//! let verdicts = registry.evaluate(&jobs, Budget::default());
//! assert_eq!(verdicts.len(), 5);
//! assert!(verdicts.iter().all(|v| v.is_accepted()));
//!
//! // Single solvers are addressable by name, e.g. for a CLI:
//! let opdca = registry.solver("OPDCA").expect("registered");
//! assert!(opdca.is_exact() && opdca.supports_admission());
//! # Ok(())
//! # }
//! ```
//!
//! Batches fan out over worker threads while keeping per-case results
//! identical to the sequential path:
//!
//! ```no_run
//! use msmr_dca::DelayBoundKind;
//! use msmr_model::JobSet;
//! use msmr_sched::{Budget, SolverRegistry};
//!
//! # fn load_cases() -> Vec<JobSet> { Vec::new() }
//! let registry = SolverRegistry::paper_suite(DelayBoundKind::EdgeHybrid);
//! let cases: Vec<JobSet> = load_cases();
//! let budget = Budget::default().with_node_limit(200_000);
//! let verdicts = registry.evaluate_batch(&cases, budget, msmr_par::default_threads());
//! ```
//!
//! The engine-specific constructors and entry points (`Opdca::assign`,
//! `OptPairwise::assign_with_analysis`, ...) remain available; the trait
//! impls are thin adapters over them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod dcmp;
mod dmr;
mod error;
mod ilp_encoding;
mod online;
mod opdca;
mod opt;
mod ordering;
mod orientation;
mod pairwise;
mod registry;
mod sdca;
mod solver;
mod solvers;

pub use dcmp::{Dcmp, DcmpOutcome};
pub use dmr::{Dm, Dmr, PairwiseAdmissionOutcome};
pub use error::InfeasibleError;
pub use ilp_encoding::PairwiseIlp;
pub use online::{
    AudsleyState, DeciderState, OnlineEvent, OnlineSolver, OnlineSuiteState, RepairState,
};
pub use opdca::{Opdca, OrderingAdmissionOutcome, OrderingResult};
pub use opt::{OptPairwise, PairwiseSearchConfig, PairwiseSearchOutcome, PairwiseSearchStats};
pub use ordering::PriorityOrdering;
pub use pairwise::{PairwiseAssignment, PairwiseCycleError};
pub use registry::SolverRegistry;
pub use sdca::Sdca;
pub use solver::{
    AdmissionVerdict, Budget, SolveCtx, Solver, SolverStats, UnsupportedMode, Verdict, VerdictKind,
    Witness,
};
pub use solvers::{DCMP, DM, DMR, OPDCA, OPT, OPT_ILP};

// Re-export the bound selector so downstream users rarely need msmr-dca
// directly.
pub use msmr_dca::DelayBoundKind;
