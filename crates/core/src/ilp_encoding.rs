//! The paper's ILP formulation of pairwise priority assignment (Eqs. 7–9),
//! solved with the `msmr-ilp` branch-and-bound solver.

use std::collections::BTreeMap;

use msmr_dca::{Analysis, DelayBoundKind};
use msmr_ilp::{LinExpr, Outcome, Problem, Solver, SolverConfig, VarId};
use msmr_model::{JobId, JobSet, StageId};

use crate::{PairwiseAssignment, PairwiseSearchOutcome};

/// The verbatim ILP formulation of OPT (§V-A): binary orientation variables
/// `X_{i,k}` (Eq. 7), the delay expression of Eq. 8 with the refined
/// job-additive terms of Eq. 6, and the big-M encoding of the
/// stage-additive maxima `θ_{i,j}` (Eq. 9), solved as a pure feasibility
/// problem with [`msmr_ilp::Solver`].
///
/// This engine exists to mirror the paper exactly (the authors used
/// Gurobi); it is cross-checked against the specialised
/// [`OptPairwise`](crate::OptPairwise) search in the test suite. For large
/// instances prefer `OptPairwise`, which exploits the monotonicity of the
/// delay bounds and scales much further.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseIlp {
    bound: DelayBoundKind,
    node_limit: u64,
    time_limit: Option<std::time::Duration>,
}

impl PairwiseIlp {
    /// Creates the encoder/solver for the given delay bound.
    ///
    /// # Panics
    ///
    /// Panics unless the bound is [`DelayBoundKind::RefinedPreemptive`]
    /// (the preemptive formulation of the paper) or
    /// [`DelayBoundKind::EdgeHybrid`] (its extension with a non-preemptive
    /// blocking term at the last stage, Eq. 10).
    #[must_use]
    pub fn new(bound: DelayBoundKind) -> Self {
        assert!(
            matches!(
                bound,
                DelayBoundKind::RefinedPreemptive | DelayBoundKind::EdgeHybrid
            ),
            "the ILP encoding supports the refined preemptive bound (Eq. 6) \
             and the edge hybrid bound (Eq. 10), not {bound}"
        );
        PairwiseIlp {
            bound,
            node_limit: 20_000_000,
            time_limit: None,
        }
    }

    /// Overrides the solver's node budget.
    #[must_use]
    pub fn with_node_limit(mut self, node_limit: u64) -> Self {
        self.node_limit = node_limit;
        self
    }

    /// Sets a wall-clock budget; exceeding it truncates the solve to
    /// [`PairwiseSearchOutcome::Unknown`] like an exhausted node budget.
    #[must_use]
    pub fn with_time_limit(mut self, time_limit: std::time::Duration) -> Self {
        self.time_limit = Some(time_limit);
        self
    }

    /// The delay bound encoded by this instance.
    #[must_use]
    pub const fn bound(&self) -> DelayBoundKind {
        self.bound
    }

    /// Encodes and solves the pairwise assignment problem.
    #[must_use]
    pub fn assign(&self, jobs: &JobSet) -> PairwiseSearchOutcome {
        let analysis = Analysis::new(jobs);
        self.assign_with_analysis(&analysis)
    }

    /// Like [`PairwiseIlp::assign`] but reuses a precomputed [`Analysis`].
    #[must_use]
    pub fn assign_with_analysis(&self, analysis: &Analysis<'_>) -> PairwiseSearchOutcome {
        self.assign_with_stats(analysis).0
    }

    /// Like [`PairwiseIlp::assign_with_analysis`], additionally reporting
    /// the branch-and-bound statistics of the underlying ILP solve.
    #[must_use]
    pub fn assign_with_stats(
        &self,
        analysis: &Analysis<'_>,
    ) -> (PairwiseSearchOutcome, crate::PairwiseSearchStats) {
        let (problem, variables) = self.encode(analysis);
        let solver = Solver::with_config(SolverConfig {
            node_limit: self.node_limit,
            time_limit: self.time_limit,
        });
        let (outcome, stats) = solver
            .solve_with_stats(&problem)
            .expect("the encoding only uses variables of its own problem");
        let stats = crate::PairwiseSearchStats {
            nodes: stats.nodes,
            truncated: stats.truncated,
        };
        let outcome = match outcome {
            Outcome::Optimal(solution) | Outcome::Feasible(solution) => {
                let mut assignment = PairwiseAssignment::new();
                for (&(i, k), &var) in &variables {
                    if solution.value(var) == 1 {
                        assignment.set_higher(i, k);
                    }
                }
                PairwiseSearchOutcome::Feasible(assignment)
            }
            Outcome::Infeasible => PairwiseSearchOutcome::Infeasible,
            Outcome::Unknown => PairwiseSearchOutcome::Unknown,
        };
        (outcome, stats)
    }

    /// Builds the ILP. Returns the problem and the map from ordered pairs
    /// `(i, k)` to the binary variable `X_{i,k}` ("i outranks k").
    #[must_use]
    pub fn encode(&self, analysis: &Analysis<'_>) -> (Problem, BTreeMap<(JobId, JobId), VarId>) {
        let jobs = analysis.jobs();
        let n_stages = jobs.stage_count();
        let big_m = jobs.max_processing_time().as_ticks() as i64;
        let mut problem = Problem::new();

        // X_{i,k} for every ordered competing pair, with X_{i,k}+X_{k,i}=1
        // (Eq. 7). Pairs that cannot interfere (disjoint windows) are fixed
        // arbitrarily — they do not influence any delay.
        let mut x: BTreeMap<(JobId, JobId), VarId> = BTreeMap::new();
        for i in jobs.job_ids() {
            for k in jobs.competitors(i) {
                if i < k {
                    let xik = problem.binary(format!("x_{}_{}", i.index(), k.index()));
                    let xki = problem.binary(format!("x_{}_{}", k.index(), i.index()));
                    problem.equal(LinExpr::new().term(xik, 1).term(xki, 1), 1);
                    x.insert((i, k), xik);
                    x.insert((k, i), xki);
                }
            }
        }

        for i in jobs.job_ids() {
            let job = jobs.job(i);
            let deadline = job.deadline().as_ticks() as i64;
            // Eq. 8: Δ_i = t_{i,1} + Σ_k X_{k,i}·(Σ_x et_{k,x}) + Σ_j θ_{i,j}
            // (θ over the first N−1 stages), plus the non-preemptive
            // blocking term of Eq. 10 when the edge bound is selected.
            let mut delay = LinExpr::new().constant(job.max_processing().as_ticks() as i64);

            for k in jobs.competitors(i) {
                let pair = analysis.pair(i, k);
                if !pair.interferes() {
                    continue;
                }
                let contribution = pair.sum_of_largest(pair.job_additive_terms()).as_ticks() as i64;
                if contribution > 0 {
                    delay.add_term(x[&(k, i)], contribution);
                }
            }

            // θ_{i,j} via Eq. 9 for stages 1..N-1.
            for j in 0..n_stages.saturating_sub(1) {
                let stage = StageId::new(j);
                let theta = self.encode_theta(&mut problem, analysis, &x, i, stage, big_m);
                delay.add_term(theta, 1);
            }

            if self.bound == DelayBoundKind::EdgeHybrid {
                let last = StageId::new(n_stages - 1);
                let blocking = self.encode_blocking(&mut problem, analysis, &x, i, last, big_m);
                delay.add_term(blocking, 1);
            }

            problem.less_equal(delay, deadline);
        }

        (problem, x)
    }

    /// Encodes `θ_{i,j} = max_{k ∈ Q_{i,j}} ep_{k,j}` with the indicator
    /// constraints of Eq. 9.
    fn encode_theta(
        &self,
        problem: &mut Problem,
        analysis: &Analysis<'_>,
        x: &BTreeMap<(JobId, JobId), VarId>,
        i: JobId,
        stage: StageId,
        big_m: i64,
    ) -> VarId {
        let jobs = analysis.jobs();
        let own = jobs.job(i).processing(stage).as_ticks() as i64;
        let theta = problem
            .int_var(
                format!("theta_{}_{}", i.index(), stage.index()),
                own,
                big_m.max(own),
            )
            .expect("theta bounds are ordered");

        // Members of Z_{i,j} = M_{i,j} ∪ {J_i} and their selector binaries.
        let mut selectors = LinExpr::new();
        // The target job itself: θ ≥ ep_{i,j} is already the lower bound;
        // θ ≤ ep_{i,j} + (1-b)·M.
        let b_self = problem.binary(format!("b_{}_{}_self", i.index(), stage.index()));
        problem.less_equal(
            LinExpr::new().term(theta, 1).term(b_self, big_m),
            own + big_m,
        );
        selectors.add_term(b_self, 1);

        for k in jobs.competitors_at(i, stage) {
            let pair = analysis.pair(i, k);
            if !pair.interferes() {
                continue;
            }
            let ep = pair.ep(stage).as_ticks() as i64;
            let xki = x[&(k, i)];
            // Eq. 9a: θ ≥ ep_{k,j}·X_{k,i}.
            problem.greater_equal(LinExpr::new().term(theta, 1).term(xki, -ep), 0);
            // Eq. 9b: θ ≤ ep_{k,j}·X_{k,i} + (1−b)·M.
            let b = problem.binary(format!("b_{}_{}_{}", i.index(), stage.index(), k.index()));
            problem.less_equal(
                LinExpr::new().term(theta, 1).term(xki, -ep).term(b, big_m),
                big_m,
            );
            selectors.add_term(b, 1);
        }
        // Eq. 9c: exactly one member attains the maximum.
        problem.equal(selectors, 1);
        theta
    }

    /// Encodes the non-preemptive blocking term of Eq. 10:
    /// `max_{k ∈ L_i} ep_{k,last}` where `k ∈ L_i ⇔ X_{i,k} = 1`.
    fn encode_blocking(
        &self,
        problem: &mut Problem,
        analysis: &Analysis<'_>,
        x: &BTreeMap<(JobId, JobId), VarId>,
        i: JobId,
        stage: StageId,
        big_m: i64,
    ) -> VarId {
        let jobs = analysis.jobs();
        let blocking = problem
            .int_var(format!("block_{}_{}", i.index(), stage.index()), 0, big_m)
            .expect("blocking bounds are ordered");
        for k in jobs.competitors_at(i, stage) {
            let pair = analysis.pair(i, k);
            if !pair.interferes() {
                continue;
            }
            let ep = pair.ep(stage).as_ticks() as i64;
            let xik = x[&(i, k)];
            // blocking ≥ ep_{k,last}·X_{i,k}.
            problem.greater_equal(LinExpr::new().term(blocking, 1).term(xik, -ep), 0);
        }
        blocking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptPairwise;
    use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};

    /// The Observation V.1 system.
    fn observation_v1() -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s1", 2, PreemptionPolicy::Preemptive)
            .stage("s2", 2, PreemptionPolicy::Preemptive)
            .stage("s3", 2, PreemptionPolicy::Preemptive);
        let rows: [([u64; 3], [usize; 3], u64); 4] = [
            ([5, 7, 15], [0, 1, 1], 60),
            ([7, 9, 17], [1, 1, 1], 55),
            ([6, 8, 30], [0, 0, 0], 55),
            ([2, 4, 3], [1, 0, 0], 50),
        ];
        for (times, resources, deadline) in rows {
            b.job()
                .deadline(Time::new(deadline))
                .stage_time(Time::new(times[0]), resources[0])
                .stage_time(Time::new(times[1]), resources[1])
                .stage_time(Time::new(times[2]), resources[2])
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    #[should_panic(expected = "ILP encoding supports")]
    fn unsupported_bounds_are_rejected() {
        let _ = PairwiseIlp::new(DelayBoundKind::NonPreemptiveOpa);
    }

    #[test]
    fn ilp_finds_the_observation_v1_assignment() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let outcome =
            PairwiseIlp::new(DelayBoundKind::RefinedPreemptive).assign_with_analysis(&analysis);
        let assignment = outcome.assignment().expect("feasible by Observation V.1");
        assert!(assignment.is_feasible(&analysis, DelayBoundKind::RefinedPreemptive));
    }

    #[test]
    fn ilp_encoding_size_is_as_expected() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let ilp = PairwiseIlp::new(DelayBoundKind::RefinedPreemptive);
        assert_eq!(ilp.bound(), DelayBoundKind::RefinedPreemptive);
        let (problem, x) = ilp.encode(&analysis);
        // Four competing pairs, two ordered variables each.
        assert_eq!(x.len(), 8);
        // 8 X variables + per job and stage (3 jobs compete per stage... )
        // at least the theta variables exist:
        assert!(problem.num_variables() > x.len());
        assert!(problem.num_constraints() > 0);
    }

    #[test]
    fn ilp_agrees_with_the_specialised_search_on_random_systems() {
        use msmr_workload::{RandomMsmrConfig, RandomMsmrGenerator};
        let generator = RandomMsmrGenerator::new(RandomMsmrConfig {
            jobs: (2, 4),
            stages: (2, 3),
            resources_per_stage: (1, 2),
            deadline_factor: (1.0, 2.5),
            ..RandomMsmrConfig::default()
        })
        .unwrap();
        for seed in 0..15 {
            let jobs = generator.generate_seeded(seed);
            let analysis = Analysis::new(&jobs);
            let bound = DelayBoundKind::RefinedPreemptive;
            let ilp = PairwiseIlp::new(bound).assign_with_analysis(&analysis);
            let search = OptPairwise::new(bound).assign_with_analysis(&analysis);
            assert!(ilp.is_conclusive(), "seed {seed}: ILP hit its node limit");
            assert!(search.is_conclusive());
            assert_eq!(
                ilp.is_feasible(),
                search.is_feasible(),
                "seed {seed}: ILP and branch-and-bound disagree"
            );
            if let Some(assignment) = ilp.assignment() {
                assert!(assignment.is_feasible(&analysis, bound));
            }
        }
    }

    #[test]
    fn edge_hybrid_encoding_solves_small_instances() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let bound = DelayBoundKind::EdgeHybrid;
        let ilp = PairwiseIlp::new(bound)
            .with_node_limit(5_000_000)
            .assign_with_analysis(&analysis);
        let search = OptPairwise::new(bound).assign_with_analysis(&analysis);
        assert!(ilp.is_conclusive());
        assert_eq!(ilp.is_feasible(), search.is_feasible());
        if let Some(assignment) = ilp.assignment() {
            assert!(assignment.is_feasible(&analysis, bound));
        }
    }
}
