//! Equivalence of the incremental-evaluator engines with the original
//! clone-based implementations, frozen here as oracles.
//!
//! The OPT branch-and-bound, OPDCA's Audsley loop and DMR's repair phase
//! were rewritten onto `msmr_dca::DelayEvaluator` (single mutable state,
//! undo on backtrack) purely as a performance optimisation. This suite
//! keeps verbatim copies of the previous implementations and asserts, on
//! the same 220-case fixed-seed corpus the registry equivalence test uses,
//! that verdicts, witnesses, explored node counts, `S_DCA` call counts and
//! admission outcomes are all unchanged.

use std::collections::BTreeSet;

use msmr_dca::{Analysis, DelayBoundKind, InterferenceSets};
use msmr_model::{JobId, JobSet, Time};
use msmr_sched::{
    Dm, Dmr, Opdca, OptPairwise, PairwiseAssignment, PairwiseSearchConfig, PairwiseSearchOutcome,
    Sdca,
};
use msmr_workload::{EdgeWorkloadConfig, EdgeWorkloadGenerator};

const BOUND: DelayBoundKind = DelayBoundKind::EdgeHybrid;
const OPT_NODE_LIMIT: u64 = 50_000;

/// The registry equivalence corpus: four configurations spanning the
/// evaluation's parameter space, 55 fixed seeds each.
fn corpus() -> Vec<JobSet> {
    let base = EdgeWorkloadConfig::default()
        .with_jobs(12)
        .with_infrastructure(4, 3);
    let configs = vec![
        base.clone().with_beta(0.10),
        base.clone().with_beta(0.20),
        base.clone().with_heavy_ratios([0.10, 0.10, 0.01]),
        base.with_gamma(0.9),
    ];
    let mut cases = Vec::new();
    for config in configs {
        let generator = EdgeWorkloadGenerator::new(config).expect("valid configuration");
        cases.extend((0..55u64).map(|seed| generator.generate_seeded(seed)));
    }
    cases
}

// ---------------------------------------------------------------------
// Frozen oracle: the clone-based OPT branch-and-bound (pre-rewrite).
// ---------------------------------------------------------------------

struct LegacySearch<'a, 'j> {
    analysis: &'a Analysis<'j>,
    bound: DelayBoundKind,
    pairs: Vec<(JobId, JobId)>,
    node_limit: u64,
    nodes: u64,
    truncated: bool,
    solution: Option<PairwiseAssignment>,
}

impl LegacySearch<'_, '_> {
    fn job_fits(&self, assignment: &PairwiseAssignment, job: JobId) -> bool {
        let ctx = assignment.interference_sets(self.analysis.jobs(), job);
        self.analysis.delay_bound(self.bound, job, &ctx) <= self.analysis.jobs().job(job).deadline()
    }

    fn explore(&mut self, depth: usize, assignment: PairwiseAssignment) -> bool {
        if self.nodes >= self.node_limit {
            self.truncated = true;
            return true;
        }
        self.nodes += 1;

        if depth == self.pairs.len() {
            self.solution = Some(assignment);
            return true;
        }

        let (a, b) = self.pairs[depth];
        let jobs = self.analysis.jobs();
        let prefer_a_first = jobs.job(a).deadline() <= jobs.job(b).deadline();
        let orientations = if prefer_a_first {
            [(a, b), (b, a)]
        } else {
            [(b, a), (a, b)]
        };

        for (winner, loser) in orientations {
            let mut next = assignment.clone();
            next.set_higher(winner, loser);
            if self.job_fits(&next, winner)
                && self.job_fits(&next, loser)
                && self.explore(depth + 1, next)
            {
                return true;
            }
        }
        false
    }
}

fn legacy_opt(
    analysis: &Analysis<'_>,
    bound: DelayBoundKind,
    node_limit: u64,
) -> (PairwiseSearchOutcome, u64) {
    let jobs = analysis.jobs();
    for i in jobs.job_ids() {
        let alone = analysis.delay_bound(bound, i, &InterferenceSets::default());
        if alone > jobs.job(i).deadline() {
            return (PairwiseSearchOutcome::Infeasible, 0);
        }
    }
    let mut pairs: Vec<(JobId, JobId)> = Vec::new();
    for i in jobs.job_ids() {
        for k in jobs.competitors(i) {
            if i < k {
                pairs.push((i, k));
            }
        }
    }
    let slack = |job: JobId| -> i128 {
        let alone = analysis.delay_bound(bound, job, &InterferenceSets::default());
        jobs.job(job).deadline().signed_diff(alone)
    };
    pairs.sort_by_key(|&(a, b)| slack(a).min(slack(b)));

    let mut search = LegacySearch {
        analysis,
        bound,
        pairs,
        node_limit,
        nodes: 0,
        truncated: false,
        solution: None,
    };
    search.explore(0, PairwiseAssignment::new());
    let outcome = match (search.solution, search.truncated) {
        (Some(assignment), _) => PairwiseSearchOutcome::Feasible(assignment),
        (None, true) => PairwiseSearchOutcome::Unknown,
        (None, false) => PairwiseSearchOutcome::Infeasible,
    };
    (outcome, search.nodes)
}

// ---------------------------------------------------------------------
// Frozen oracle: the probe-per-candidate OPDCA loop (pre-rewrite).
// ---------------------------------------------------------------------

/// Returns the ordering (highest priority first) and `S_DCA` call count,
/// or the unschedulable jobs on failure.
fn legacy_opdca(analysis: &Analysis<'_>, sdca: &Sdca) -> Result<(Vec<JobId>, usize), Vec<JobId>> {
    let jobs = analysis.jobs();
    let mut unassigned: Vec<JobId> = jobs.job_ids().collect();
    let mut assigned_lowest_first: Vec<JobId> = Vec::with_capacity(jobs.len());
    let mut sdca_calls = 0usize;

    while !unassigned.is_empty() {
        let mut chosen: Option<usize> = None;
        for (idx, &candidate) in unassigned.iter().enumerate() {
            let ctx = InterferenceSets::for_opa_probe(
                unassigned.iter().copied(),
                assigned_lowest_first.iter().copied(),
                candidate,
            );
            sdca_calls += 1;
            if sdca.is_feasible(analysis, candidate, &ctx) {
                chosen = Some(idx);
                break;
            }
        }
        match chosen {
            Some(idx) => {
                let job = unassigned.remove(idx);
                assigned_lowest_first.push(job);
            }
            None => return Err(unassigned),
        }
    }
    Ok((
        assigned_lowest_first.into_iter().rev().collect(),
        sdca_calls,
    ))
}

/// The pre-rewrite OPDCA admission controller.
fn legacy_opdca_admission(analysis: &Analysis<'_>, sdca: &Sdca) -> (Vec<JobId>, Vec<JobId>) {
    let jobs = analysis.jobs();
    let mut unassigned: Vec<JobId> = jobs.job_ids().collect();
    let mut assigned_lowest_first: Vec<JobId> = Vec::with_capacity(jobs.len());
    let mut rejected: Vec<JobId> = Vec::new();

    while !unassigned.is_empty() {
        let mut chosen: Option<usize> = None;
        let mut worst: Option<(usize, i128)> = None;
        for (idx, &candidate) in unassigned.iter().enumerate() {
            let ctx = InterferenceSets::for_opa_probe(
                unassigned.iter().copied(),
                assigned_lowest_first.iter().copied(),
                candidate,
            );
            let slack = sdca.slack(analysis, candidate, &ctx);
            if slack >= 0 {
                chosen = Some(idx);
                break;
            }
            let overshoot = -slack;
            if worst.is_none_or(|(_, w)| overshoot > w) {
                worst = Some((idx, overshoot));
            }
        }
        match chosen {
            Some(idx) => {
                let job = unassigned.remove(idx);
                assigned_lowest_first.push(job);
            }
            None => {
                let (idx, _) = worst.expect("at least one unassigned job exists");
                rejected.push(unassigned.remove(idx));
            }
        }
    }
    let mut accepted: Vec<JobId> = assigned_lowest_first;
    accepted.sort_unstable();
    (accepted, rejected)
}

// ---------------------------------------------------------------------
// Frozen oracle: the clone-based DMR repair phase (pre-rewrite).
// ---------------------------------------------------------------------

fn legacy_dm_assignment(jobs: &JobSet, active: &BTreeSet<JobId>) -> PairwiseAssignment {
    let mut assignment = PairwiseAssignment::new();
    for &i in active {
        for k in jobs.competitors(i) {
            if k > i && active.contains(&k) {
                if jobs.job(i).deadline() <= jobs.job(k).deadline() {
                    assignment.set_higher(i, k);
                } else {
                    assignment.set_higher(k, i);
                }
            }
        }
    }
    assignment
}

fn legacy_delay_of(
    analysis: &Analysis<'_>,
    assignment: &PairwiseAssignment,
    active: &BTreeSet<JobId>,
    job: JobId,
    bound: DelayBoundKind,
) -> Time {
    let mut higher = Vec::new();
    let mut lower = Vec::new();
    for k in analysis.jobs().competitors(job) {
        if !active.contains(&k) {
            continue;
        }
        if assignment.is_higher(k, job) {
            higher.push(k);
        } else if assignment.is_higher(job, k) {
            lower.push(k);
        }
    }
    analysis.delay_bound(bound, job, &InterferenceSets::new(higher, lower))
}

fn legacy_dmr_repair(
    analysis: &Analysis<'_>,
    active: &BTreeSet<JobId>,
    bound: DelayBoundKind,
) -> (PairwiseAssignment, Vec<JobId>) {
    let jobs = analysis.jobs();
    let mut assignment = legacy_dm_assignment(jobs, active);
    let mut unschedulable = Vec::new();

    let active_vec: Vec<JobId> = active.iter().copied().collect();
    for &job in &active_vec {
        let mut delta = legacy_delay_of(analysis, &assignment, active, job, bound);
        if delta <= jobs.job(job).deadline() {
            continue;
        }
        let mut candidates: Vec<(JobId, i128)> = jobs
            .competitors(job)
            .into_iter()
            .filter(|k| active.contains(k) && assignment.is_higher(*k, job))
            .filter_map(|k| {
                let dk = legacy_delay_of(analysis, &assignment, active, k, bound);
                let slack = jobs.job(k).deadline().signed_diff(dk);
                (slack > 0).then_some((k, slack))
            })
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        for (competitor, _) in candidates {
            let mut trial = assignment.clone();
            trial.set_higher(job, competitor);
            let competitor_delay = legacy_delay_of(analysis, &trial, active, competitor, bound);
            if competitor_delay <= jobs.job(competitor).deadline() {
                assignment = trial;
                delta = legacy_delay_of(analysis, &assignment, active, job, bound);
                if delta <= jobs.job(job).deadline() {
                    break;
                }
            }
        }
        if delta > jobs.job(job).deadline() {
            unschedulable.push(job);
        }
    }
    (assignment, unschedulable)
}

fn legacy_pairwise_admission(
    analysis: &Analysis<'_>,
    bound: DelayBoundKind,
    use_repair: bool,
) -> (PairwiseAssignment, Vec<JobId>, Vec<JobId>) {
    let jobs = analysis.jobs();
    let mut active: BTreeSet<JobId> = jobs.job_ids().collect();
    let mut rejected = Vec::new();

    loop {
        let assignment = if use_repair {
            legacy_dmr_repair(analysis, &active, bound).0
        } else {
            legacy_dm_assignment(jobs, &active)
        };
        let mut worst: Option<(JobId, i128)> = None;
        for &job in &active {
            let delta = legacy_delay_of(analysis, &assignment, &active, job, bound);
            let overshoot = delta.signed_diff(jobs.job(job).deadline());
            if overshoot > 0 && worst.is_none_or(|(_, w)| overshoot > w) {
                worst = Some((job, overshoot));
            }
        }
        match worst {
            Some((job, _)) => {
                active.remove(&job);
                rejected.push(job);
            }
            None => {
                let accepted: Vec<JobId> = active.iter().copied().collect();
                return (assignment, accepted, rejected);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The equivalence assertions.
// ---------------------------------------------------------------------

#[test]
fn opt_outcomes_and_node_counts_match_the_clone_based_search() {
    let cases = corpus();
    assert!(cases.len() >= 220, "corpus shrank: {}", cases.len());
    let solver = OptPairwise::with_config(
        BOUND,
        PairwiseSearchConfig {
            node_limit: OPT_NODE_LIMIT,
            ..PairwiseSearchConfig::default()
        },
    );
    for (case, jobs) in cases.iter().enumerate() {
        let analysis = Analysis::new(jobs);
        let (expected, expected_nodes) = legacy_opt(&analysis, BOUND, OPT_NODE_LIMIT);
        let (outcome, stats) = solver.assign_with_stats(&analysis);
        assert_eq!(outcome, expected, "case {case}: OPT outcome diverged");
        assert_eq!(
            stats.nodes, expected_nodes,
            "case {case}: OPT node count diverged"
        );
    }
}

#[test]
fn opdca_orderings_and_sdca_calls_match_the_probe_based_loop() {
    let sdca = Sdca::new(BOUND);
    let opdca = Opdca::new(BOUND);
    for (case, jobs) in corpus().iter().enumerate() {
        let analysis = Analysis::new(jobs);
        match (
            legacy_opdca(&analysis, &sdca),
            opdca.assign_with_analysis(&analysis),
        ) {
            (Ok((order, calls)), Ok(result)) => {
                assert_eq!(result.ordering().as_slice(), &order[..], "case {case}");
                assert_eq!(result.sdca_calls(), calls, "case {case}: sdca_calls");
                // Delays reported by the evaluator match the naive
                // per-job evaluation under the computed ordering.
                let expected: Vec<Time> = jobs
                    .job_ids()
                    .map(|i| {
                        let ctx = InterferenceSets::from_total_order(&order, i);
                        analysis.delay_bound(BOUND, i, &ctx)
                    })
                    .collect();
                assert_eq!(result.delays(), &expected[..], "case {case}: delays");
            }
            (Err(expected), Err(err)) => {
                assert_eq!(err.unschedulable, expected, "case {case}");
            }
            (legacy, new) => panic!(
                "case {case}: OPDCA verdict diverged (legacy ok: {}, new ok: {})",
                legacy.is_ok(),
                new.is_ok()
            ),
        }
    }
}

#[test]
fn pairwise_delays_match_the_naive_per_job_evaluation() {
    for (case, jobs) in corpus().iter().enumerate().step_by(7) {
        let analysis = Analysis::new(jobs);
        let active: BTreeSet<JobId> = jobs.job_ids().collect();
        let assignment = legacy_dm_assignment(jobs, &active);
        for kind in msmr_dca::DelayBoundKind::all() {
            let expected: Vec<Time> = jobs
                .job_ids()
                .map(|i| {
                    let ctx = assignment.interference_sets(jobs, i);
                    analysis.delay_bound(kind, i, &ctx)
                })
                .collect();
            assert_eq!(
                assignment.delays(&analysis, kind),
                expected,
                "case {case}, {kind}"
            );
        }
    }
}

#[test]
fn dmr_assignments_match_the_clone_based_repair() {
    let dmr = Dmr::new(BOUND);
    for (case, jobs) in corpus().iter().enumerate() {
        let analysis = Analysis::new(jobs);
        let active: BTreeSet<JobId> = jobs.job_ids().collect();
        let (expected_assignment, expected_unschedulable) =
            legacy_dmr_repair(&analysis, &active, BOUND);
        match dmr.assign_with_analysis(&analysis) {
            Ok(assignment) => {
                assert!(
                    expected_unschedulable.is_empty(),
                    "case {case}: DMR verdict diverged (legacy rejected)"
                );
                assert_eq!(assignment, expected_assignment, "case {case}");
            }
            Err(err) => {
                assert_eq!(err.unschedulable, expected_unschedulable, "case {case}");
            }
        }
    }
}

#[test]
fn admission_controllers_match_their_legacy_loops() {
    let opdca = Opdca::new(BOUND);
    let sdca = Sdca::new(BOUND);
    for (case, jobs) in corpus().iter().enumerate().step_by(5) {
        let analysis = Analysis::new(jobs);

        let (expected_accepted, expected_rejected) = legacy_opdca_admission(&analysis, &sdca);
        let outcome = opdca.admission_control_with_analysis(&analysis);
        assert_eq!(outcome.accepted, expected_accepted, "case {case}: OPDCA");
        assert_eq!(outcome.rejected, expected_rejected, "case {case}: OPDCA");

        for use_repair in [false, true] {
            let (expected_assignment, expected_accepted, expected_rejected) =
                legacy_pairwise_admission(&analysis, BOUND, use_repair);
            let outcome = if use_repair {
                Dmr::new(BOUND).admission_control(jobs)
            } else {
                Dm::new(BOUND).admission_control(jobs)
            };
            let label = if use_repair { "DMR" } else { "DM" };
            assert_eq!(
                outcome.assignment, expected_assignment,
                "case {case}: {label}"
            );
            assert_eq!(outcome.accepted, expected_accepted, "case {case}: {label}");
            assert_eq!(outcome.rejected, expected_rejected, "case {case}: {label}");
        }
    }
}
