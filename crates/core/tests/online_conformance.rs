//! Conformance suite for the stateful online solver seam: every warm
//! verdict must be **byte-identical** to the cold
//! `SolverRegistry::evaluate` on the same job set once the wall-clock
//! provenance fields (`elapsed_micros`, `cold_fallback`) are zeroed —
//! witnesses, delays and the `sdca_calls` / `nodes_explored` work
//! counters included.
//!
//! The suite drives random admit/withdraw histories through
//! `evaluate_online` over incrementally maintained `PairTables`
//! (extension + general swap-removal) while a mirror rebuilds everything
//! from scratch each step, so it covers the Audsley fast-forward, its
//! divergence and rejection paths, the swap-removal id remap, and the
//! cold adapter in one sweep.

use msmr_dca::{Analysis, DelayBoundKind, PairTables};
use msmr_model::{Job, JobId, JobSet, Pipeline, PreemptionPolicy, Time};
use msmr_sched::{Budget, DeciderState, OnlineEvent, SolveCtx, SolverRegistry, Verdict};
use proptest::prelude::*;

/// Zeroes the execution-provenance fields every verification path of the
/// workspace ignores when byte-comparing verdicts.
fn normalized(verdict: &Verdict) -> Verdict {
    let mut verdict = verdict.clone();
    verdict.stats.elapsed_micros = 0;
    verdict.stats.cold_fallback = None;
    verdict
}

fn normalized_all(verdicts: &[Verdict]) -> Vec<Verdict> {
    verdicts.iter().map(normalized).collect()
}

/// A deterministic xorshift so the mixed histories are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = self.0.wrapping_add(1);
        x
    }
}

/// A pool of job templates with mixed deadlines so histories contain both
/// admissions and rejections.
fn template(pipeline: &Pipeline, rng: &mut Rng) -> Job {
    let stages = pipeline.stage_count();
    let mut builder = Job::builder()
        .arrival(Time::new(rng.next() % 40))
        .deadline(Time::new(20 + rng.next() % 160));
    for j in 0..stages {
        let resources = pipeline
            .stage(msmr_model::StageId::new(j))
            .expect("stage exists")
            .resource_count();
        builder = builder.stage_time(
            Time::new(1 + rng.next() % 12),
            (rng.next() % resources as u64) as usize,
        );
    }
    builder.build(JobId::new(0)).unwrap()
}

fn pipeline(stages: usize, resources: usize) -> Pipeline {
    Pipeline::uniform(&vec![resources; stages], PreemptionPolicy::Preemptive).unwrap()
}

fn with_job(jobs: &JobSet, job: &Job) -> JobSet {
    let mut builder = Job::builder()
        .arrival(job.arrival())
        .deadline(job.deadline());
    for j in 0..job.stage_count() {
        let stage = msmr_model::StageId::new(j);
        builder = builder.stage_time(job.processing(stage), job.resource(stage).index());
    }
    jobs.with_job(builder).unwrap().0
}

/// Drives one random admit/withdraw history through the warm online seam
/// (incremental tables + suite state) and checks, at every step, that the
/// streamed verdicts equal a cold `evaluate` of the same set.
fn run_history(seed: u64, bound: DelayBoundKind, ops: usize) {
    let registry = SolverRegistry::paper_suite(bound);
    let budget = Budget::default().with_node_limit(200_000);
    let mut rng = Rng(seed);
    let pipe = pipeline(2 + (seed as usize % 2), 1 + (seed as usize % 2));

    let mut jobs = JobSet::new(pipe.clone(), Vec::new()).unwrap();
    let mut tables: Option<PairTables> = None;
    let mut state = registry.online_suite();

    for step in 0..ops {
        let withdraw = jobs.len() > 1 && rng.next().is_multiple_of(3);
        let (candidate, event) = if withdraw {
            let victim = JobId::new((rng.next() % jobs.len() as u64) as usize);
            let (reduced, moved) = jobs.swap_remove_job(victim);
            let mut t = tables.take().unwrap();
            t.remove_job(victim);
            tables = Some(t);
            (
                reduced,
                OnlineEvent::Withdraw {
                    removed: victim,
                    moved,
                },
            )
        } else {
            let job = template(&pipe, &mut rng);
            let extended = with_job(&jobs, &job);
            let t = match tables.take() {
                Some(mut t) => {
                    t.extend_with_job(&extended);
                    t
                }
                None => Analysis::new(&extended).into_tables(),
            };
            // Exercise the cache-update path now and then.
            if step % 4 == 1 {
                let _ = t.opa_like_touch();
            }
            tables = Some(t);
            (extended, OnlineEvent::Admit)
        };

        let analysis = Analysis::from_tables(&candidate, tables.take().unwrap());
        let ctx = SolveCtx::with_analysis(analysis, budget);
        let mut streamed = Vec::new();
        let warm = registry.evaluate_online(&mut state, &ctx, event, |v| streamed.push(v.clone()));
        tables = Some(ctx.into_analysis().unwrap().into_tables());

        assert_eq!(normalized_all(&warm), normalized_all(&streamed));
        let cold = registry.evaluate(&candidate, budget);
        assert_eq!(
            normalized_all(&warm),
            normalized_all(&cold),
            "seed {seed}, step {step}, {} jobs, event {event:?}",
            candidate.len()
        );
        jobs = candidate;
    }
}

/// `PairTables` has no public Eq.5 hook; evaluating the OPA bound builds
/// the lazy cache, which is what we want to exercise across
/// extend/remove.
trait OpaTouch {
    fn opa_like_touch(&self) -> usize;
}

impl OpaTouch for PairTables {
    fn opa_like_touch(&self) -> usize {
        msmr_dca::DelayEvaluator::new(self, DelayBoundKind::NonPreemptiveOpa)
            .delays()
            .len()
    }
}

#[test]
fn mixed_histories_match_cold_evaluate_edge_hybrid() {
    for seed in 0..6 {
        run_history(seed, DelayBoundKind::EdgeHybrid, 14);
    }
}

#[test]
fn mixed_histories_match_cold_evaluate_refined_preemptive() {
    for seed in 6..10 {
        run_history(seed, DelayBoundKind::RefinedPreemptive, 14);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized sweep over seeds and history lengths.
    #[test]
    fn warm_histories_are_cold_identical(seed in 0u64..10_000, ops in 4usize..12) {
        run_history(seed, DelayBoundKind::EdgeHybrid, ops);
    }
}

/// The decider-only path: warm single-solver decisions match a cold
/// solve of the same solver, and bypassed solvers are invalidated (their
/// next full evaluation still matches cold).
#[test]
fn decider_only_path_invalidates_bystanders() {
    let bound = DelayBoundKind::EdgeHybrid;
    let registry = SolverRegistry::paper_suite(bound);
    let budget = Budget::default().with_node_limit(200_000);
    let mut rng = Rng(42);
    let pipe = pipeline(3, 2);

    let mut jobs = JobSet::new(pipe.clone(), Vec::new()).unwrap();
    let mut tables: Option<PairTables> = None;
    let mut state = registry.online_suite();

    for step in 0..10 {
        let job = template(&pipe, &mut rng);
        let candidate = with_job(&jobs, &job);
        let mut t = match tables.take() {
            Some(mut t) => {
                t.extend_with_job(&candidate);
                t
            }
            None => Analysis::new(&candidate).into_tables(),
        };
        if step % 2 == 0 {
            // Decider-only admit.
            let analysis = Analysis::from_tables(&candidate, t);
            let ctx = SolveCtx::with_analysis(analysis, budget);
            let warm = registry
                .decide_online("OPDCA", &mut state, &ctx, OnlineEvent::Admit)
                .unwrap();
            t = ctx.into_analysis().unwrap().into_tables();
            let cold = registry
                .solver("OPDCA")
                .unwrap()
                .solve(&SolveCtx::with_budget(&candidate, budget));
            assert_eq!(normalized(&warm), normalized(&cold), "step {step}");
            // Only the decider keeps state.
            assert!(state.states.keys().eq(["OPDCA"]));
        } else {
            // Full-suite admit right after a decider-only one: bystander
            // solvers decide cold (their states were invalidated) and the
            // whole stream still matches offline evaluate.
            let analysis = Analysis::from_tables(&candidate, t);
            let ctx = SolveCtx::with_analysis(analysis, budget);
            let warm = registry.evaluate_online(&mut state, &ctx, OnlineEvent::Admit, |_| {});
            t = ctx.into_analysis().unwrap().into_tables();
            let cold = registry.evaluate(&candidate, budget);
            assert_eq!(normalized_all(&warm), normalized_all(&cold), "step {step}");
        }
        tables = Some(t);
        jobs = candidate;
    }
}

/// Unknown decider names are `None`, and the cold adapter marks verdicts.
#[test]
fn adapter_marks_cold_fallback() {
    let bound = DelayBoundKind::EdgeHybrid;
    let registry = SolverRegistry::paper_suite(bound);
    let mut rng = Rng(7);
    let pipe = pipeline(2, 1);
    let jobs = with_job(&JobSet::new(pipe.clone(), Vec::new()).unwrap(), &{
        let mut j = template(&pipe, &mut rng);
        // Make it trivially schedulable alone.
        j = Job::builder()
            .arrival(j.arrival())
            .deadline(Time::new(10_000))
            .stage_time(Time::new(1), 0)
            .stage_time(Time::new(1), 0)
            .build(JobId::new(0))
            .unwrap();
        j
    });
    let mut state = registry.online_suite();
    let ctx = SolveCtx::new(&jobs);
    assert!(registry
        .decide_online("NOPE", &mut state, &ctx, OnlineEvent::Admit)
        .is_none());

    // DCMP has no online seam: the adapter runs and flags the verdict.
    let verdict = registry
        .decide_online("DCMP", &mut state, &ctx, OnlineEvent::Admit)
        .unwrap();
    assert_eq!(verdict.stats.cold_fallback, Some(true));
    assert!(state.is_empty(), "the adapter keeps no state");

    // OPDCA's warm path never sets the flag.
    let verdict = registry
        .decide_online("OPDCA", &mut state, &ctx, OnlineEvent::Admit)
        .unwrap();
    assert!(verdict.stats.cold_fallback.is_none());
    assert!(matches!(
        state.states.get("OPDCA"),
        Some(DeciderState::Audsley(_))
    ));
}

/// A malformed (hand-edited) state must not poison the decision: the
/// solver falls back to a cold decide and the verdict still matches.
#[test]
fn malformed_states_degrade_to_cold() {
    let bound = DelayBoundKind::EdgeHybrid;
    let registry = SolverRegistry::paper_suite(bound);
    let budget = Budget::default().with_node_limit(200_000);
    let mut rng = Rng(11);
    let pipe = pipeline(3, 2);
    let mut jobs = JobSet::new(pipe.clone(), Vec::new()).unwrap();
    for _ in 0..4 {
        jobs = with_job(&jobs, &template(&pipe, &mut rng));
    }
    let candidate = with_job(&jobs, &template(&pipe, &mut rng));

    let mut state = registry.online_suite();
    *state.state_mut("OPDCA") = DeciderState::Audsley(msmr_sched::AudsleyState {
        winners: vec![JobId::new(0), JobId::new(0)],
        probes: vec![1, 1],
        rejected: false,
    });
    let ctx = SolveCtx::with_budget(&candidate, budget);
    let warm = registry.evaluate_online(&mut state, &ctx, OnlineEvent::Admit, |_| {});
    let cold = registry.evaluate(&candidate, budget);
    assert_eq!(normalized_all(&warm), normalized_all(&cold));
}
