//! Asserts the OPT branch-and-bound performs zero heap allocations per
//! search node (for job populations of `n ≤ 64`).
//!
//! Strategy: wrap the system allocator in a counting shim and run the same
//! search twice with node budgets that differ by orders of magnitude. The
//! setup (analysis, evaluator, pair list) allocates a fixed amount, so the
//! two runs report the same allocation count iff exploring a node
//! allocates nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use msmr_dca::{Analysis, DelayBoundKind};
use msmr_sched::{OptPairwise, PairwiseSearchConfig, PairwiseSearchOutcome};
use msmr_workload::{EdgeWorkloadConfig, EdgeWorkloadGenerator};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// A deliberately deep instance: this fixed-seed 20-job edge case needs
/// ~204k search nodes before the first feasible assignment is reached, so
/// any truncating budget below that explores a large tree and never
/// allocates a solution witness.
fn hard_instance() -> msmr_model::JobSet {
    let config = EdgeWorkloadConfig::default()
        .with_jobs(20)
        .with_infrastructure(4, 3)
        .with_beta(0.2);
    EdgeWorkloadGenerator::new(config)
        .expect("valid configuration")
        .generate_seeded(1)
}

#[test]
fn opt_search_nodes_do_not_allocate() {
    let jobs = hard_instance();
    let analysis = Analysis::new(&jobs);

    let solver_with_limit = |node_limit: u64| {
        OptPairwise::with_config(
            DelayBoundKind::EdgeHybrid,
            PairwiseSearchConfig {
                node_limit,
                ..PairwiseSearchConfig::default()
            },
        )
    };

    // Warm-up: make sure any one-time lazy allocation happens outside the
    // measured runs.
    let _ = solver_with_limit(16).assign_with_stats(&analysis);

    // The libtest harness may allocate concurrently (timers, capture
    // buffers), so measure each budget several times and take the minimum
    // — the search itself is deterministic.
    let measure = |node_limit: u64| {
        let mut best: Option<((PairwiseSearchOutcome, _), u64)> = None;
        for _ in 0..5 {
            let (result, allocs) =
                allocations(|| solver_with_limit(node_limit).assign_with_stats(&analysis));
            if best.as_ref().is_none_or(|(_, b)| allocs < *b) {
                best = Some((result, allocs));
            }
        }
        best.expect("at least one measurement")
    };
    let ((outcome_small, stats_small), allocs_small) = measure(1_000);
    let ((outcome_large, stats_large), allocs_large) = measure(100_000);

    // The two runs must actually have explored very different node counts,
    // with no solution witness allocated in either.
    assert_eq!(stats_small.nodes, 1_000);
    assert_eq!(stats_large.nodes, 100_000);
    assert_eq!(outcome_small, PairwiseSearchOutcome::Unknown);
    assert_eq!(outcome_large, PairwiseSearchOutcome::Unknown);

    assert_eq!(
        allocs_small, allocs_large,
        "allocation count grew with the node count: {} allocations at {} nodes vs {} at {}",
        allocs_small, stats_small.nodes, allocs_large, stats_large.nodes
    );
}
