//! Serde round-trip tests for the unified report types: `Verdict`,
//! `SolverStats`, `Witness`, `AdmissionVerdict` and `UnsupportedMode`
//! survive a JSON round trip byte-exactly at the value level, both for
//! hand-built reports and for real solver output.

use msmr_dca::DelayBoundKind;
use msmr_model::{JobId, JobSetBuilder, PreemptionPolicy, Time};
use msmr_sched::{
    AdmissionVerdict, Budget, Dm, PairwiseAssignment, PriorityOrdering, SolveCtx, Solver,
    SolverRegistry, SolverStats, UnsupportedMode, Verdict, VerdictKind, Witness,
};

fn sample_verdict() -> Verdict {
    let mut assignment = PairwiseAssignment::new();
    assignment.set_higher(JobId::new(0), JobId::new(1));
    assignment.set_higher(JobId::new(2), JobId::new(1));
    Verdict {
        solver: "OPT".to_string(),
        kind: VerdictKind::Accepted,
        witness: Some(Witness::Pairwise(assignment)),
        delays: Some(vec![Time::new(10), Time::new(25), Time::new(7)]),
        unschedulable: Vec::new(),
        stats: SolverStats {
            sdca_calls: 12,
            nodes_explored: 345,
            elapsed_micros: 6789,
            implied_by: None,
            cold_fallback: Some(true),
        },
    }
}

#[test]
fn verdict_round_trips_through_json() {
    let verdict = sample_verdict();
    let json = serde_json::to_string(&verdict).expect("serializable");
    assert!(json.contains("\"cold_fallback\":true"));
    let back: Verdict = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, verdict);
}

#[test]
fn rejected_and_implied_verdicts_round_trip() {
    let rejected = Verdict {
        solver: "DMR".to_string(),
        kind: VerdictKind::Rejected,
        witness: None,
        delays: None,
        unschedulable: vec![JobId::new(3), JobId::new(1)],
        stats: SolverStats::default(),
    };
    let json = serde_json::to_string(&rejected).expect("serializable");
    let back: Verdict = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, rejected);

    let implied = Verdict {
        stats: SolverStats {
            implied_by: Some("OPDCA".to_string()),
            ..SolverStats::default()
        },
        ..Verdict::new("OPT", VerdictKind::Accepted)
    };
    let json = serde_json::to_string(&implied).expect("serializable");
    let back: Verdict = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back.stats.implied_by.as_deref(), Some("OPDCA"));
}

#[test]
fn ordering_witness_round_trips_and_rejects_duplicates() {
    let witness = Witness::Ordering(PriorityOrdering::new(vec![
        JobId::new(2),
        JobId::new(0),
        JobId::new(1),
    ]));
    let json = serde_json::to_string(&witness).expect("serializable");
    let back: Witness = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, witness);

    // A corrupted ordering with a duplicate job must be rejected, not
    // panic.
    let bad = "{\"Ordering\":[0,0]}";
    assert!(serde_json::from_str::<Witness>(bad).is_err());
    // Same for a self-relation in a pairwise witness.
    let bad = "{\"Pairwise\":[[1,1]]}";
    assert!(serde_json::from_str::<Witness>(bad).is_err());
    // And for a duplicated (here: contradictory) pair, which would
    // otherwise be silently resolved last-write-wins.
    let bad = "{\"Pairwise\":[[0,1],[1,0]]}";
    assert!(serde_json::from_str::<Witness>(bad).is_err());
}

#[test]
fn solver_stats_defaults_round_trip() {
    let stats = SolverStats::default();
    let json = serde_json::to_string(&stats).expect("serializable");
    assert!(json.contains("\"implied_by\":null"));
    let back: SolverStats = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, stats);
}

#[test]
fn stats_from_daemons_predating_the_online_seam_still_parse() {
    // Verdict frames written before `cold_fallback` existed carry no such
    // key; newer readers must parse it as `None` instead of erroring
    // (the protocol's missing-optional-field rule).
    let legacy = r#"{"sdca_calls":3,"nodes_explored":0,"elapsed_micros":42,"implied_by":null}"#;
    let back: SolverStats = serde_json::from_str(legacy).expect("legacy stats parse");
    assert_eq!(back.cold_fallback, None);
    assert_eq!(back.sdca_calls, 3);
}

#[test]
fn admission_verdict_and_unsupported_mode_round_trip() {
    let verdict = AdmissionVerdict {
        solver: "OPDCA".to_string(),
        accepted: vec![JobId::new(0), JobId::new(2)],
        rejected: vec![JobId::new(1)],
        witness: Some(Witness::Ordering(PriorityOrdering::new(vec![
            JobId::new(0),
            JobId::new(2),
        ]))),
    };
    let json = serde_json::to_string(&verdict).expect("serializable");
    let back: AdmissionVerdict = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, verdict);

    let err = UnsupportedMode::new("DCMP", "admission control");
    let json = serde_json::to_string(&err).expect("serializable");
    let back: UnsupportedMode = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, err);
}

#[test]
fn real_registry_output_round_trips() {
    let mut b = JobSetBuilder::new();
    b.stage("cpu", 2, PreemptionPolicy::Preemptive).stage(
        "net",
        1,
        PreemptionPolicy::NonPreemptive,
    );
    for i in 0..4u64 {
        b.job()
            .deadline(Time::new(120))
            .stage_time(Time::new(6), (i % 2) as usize)
            .stage_time(Time::new(4), 0)
            .add()
            .unwrap();
    }
    let jobs = b.build().unwrap();
    let registry = SolverRegistry::paper_suite(DelayBoundKind::RefinedPreemptive);
    let verdicts = registry.evaluate(&jobs, Budget::default());
    let json = serde_json::to_string(&verdicts).expect("serializable");
    let back: Vec<Verdict> = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, verdicts);

    // Admission reports serialize too.
    let ctx = SolveCtx::new(&jobs);
    let admission = Solver::admission_control(&Dm::new(DelayBoundKind::RefinedPreemptive), &ctx)
        .expect("DM supports admission");
    let json = serde_json::to_string(&admission).expect("serializable");
    let back: AdmissionVerdict = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back, admission);
}
