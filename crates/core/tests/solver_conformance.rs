//! Trait-conformance suite: every solver registered in the full suite must
//! return, through `Solver::solve`, exactly the outcome its legacy entry
//! point returns, on a corpus of random job sets from `msmr-workload`.

use msmr_dca::{Analysis, DelayBoundKind};
use msmr_model::JobSet;
use msmr_sched::{
    Budget, Dcmp, Dm, Dmr, Opdca, OptPairwise, PairwiseIlp, PairwiseSearchConfig,
    PairwiseSearchOutcome, SolveCtx, Solver, SolverRegistry, VerdictKind, Witness,
};
use msmr_workload::{
    EdgeWorkloadConfig, EdgeWorkloadGenerator, RandomMsmrConfig, RandomMsmrGenerator,
};

const BOUND: DelayBoundKind = DelayBoundKind::RefinedPreemptive;
const NODE_LIMIT: u64 = 200_000;

/// A mixed corpus: small random MSMR systems plus edge-scenario cases.
fn corpus() -> Vec<JobSet> {
    let random = RandomMsmrGenerator::new(RandomMsmrConfig {
        jobs: (2, 6),
        stages: (2, 3),
        resources_per_stage: (1, 2),
        deadline_factor: (1.0, 3.0),
        ..RandomMsmrConfig::default()
    })
    .expect("valid random configuration");
    let edge = EdgeWorkloadGenerator::new(
        EdgeWorkloadConfig::default()
            .with_jobs(12)
            .with_infrastructure(4, 3)
            .with_beta(0.2),
    )
    .expect("valid edge configuration");
    let mut cases: Vec<JobSet> = (0..24).map(|seed| random.generate_seeded(seed)).collect();
    cases.extend((0..8).map(|seed| edge.generate_seeded(seed)));
    cases
}

/// The legacy verdict of one named solver, computed through the
/// engine-specific entry points the crate exposed before the `Solver`
/// trait existed.
fn legacy_kind(name: &str, jobs: &JobSet) -> VerdictKind {
    let analysis = Analysis::new(jobs);
    let accepted = |ok: bool| {
        if ok {
            VerdictKind::Accepted
        } else {
            VerdictKind::Rejected
        }
    };
    match name {
        "DM" => accepted(Dm::new(BOUND).is_schedulable(&analysis)),
        "DMR" => accepted(Dmr::new(BOUND).assign_with_analysis(&analysis).is_ok()),
        "OPDCA" => accepted(Opdca::new(BOUND).assign_with_analysis(&analysis).is_ok()),
        "OPT" => {
            let outcome = OptPairwise::with_config(
                BOUND,
                PairwiseSearchConfig {
                    node_limit: NODE_LIMIT,
                    ..PairwiseSearchConfig::default()
                },
            )
            .assign_with_analysis(&analysis);
            match outcome {
                PairwiseSearchOutcome::Feasible(_) => VerdictKind::Accepted,
                PairwiseSearchOutcome::Infeasible => VerdictKind::Rejected,
                PairwiseSearchOutcome::Unknown => VerdictKind::Undecided,
            }
        }
        "OPT-ILP" => {
            let outcome = PairwiseIlp::new(BOUND)
                .with_node_limit(NODE_LIMIT)
                .assign_with_analysis(&analysis);
            match outcome {
                PairwiseSearchOutcome::Feasible(_) => VerdictKind::Accepted,
                PairwiseSearchOutcome::Infeasible => VerdictKind::Rejected,
                PairwiseSearchOutcome::Unknown => VerdictKind::Undecided,
            }
        }
        "DCMP" => accepted(Dcmp::new().evaluate(jobs).accepted),
        other => panic!("unknown solver `{other}`"),
    }
}

#[test]
fn all_six_solvers_match_their_legacy_entry_points() {
    let registry = SolverRegistry::full_suite(BOUND);
    assert_eq!(registry.len(), 6);
    let budget = Budget::default().with_node_limit(NODE_LIMIT);
    for (case, jobs) in corpus().iter().enumerate() {
        let ctx = SolveCtx::with_budget(jobs, budget);
        for name in registry.names() {
            let solver = registry.solver(name).expect("name comes from the registry");
            let verdict = solver.solve(&ctx);
            assert_eq!(
                verdict.kind,
                legacy_kind(name, jobs),
                "case {case}: {name} disagrees with its legacy entry point"
            );
            assert_eq!(verdict.solver, name);
        }
    }
}

#[test]
fn accepted_witnesses_are_feasible() {
    let registry = SolverRegistry::full_suite(BOUND);
    let budget = Budget::default().with_node_limit(NODE_LIMIT);
    for jobs in corpus() {
        let analysis = Analysis::new(&jobs);
        let ctx = SolveCtx::with_budget(&jobs, budget);
        for name in registry.names() {
            let verdict = registry.solver(name).expect("registered").solve(&ctx);
            if !verdict.is_accepted() {
                continue;
            }
            match &verdict.witness {
                Some(Witness::Pairwise(assignment)) => {
                    assert!(
                        assignment.is_feasible(&analysis, BOUND),
                        "{name} reported an infeasible pairwise witness"
                    );
                }
                Some(Witness::Ordering(ordering)) => {
                    for job in jobs.job_ids() {
                        let ctx = ordering.interference_sets(job);
                        assert!(
                            analysis.delay_bound(BOUND, job, &ctx) <= jobs.job(job).deadline(),
                            "{name} reported an infeasible ordering witness"
                        );
                    }
                }
                // DCMP justifies acceptance by simulation, not a witness.
                None => assert_eq!(name, "DCMP"),
            }
            // Reported delays must certify feasibility.
            if let Some(delays) = &verdict.delays {
                for job in jobs.job_ids() {
                    assert!(delays[job.index()] <= jobs.job(job).deadline());
                }
            }
        }
    }
}

#[test]
fn admission_verdicts_match_the_legacy_controllers() {
    for jobs in corpus() {
        let ctx = SolveCtx::new(&jobs);
        let dm = Solver::admission_control(&Dm::new(BOUND), &ctx).expect("DM supports admission");
        let legacy = Dm::new(BOUND).admission_control(&jobs);
        assert_eq!(dm.accepted, legacy.accepted);
        assert_eq!(dm.rejected, legacy.rejected);

        let dmr =
            Solver::admission_control(&Dmr::new(BOUND), &ctx).expect("DMR supports admission");
        let legacy = Dmr::new(BOUND).admission_control(&jobs);
        assert_eq!(dmr.accepted, legacy.accepted);
        assert_eq!(dmr.rejected, legacy.rejected);

        let opdca =
            Solver::admission_control(&Opdca::new(BOUND), &ctx).expect("OPDCA supports admission");
        let legacy = Opdca::new(BOUND).admission_control(&jobs);
        assert_eq!(opdca.accepted, legacy.accepted);
        assert_eq!(opdca.rejected, legacy.rejected);
    }
}

#[test]
fn exact_engines_agree_through_the_registry() {
    let registry = SolverRegistry::full_suite(BOUND);
    let budget = Budget::default().with_node_limit(NODE_LIMIT);
    for (case, jobs) in corpus().iter().enumerate() {
        // evaluate_parallel runs every solver for real (no shortcuts).
        let verdicts = registry.evaluate_parallel(jobs, budget, 2);
        let kind = |name: &str| {
            verdicts
                .iter()
                .find(|v| v.solver == name)
                .map(|v| v.kind)
                .expect("registered")
        };
        if kind("OPT") != VerdictKind::Undecided && kind("OPT-ILP") != VerdictKind::Undecided {
            assert_eq!(kind("OPT"), kind("OPT-ILP"), "case {case}");
        }
        // Exact dominance: OPT accepts whenever a heuristic pairwise
        // solver or the ordering solver accepts.
        for weaker in ["DMR", "OPDCA"] {
            if kind(weaker) == VerdictKind::Accepted {
                assert_eq!(kind("OPT"), VerdictKind::Accepted, "case {case}: {weaker}");
            }
        }
    }
}
