//! Direct unit coverage of the registry's exact-dominance shortcut
//! semantics (`DMR ⇒ OPT`, `OPDCA ⇒ OPT`) and the typed
//! [`UnsupportedMode`] admission error. Both were previously exercised
//! only indirectly through the 220-case conformance corpus; the admission
//! service depends on them directly, so they get direct tests.

use msmr_dca::DelayBoundKind;
use msmr_model::{JobSet, JobSetBuilder, PreemptionPolicy, Time};
use msmr_sched::{Budget, SolveCtx, Solver, SolverRegistry, UnsupportedMode, Verdict, VerdictKind};

const BOUND: DelayBoundKind = DelayBoundKind::RefinedPreemptive;

/// A system every heuristic accepts (two stages, generous deadlines).
fn light_jobs() -> JobSet {
    let mut b = JobSetBuilder::new();
    b.stage("a", 2, PreemptionPolicy::Preemptive)
        .stage("b", 2, PreemptionPolicy::Preemptive);
    for i in 0..4u64 {
        b.job()
            .deadline(Time::new(200))
            .stage_time(Time::new(5), (i % 2) as usize)
            .stage_time(Time::new(10), (i % 2) as usize)
            .add()
            .unwrap();
    }
    b.build().unwrap()
}

/// A stub solver with a fixed name and verdict, for exercising the
/// shortcut plumbing independently of the real engines.
struct Fixed {
    name: &'static str,
    kind: VerdictKind,
}

impl Solver for Fixed {
    fn name(&self) -> &str {
        self.name
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn solve(&self, _ctx: &SolveCtx<'_>) -> Verdict {
        let mut verdict = Verdict::new(self.name, self.kind);
        // A sentinel the shortcut-synthesised verdicts must NOT carry:
        // implied verdicts are synthesised, not produced by the solver.
        verdict.stats.nodes_explored = 77;
        verdict
    }
}

#[test]
fn dmr_acceptance_implies_opt_without_running_it() {
    let registry = SolverRegistry::paper_suite(BOUND);
    let verdicts = registry.evaluate(&light_jobs(), Budget::default());
    let dmr = verdicts.iter().find(|v| v.solver == "DMR").unwrap();
    assert!(dmr.is_accepted());
    let opt = verdicts.iter().find(|v| v.solver == "OPT").unwrap();
    assert!(opt.is_accepted());
    assert_eq!(opt.stats.implied_by.as_deref(), Some("DMR"));
    // Synthesised verdicts carry no witness and no search statistics.
    assert!(opt.witness.is_none());
    assert_eq!(opt.stats.nodes_explored, 0);
    assert_eq!(opt.stats.sdca_calls, 0);
    assert_eq!(opt.stats.elapsed_micros, 0);
}

#[test]
fn opdca_acceptance_implies_opt_when_dmr_rejects() {
    // Stub registry wired exactly like the paper suite's implications:
    // DMR rejects, OPDCA accepts, so the OPT shortcut must fire from its
    // *second* registered source.
    let mut registry = SolverRegistry::new();
    registry.register(Box::new(Fixed {
        name: "DMR",
        kind: VerdictKind::Rejected,
    }));
    registry.register(Box::new(Fixed {
        name: "OPDCA",
        kind: VerdictKind::Accepted,
    }));
    registry.register(Box::new(Fixed {
        name: "OPT",
        kind: VerdictKind::Rejected, // must never actually run
    }));
    registry.register_implication("DMR", "OPT");
    registry.register_implication("OPDCA", "OPT");

    let verdicts = registry.evaluate(&light_jobs(), Budget::default());
    let opt = verdicts.iter().find(|v| v.solver == "OPT").unwrap();
    assert!(opt.is_accepted(), "OPDCA acceptance must imply OPT");
    assert_eq!(opt.stats.implied_by.as_deref(), Some("OPDCA"));
    assert_eq!(
        opt.stats.nodes_explored, 0,
        "a shortcut verdict is synthesised, the solver must not run"
    );
}

#[test]
fn rejected_sources_do_not_fire_the_shortcut() {
    let mut registry = SolverRegistry::new();
    registry.register(Box::new(Fixed {
        name: "DMR",
        kind: VerdictKind::Rejected,
    }));
    registry.register(Box::new(Fixed {
        name: "OPT",
        kind: VerdictKind::Accepted,
    }));
    registry.register_implication("DMR", "OPT");
    let verdicts = registry.evaluate(&light_jobs(), Budget::default());
    let opt = verdicts.iter().find(|v| v.solver == "OPT").unwrap();
    assert!(opt.stats.implied_by.is_none());
    assert_eq!(opt.stats.nodes_explored, 77, "the real solver ran");
}

#[test]
fn undecided_sources_do_not_fire_the_shortcut() {
    // Only *accepted* verdicts are exact dominance witnesses.
    let mut registry = SolverRegistry::new();
    registry.register(Box::new(Fixed {
        name: "DMR",
        kind: VerdictKind::Undecided,
    }));
    registry.register(Box::new(Fixed {
        name: "OPT",
        kind: VerdictKind::Accepted,
    }));
    registry.register_implication("DMR", "OPT");
    let verdicts = registry.evaluate(&light_jobs(), Budget::default());
    let opt = verdicts.iter().find(|v| v.solver == "OPT").unwrap();
    assert!(opt.stats.implied_by.is_none());
}

#[test]
fn admission_on_exact_engines_returns_the_typed_error() {
    let registry = SolverRegistry::paper_suite(BOUND);
    let jobs = light_jobs();
    let ctx = SolveCtx::new(&jobs);
    for name in ["OPT", "DCMP"] {
        let solver = registry.solver(name).unwrap();
        assert!(!solver.supports_admission());
        let err = solver.admission_control(&ctx).unwrap_err();
        assert_eq!(err, UnsupportedMode::new(name, "admission control"));
        assert_eq!(err.solver, name);
        assert_eq!(err.mode, "admission control");
        assert_eq!(
            err.to_string(),
            format!("solver {name} does not support admission control")
        );
    }
}

#[test]
fn unsupported_mode_round_trips_through_json() {
    let err = UnsupportedMode::new("OPT", "admission control");
    let json = serde_json::to_string(&err).unwrap();
    let parsed: UnsupportedMode = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed, err);
}

#[test]
fn admission_on_the_controllers_succeeds() {
    // The complement of the typed error: the three Fig. 4d controllers
    // do support admission and accept the light system outright.
    let registry = SolverRegistry::paper_suite(BOUND);
    let jobs = light_jobs();
    let ctx = SolveCtx::new(&jobs);
    for name in ["DM", "DMR", "OPDCA"] {
        let solver = registry.solver(name).unwrap();
        assert!(solver.supports_admission());
        let verdict = solver.admission_control(&ctx).unwrap();
        assert!(verdict.rejected.is_empty(), "{name}");
        assert_eq!(verdict.accepted.len(), jobs.len(), "{name}");
    }
}
