//! A fixed-size worker-pool executor with a bounded submission queue and
//! typed backpressure.
//!
//! [`parallel_map`](crate::parallel_map) fans a *known batch* out and
//! joins; services need the dual shape: a long-lived pool that accepts
//! work one task at a time and **refuses** — rather than buffers without
//! bound — when the system is saturated. [`WorkerPool`] provides exactly
//! that on `std::thread` + `Mutex`/`Condvar` (the container cannot fetch
//! an async runtime), so the admission daemon can keep its connections as
//! thin framing loops while every solve runs on a worker thread.
//!
//! Backpressure is *typed*: [`WorkerPool::try_submit`] returns
//! [`SubmitError::Saturated`] with the observed queue depth instead of
//! blocking, so callers (the cluster connection loop) can answer the
//! client with a structured overload response it can retry on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why a [`WorkerPool::try_submit`] was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full: the caller should shed or retry later.
    Saturated {
        /// Tasks waiting in the queue at refusal time.
        queued: usize,
        /// The queue capacity the pool was built with.
        capacity: usize,
    },
    /// The pool is shutting down and accepts no further work.
    Terminated,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated { queued, capacity } => {
                write!(
                    f,
                    "worker pool saturated ({queued}/{capacity} tasks queued)"
                )
            }
            SubmitError::Terminated => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct PoolState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a task is queued or shutdown is requested.
    work: Condvar,
    capacity: usize,
}

/// A fixed-size pool of worker threads draining a bounded task queue.
///
/// Tasks run in submission order (single FIFO queue, any idle worker
/// picks the front). The queue bound counts *waiting* tasks only — a
/// pool with `workers = 4, capacity = 16` has at most 20 tasks admitted
/// but not finished. Dropping the pool (or calling
/// [`WorkerPool::shutdown`]) drains the remaining queue, then joins the
/// workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to ≥ 1) behind a queue of
    /// `capacity` waiting tasks (clamped to ≥ 1).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            capacity: capacity.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The submission-queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Tasks currently waiting in the queue (not yet picked by a worker).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .queue
            .len()
    }

    /// Queues `task` without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is at capacity,
    /// [`SubmitError::Terminated`] after shutdown.
    pub fn try_submit(&self, task: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.shutdown {
            return Err(SubmitError::Terminated);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Saturated {
                queued: state.queue.len(),
                capacity: self.shared.capacity,
            });
        }
        state.queue.push_back(Box::new(task));
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Stops accepting work, drains the queued tasks and joins the
    /// workers. Equivalent to dropping the pool, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool lock poisoned");
            }
        };
        // A panicking task must not shrink the pool: with every worker
        // dead, try_submit would keep accepting tasks nobody runs and
        // the submitters' response channels would never close — a
        // silent total outage. The queue lock is released while the
        // task runs, so nothing is poisoned; the panic is contained to
        // the task (its channel senders drop, which is how submitters
        // observe the failure).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_tasks() {
        let pool = WorkerPool::new(3, 32);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..20 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn saturation_is_a_typed_refusal() {
        let pool = WorkerPool::new(1, 2);
        // Park the single worker so queued tasks pile up.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();

        pool.try_submit(|| {}).unwrap();
        pool.try_submit(|| {}).unwrap();
        let refusal = pool.try_submit(|| {}).unwrap_err();
        assert_eq!(
            refusal,
            SubmitError::Saturated {
                queued: 2,
                capacity: 2
            }
        );
        assert!(refusal.to_string().contains("saturated"));
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        let pool = WorkerPool::new(2, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.try_submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn tasks_run_in_submission_order_on_one_worker() {
        let pool = WorkerPool::new(1, 64);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let order = Arc::clone(&order);
            let tx = tx.clone();
            pool.try_submit(move || {
                order.lock().unwrap().push(i);
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_tasks_do_not_kill_workers() {
        let pool = WorkerPool::new(1, 8);
        // Panic the single worker's current task several times…
        for _ in 0..3 {
            pool.try_submit(|| panic!("task panic")).unwrap();
        }
        // …and the same worker must still run later tasks.
        let (tx, rx) = mpsc::channel();
        pool.try_submit(move || tx.send(()).unwrap()).unwrap();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("worker survived the panicking tasks");
    }

    #[test]
    fn zero_sizes_are_clamped() {
        let pool = WorkerPool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.capacity(), 1);
        let (tx, rx) = mpsc::channel();
        pool.try_submit(move || tx.send(()).unwrap()).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }
}
