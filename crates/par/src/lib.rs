//! Std-only data-parallel helpers for the msmr workspace.
//!
//! The batch-evaluation API of `msmr-sched` fans out independent job-set
//! evaluations across CPU cores. The build container cannot fetch `rayon`,
//! so this crate provides the two primitives the workspace needs:
//!
//! * an order-preserving [`parallel_map`] over a slice, on top of
//!   `std::thread::scope` with atomic work stealing — deliberately
//!   rayon-shaped so swapping in `rayon::par_iter` later is a one-file
//!   change;
//! * a long-lived [`WorkerPool`] executor with a bounded submission queue
//!   and typed backpressure ([`SubmitError::Saturated`]), which the
//!   `msmr-cluster` service layer uses to decouple connections from solve
//!   work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{SubmitError, WorkerPool};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads [`parallel_map`] uses when the caller does
/// not pin one: the available CPU parallelism, or 1 when unknown.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` and returns the results in
/// input order, fanning the work out over `threads` worker threads.
///
/// Work is distributed dynamically (an atomic next-item counter), so
/// heavily skewed per-item costs — common when one job set triggers an
/// exact search and its neighbours do not — still balance. With
/// `threads <= 1` or a single item the closure runs on the caller's
/// thread, which keeps small batches allocation-free and makes the
/// parallel and sequential paths bit-identical.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers have stopped.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let workers = threads.min(items.len());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = f(index, item);
                results
                    .lock()
                    .expect("a worker panicked while holding the result lock")
                    .push((index, result));
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    let mut indexed = results
        .into_inner()
        .expect("all workers joined without panicking");
    indexed.sort_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |_, &x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(&items, 1, |i, &x| x + i as u64);
        let par = parallel_map(&items, 8, |i, &x| x + i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let tagged = parallel_map(&items, 2, |i, &s| format!("{i}:{s}"));
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u64> = Vec::new();
        assert!(parallel_map(&items, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 2, |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
