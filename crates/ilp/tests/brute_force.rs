//! Property tests: the branch-and-bound solver agrees with brute-force
//! enumeration on randomly generated small problems.

use msmr_ilp::{CmpOp, Constraint, LinExpr, Outcome, Problem, Solver, VarId};
use proptest::prelude::*;

/// A compact, generatable description of a random problem.
#[derive(Debug, Clone)]
struct RandomProblem {
    /// Per-variable inclusive bounds.
    bounds: Vec<(i64, i64)>,
    /// Constraints as (coefficients, op, rhs).
    constraints: Vec<(Vec<i64>, u8, i64)>,
    /// Objective coefficients (empty = feasibility problem).
    objective: Vec<i64>,
    maximize: bool,
}

impl RandomProblem {
    fn build(&self) -> Problem {
        let mut p = Problem::new();
        let vars: Vec<VarId> = self
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| p.int_var(format!("x{i}"), lo, hi).expect("valid bounds"))
            .collect();
        for (coeffs, op, rhs) in &self.constraints {
            let mut expr = LinExpr::new();
            for (v, &c) in vars.iter().zip(coeffs) {
                expr.add_term(*v, c);
            }
            let op = match op % 3 {
                0 => CmpOp::Le,
                1 => CmpOp::Ge,
                _ => CmpOp::Eq,
            };
            p.add_constraint(Constraint::new(expr, op, *rhs));
        }
        if !self.objective.is_empty() {
            let mut expr = LinExpr::new();
            for (v, &c) in vars.iter().zip(&self.objective) {
                expr.add_term(*v, c);
            }
            if self.maximize {
                p.maximize(expr);
            } else {
                p.minimize(expr);
            }
        }
        p
    }

    /// Enumerates every assignment, returning (any feasible?, best objective).
    fn brute_force(&self, problem: &Problem) -> (bool, Option<i64>) {
        let n = self.bounds.len();
        let mut assignment = vec![0i64; n];
        let mut feasible = false;
        let mut best: Option<i64> = None;
        self.enumerate(problem, 0, &mut assignment, &mut feasible, &mut best);
        (feasible, best)
    }

    fn enumerate(
        &self,
        problem: &Problem,
        index: usize,
        assignment: &mut Vec<i64>,
        feasible: &mut bool,
        best: &mut Option<i64>,
    ) {
        if index == self.bounds.len() {
            if problem.is_feasible(assignment) {
                *feasible = true;
                if let Some(value) = problem.objective_value(assignment) {
                    *best = Some(match *best {
                        None => value,
                        Some(b) if self.maximize => b.max(value),
                        Some(b) => b.min(value),
                    });
                }
            }
            return;
        }
        let (lo, hi) = self.bounds[index];
        for v in lo..=hi {
            assignment[index] = v;
            self.enumerate(problem, index + 1, assignment, feasible, best);
        }
    }
}

fn random_problem() -> impl Strategy<Value = RandomProblem> {
    let bounds = prop::collection::vec(
        (-3i64..=1).prop_flat_map(|lo| (Just(lo), lo..=lo + 4)),
        1..=4,
    );
    bounds.prop_flat_map(|bounds| {
        let n = bounds.len();
        let constraints = prop::collection::vec(
            (prop::collection::vec(-4i64..=4, n), 0u8..3, -8i64..=8),
            0..=4,
        );
        let objective = prop::collection::vec(-5i64..=5, 0..=n);
        (Just(bounds), constraints, objective, proptest::bool::ANY).prop_map(
            |(bounds, constraints, objective, maximize)| RandomProblem {
                bounds,
                constraints,
                objective,
                maximize,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feasibility answers must match brute force exactly.
    #[test]
    fn solver_matches_brute_force_feasibility(rp in random_problem()) {
        let problem = rp.build();
        let (expected_feasible, expected_best) = rp.brute_force(&problem);
        let outcome = Solver::new().solve(&problem).expect("valid problem");
        prop_assert!(outcome.is_conclusive());
        prop_assert_eq!(outcome.is_feasible(), expected_feasible);
        if let Some(solution) = outcome.solution() {
            // Any reported solution must really satisfy every constraint.
            prop_assert!(problem.is_feasible(solution.values()));
        }
        // And the optimum must match when there is an objective.
        if !rp.objective.is_empty() && expected_feasible {
            prop_assert_eq!(outcome.objective(), expected_best);
        }
    }

    /// Solutions of feasibility problems always satisfy the constraints.
    #[test]
    fn reported_solutions_are_feasible(rp in random_problem()) {
        let problem = rp.build();
        if let Outcome::Optimal(solution) | Outcome::Feasible(solution) =
            Solver::new().solve(&problem).expect("valid problem")
        {
            prop_assert!(problem.is_feasible(solution.values()));
        }
    }
}
