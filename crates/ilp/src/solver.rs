//! Depth-first branch-and-bound search.

use std::time::{Duration, Instant};

use crate::problem::Objective;
use crate::propagate::{normalize, propagate, Domains, LeConstraint, Propagation};
use crate::{IlpError, LinExpr, Problem, VarId};

/// Tuning knobs of the [`Solver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum number of search nodes (branching decisions) explored before
    /// the search is truncated. Exhausting the budget yields
    /// [`Outcome::Feasible`] (incumbent found) or [`Outcome::Unknown`] (no
    /// incumbent), never a silent "infeasible".
    pub node_limit: u64,
    /// Optional wall-clock budget; exceeding it truncates the search the
    /// same way the node limit does (checked every few thousand nodes).
    pub time_limit: Option<Duration>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 10_000_000,
            time_limit: None,
        }
    }
}

/// How many search nodes are explored between wall-clock deadline checks.
const DEADLINE_CHECK_INTERVAL: u64 = 4_096;

/// Search statistics reported by [`Solver::solve_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Number of search nodes explored.
    pub nodes: u64,
    /// Number of feasible solutions encountered.
    pub solutions: u64,
    /// Whether the node budget truncated the search.
    pub truncated: bool,
}

/// A feasible assignment found by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    values: Vec<i64>,
    objective: Option<i64>,
}

impl Solution {
    /// Value assigned to a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to the solved problem.
    #[must_use]
    pub fn value(&self, var: VarId) -> i64 {
        self.values[var.index()]
    }

    /// The full assignment, indexed by variable id.
    #[must_use]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Objective value of this solution (`None` for feasibility problems).
    #[must_use]
    pub fn objective(&self) -> Option<i64> {
        self.objective
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A provably optimal solution (for feasibility problems: any feasible
    /// solution, since all are equivalent).
    Optimal(Solution),
    /// A feasible solution was found, but the node budget ran out before
    /// optimality could be proven.
    Feasible(Solution),
    /// The problem is proven infeasible.
    Infeasible,
    /// The node budget ran out before a solution or an infeasibility proof
    /// was found.
    Unknown,
}

impl Outcome {
    /// The best solution found, if any.
    #[must_use]
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Outcome::Optimal(s) | Outcome::Feasible(s) => Some(s),
            Outcome::Infeasible | Outcome::Unknown => None,
        }
    }

    /// Objective value of the best solution, if any.
    #[must_use]
    pub fn objective(&self) -> Option<i64> {
        self.solution().and_then(Solution::objective)
    }

    /// `true` if a feasible solution was found.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.solution().is_some()
    }

    /// `true` if the search answered the question definitively (optimal
    /// solution or infeasibility proof), `false` if the node budget
    /// truncated it.
    #[must_use]
    pub fn is_conclusive(&self) -> bool {
        matches!(self, Outcome::Optimal(_) | Outcome::Infeasible)
    }
}

/// Exact depth-first branch-and-bound solver.
///
/// See the crate-level documentation for an example. The search is
/// deterministic: identical problems always yield identical outcomes and
/// statistics.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with an explicit configuration.
    #[must_use]
    pub fn with_config(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] if a constraint or the
    /// objective references a variable that does not belong to `problem`.
    pub fn solve(&self, problem: &Problem) -> Result<Outcome, IlpError> {
        self.solve_with_stats(problem).map(|(outcome, _)| outcome)
    }

    /// Solves the problem and also reports search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`Solver::solve`].
    pub fn solve_with_stats(&self, problem: &Problem) -> Result<(Outcome, SolverStats), IlpError> {
        problem.validate()?;
        // Internally everything is a minimisation problem.
        let minimise: Option<LinExpr> = match &problem.objective {
            Objective::None => None,
            Objective::Minimize(e) => Some(e.clone()),
            Objective::Maximize(e) => Some(e.clone().scaled(-1)),
        };
        let constraints = normalize(problem);
        let mut search = Search {
            constraints: &constraints,
            minimise: minimise.as_ref(),
            node_limit: self.config.node_limit,
            deadline: self.config.time_limit.map(|limit| Instant::now() + limit),
            stats: SolverStats::default(),
            incumbent: None,
            incumbent_cost: i128::MAX,
        };
        let domains = Domains::from_problem(problem);
        search.explore(domains);

        let stats = search.stats;
        let outcome = match (search.incumbent, stats.truncated) {
            (Some(values), truncated) => {
                let objective = match &problem.objective {
                    Objective::None => None,
                    _ => problem.objective_value(&values),
                };
                let solution = Solution { values, objective };
                if truncated {
                    Outcome::Feasible(solution)
                } else {
                    Outcome::Optimal(solution)
                }
            }
            (None, true) => Outcome::Unknown,
            (None, false) => Outcome::Infeasible,
        };
        Ok((outcome, stats))
    }
}

/// Mutable state of one search run.
struct Search<'a> {
    constraints: &'a [LeConstraint],
    minimise: Option<&'a LinExpr>,
    node_limit: u64,
    deadline: Option<Instant>,
    stats: SolverStats,
    incumbent: Option<Vec<i64>>,
    incumbent_cost: i128,
}

impl Search<'_> {
    /// Lower bound of the (minimisation) objective under the current
    /// domains.
    fn objective_lower_bound(&self, domains: &Domains) -> i128 {
        let Some(expr) = self.minimise else {
            return i128::MIN;
        };
        let mut bound = i128::from(expr.constant_term());
        for (var, coef) in expr.terms() {
            let value = if coef > 0 {
                domains.lower(var.index())
            } else {
                domains.upper(var.index())
            };
            bound += i128::from(coef) * i128::from(value);
        }
        bound
    }

    fn objective_of(&self, values: &[i64]) -> i128 {
        self.minimise
            .map(|expr| i128::from(expr.evaluate(values)))
            .unwrap_or(i128::MIN)
    }

    /// Depth-first exploration. Returns `true` if the search should stop
    /// entirely (feasibility problem solved, or node budget exhausted).
    fn explore(&mut self, mut domains: Domains) -> bool {
        if self.stats.nodes >= self.node_limit {
            self.stats.truncated = true;
            return true;
        }
        if let Some(deadline) = self.deadline {
            if self.stats.nodes.is_multiple_of(DEADLINE_CHECK_INTERVAL)
                && Instant::now() >= deadline
            {
                self.stats.truncated = true;
                return true;
            }
        }
        self.stats.nodes += 1;

        if propagate(self.constraints, &mut domains) == Propagation::Infeasible {
            return false;
        }
        // Prune nodes that cannot improve on the incumbent.
        if self.minimise.is_some() && self.objective_lower_bound(&domains) >= self.incumbent_cost {
            return false;
        }

        if domains.all_fixed() {
            let values = domains.assignment();
            let cost = self.objective_of(&values);
            self.stats.solutions += 1;
            if self.minimise.is_none() {
                self.incumbent = Some(values);
                return true; // pure feasibility: first solution wins
            }
            if cost < self.incumbent_cost {
                self.incumbent_cost = cost;
                self.incumbent = Some(values);
            }
            return false;
        }

        // Branch on the unfixed variable with the smallest domain
        // ("first fail"), splitting the domain at its midpoint.
        let var = (0..domains.len())
            .filter(|&v| !domains.is_fixed(v))
            .min_by_key(|&v| domains.width(v))
            .expect("at least one unfixed variable");
        let lower = domains.lower(var);
        let upper = domains.upper(var);
        let mid = lower + (upper - lower) / 2;

        let mut left = domains.clone();
        left.set_upper(var, mid);
        if self.explore(left) {
            return true;
        }
        let mut right = domains;
        right.set_lower(var, mid + 1);
        self.explore(right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_optimum() {
        // maximise 6x + 5y + 4z s.t. 3x + 2y + 2z <= 4.
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.binary("y");
        let z = p.binary("z");
        p.less_equal(LinExpr::new().term(x, 3).term(y, 2).term(z, 2), 4);
        p.maximize(LinExpr::new().term(x, 6).term(y, 5).term(z, 4));
        let outcome = Solver::new().solve(&p).unwrap();
        assert!(outcome.is_conclusive());
        assert_eq!(outcome.objective(), Some(9));
        let s = outcome.solution().unwrap();
        assert_eq!(s.value(x), 0);
        assert_eq!(s.value(y), 1);
        assert_eq!(s.value(z), 1);
        assert_eq!(s.values(), &[0, 1, 1]);
    }

    #[test]
    fn minimisation_with_integer_variables() {
        // minimise 3a + 2b s.t. a + b >= 5, a <= 3, 0 <= a,b <= 10.
        let mut p = Problem::new();
        let a = p.int_var("a", 0, 10).unwrap();
        let b = p.int_var("b", 0, 10).unwrap();
        p.greater_equal(LinExpr::new().term(a, 1).term(b, 1), 5);
        p.less_equal(LinExpr::from(a), 3);
        p.minimize(LinExpr::new().term(a, 3).term(b, 2));
        let outcome = Solver::new().solve(&p).unwrap();
        // Best is a = 0, b = 5 with cost 10.
        assert_eq!(outcome.objective(), Some(10));
        let s = outcome.solution().unwrap();
        assert_eq!(s.value(a), 0);
        assert_eq!(s.value(b), 5);
        assert_eq!(s.objective(), Some(10));
    }

    #[test]
    fn feasibility_problem_returns_first_solution() {
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.binary("y");
        p.equal(LinExpr::new().term(x, 1).term(y, 1), 1);
        let (outcome, stats) = Solver::new().solve_with_stats(&p).unwrap();
        assert!(matches!(outcome, Outcome::Optimal(_)));
        assert_eq!(outcome.objective(), None);
        assert!(stats.solutions >= 1);
        assert!(!stats.truncated);
        let s = outcome.solution().unwrap();
        assert_eq!(s.value(x) + s.value(y), 1);
    }

    #[test]
    fn infeasible_problem_is_proven() {
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.binary("y");
        p.greater_equal(LinExpr::new().term(x, 1).term(y, 1), 3);
        let outcome = Solver::new().solve(&p).unwrap();
        assert_eq!(outcome, Outcome::Infeasible);
        assert!(!outcome.is_feasible());
        assert!(outcome.is_conclusive());
        assert!(outcome.solution().is_none());
    }

    #[test]
    fn equality_and_negative_coefficients() {
        // x - y = 2, x + y = 6  ⇒  x = 4, y = 2.
        let mut p = Problem::new();
        let x = p.int_var("x", -10, 10).unwrap();
        let y = p.int_var("y", -10, 10).unwrap();
        p.equal(LinExpr::new().term(x, 1).term(y, -1), 2);
        p.equal(LinExpr::new().term(x, 1).term(y, 1), 6);
        let outcome = Solver::new().solve(&p).unwrap();
        let s = outcome.solution().unwrap();
        assert_eq!(s.value(x), 4);
        assert_eq!(s.value(y), 2);
    }

    #[test]
    fn big_m_max_encoding() {
        // theta = max(a, b) for fixed a = 4, b = 9, using the same
        // indicator encoding as the paper's Eq. 9: theta >= a, theta >= b,
        // theta <= a + (1 - s_a)·M, theta <= b + (1 - s_b)·M, s_a + s_b = 1.
        let m = 100;
        let mut p = Problem::new();
        let theta = p.int_var("theta", 0, m).unwrap();
        let sa = p.binary("sa");
        let sb = p.binary("sb");
        let (a, b) = (4, 9);
        p.greater_equal(LinExpr::from(theta), a);
        p.greater_equal(LinExpr::from(theta), b);
        p.less_equal(LinExpr::new().term(theta, 1).term(sa, m), a + m);
        p.less_equal(LinExpr::new().term(theta, 1).term(sb, m), b + m);
        p.equal(LinExpr::new().term(sa, 1).term(sb, 1), 1);
        p.minimize(LinExpr::from(theta));
        let outcome = Solver::new().solve(&p).unwrap();
        assert_eq!(outcome.objective(), Some(9));
        assert_eq!(outcome.solution().unwrap().value(sb), 1);
    }

    #[test]
    fn zero_time_limit_truncates_the_search() {
        let mut problem = Problem::new();
        let mut sum = LinExpr::new();
        for i in 0..18 {
            let v = problem.binary(format!("b{i}"));
            sum.add_term(v, 1);
        }
        problem.equal(sum, 9);
        let solver = Solver::with_config(SolverConfig {
            time_limit: Some(std::time::Duration::ZERO),
            ..SolverConfig::default()
        });
        let (outcome, stats) = solver.solve_with_stats(&problem).unwrap();
        assert!(stats.truncated);
        // Truncation must never be reported as infeasibility.
        assert!(!matches!(outcome, Outcome::Infeasible));
    }

    #[test]
    fn node_limit_yields_unknown_or_feasible() {
        // A problem with a large search space and a tiny node budget.
        let mut p = Problem::new();
        let vars: Vec<VarId> = (0..30).map(|i| p.binary(format!("x{i}"))).collect();
        let mut sum = LinExpr::new();
        for &v in &vars {
            sum.add_term(v, 1);
        }
        p.equal(sum, 15);
        let solver = Solver::with_config(SolverConfig {
            node_limit: 1,
            ..SolverConfig::default()
        });
        let (outcome, stats) = solver.solve_with_stats(&p).unwrap();
        assert!(stats.truncated);
        assert!(!outcome.is_conclusive());
        assert!(matches!(outcome, Outcome::Unknown | Outcome::Feasible(_)));
    }

    #[test]
    fn validation_error_is_propagated() {
        let mut p = Problem::new();
        p.less_equal(LinExpr::new().term(VarId::new(3), 1), 1);
        assert!(matches!(
            Solver::new().solve(&p),
            Err(IlpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn unconstrained_objective_uses_variable_bounds() {
        let mut p = Problem::new();
        let x = p.int_var("x", -4, 7).unwrap();
        p.maximize(LinExpr::from(x));
        let outcome = Solver::new().solve(&p).unwrap();
        assert_eq!(outcome.objective(), Some(7));
        p.minimize(LinExpr::from(x));
        let outcome = Solver::new().solve(&p).unwrap();
        assert_eq!(outcome.objective(), Some(-4));
    }

    #[test]
    fn solver_accessors() {
        let solver = Solver::with_config(SolverConfig {
            node_limit: 42,
            ..SolverConfig::default()
        });
        assert_eq!(solver.config().node_limit, 42);
        assert_eq!(SolverConfig::default().node_limit, 10_000_000);
    }

    #[test]
    fn optimum_respects_all_constraints() {
        // Small production-planning style model with mixed constraints.
        let mut p = Problem::new();
        let a = p.int_var("a", 0, 20).unwrap();
        let b = p.int_var("b", 0, 20).unwrap();
        let c = p.binary("c");
        p.less_equal(LinExpr::new().term(a, 2).term(b, 3), 24);
        p.less_equal(LinExpr::new().term(a, 1).term(c, -20), 0); // a <= 20·c
        p.greater_equal(LinExpr::new().term(b, 1), 2);
        p.maximize(LinExpr::new().term(a, 5).term(b, 4).term(c, -7));
        let outcome = Solver::new().solve(&p).unwrap();
        let s = outcome.solution().unwrap().clone();
        // Verify feasibility independently.
        assert!(p.is_feasible(s.values()));
        // a = 9, b = 2, c = 1 gives 5·9 + 4·2 - 7 = 46.
        assert_eq!(outcome.objective(), Some(46));
    }
}
