//! An exact branch-and-bound solver for linear constraint and optimisation
//! problems over bounded integer (and binary) variables.
//!
//! The MSMR paper computes its optimal pairwise priority assignment (OPT,
//! §V-A) with a commercial MILP solver (Gurobi). This crate is the
//! self-contained substitute used by the `msmr-sched` crate: it provides
//!
//! * a [`Problem`] builder for bounded integer variables, linear
//!   constraints (`≤`, `≥`, `=`) and an optional linear objective,
//! * a deterministic depth-first [`Solver`] combining bounds-consistency
//!   propagation with branch-and-bound, and
//! * a [`SolverConfig`] node budget so callers can trade completeness for
//!   run time on large instances (exhausting the budget is reported
//!   explicitly, never silently treated as infeasible).
//!
//! The solver is exact: on instances solved within the budget it returns
//! either a provably optimal solution or a proof of infeasibility, which is
//! all the pairwise-priority feasibility encoding of the paper requires.
//!
//! # Example
//!
//! A tiny knapsack: maximise `6x + 5y + 4z` subject to
//! `3x + 2y + 2z ≤ 4`.
//!
//! ```
//! use msmr_ilp::{LinExpr, Problem, Solver};
//!
//! # fn main() -> Result<(), msmr_ilp::IlpError> {
//! let mut problem = Problem::new();
//! let x = problem.binary("x");
//! let y = problem.binary("y");
//! let z = problem.binary("z");
//! problem.less_equal(
//!     LinExpr::new().term(x, 3).term(y, 2).term(z, 2),
//!     4,
//! );
//! problem.maximize(LinExpr::new().term(x, 6).term(y, 5).term(z, 4));
//!
//! let outcome = Solver::new().solve(&problem)?;
//! let solution = outcome.solution().expect("feasible");
//! assert_eq!(outcome.objective(), Some(9)); // y + z
//! assert_eq!(solution.value(x), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod problem;
mod propagate;
mod solver;

pub use error::IlpError;
pub use expr::LinExpr;
pub use problem::{CmpOp, Constraint, Problem, VarId, Variable};
pub use solver::{Outcome, Solution, Solver, SolverConfig, SolverStats};
