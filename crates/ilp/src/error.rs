//! Error type of the ILP crate.

use std::error::Error;
use std::fmt;

use crate::VarId;

/// Error produced when building or solving an integer linear problem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// A variable id does not belong to the problem it was used with.
    UnknownVariable {
        /// The offending variable.
        var: VarId,
        /// Number of variables in the problem.
        len: usize,
    },
    /// A variable was declared with `lower > upper`.
    InvalidBounds {
        /// Declared lower bound.
        lower: i64,
        /// Declared upper bound.
        upper: i64,
    },
    /// Activity or objective arithmetic would overflow `i64`.
    ///
    /// Problems built from realistic scheduling instances never get close
    /// to this; the error exists so the solver can refuse rather than wrap
    /// around silently.
    Overflow,
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::UnknownVariable { var, len } => {
                write!(
                    f,
                    "variable {var:?} does not belong to this problem ({len} variables)"
                )
            }
            IlpError::InvalidBounds { lower, upper } => {
                write!(
                    f,
                    "invalid variable bounds: lower {lower} exceeds upper {upper}"
                )
            }
            IlpError::Overflow => write!(f, "coefficient arithmetic overflowed"),
        }
    }
}

impl Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = IlpError::InvalidBounds { lower: 3, upper: 1 };
        assert!(err.to_string().contains("lower 3"));
        let err = IlpError::UnknownVariable {
            var: VarId::new(4),
            len: 2,
        };
        assert!(err.to_string().contains("2 variables"));
        assert!(IlpError::Overflow.to_string().contains("overflow"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<IlpError>();
    }
}
