//! Linear expressions over problem variables.

use std::collections::BTreeMap;
use std::fmt;

use crate::VarId;

/// A linear expression `Σ a_j·x_j + c` over problem variables.
///
/// Expressions are built incrementally with [`LinExpr::term`] and
/// [`LinExpr::constant`]; repeated terms for the same variable are merged by
/// summing their coefficients, and zero coefficients are dropped.
///
/// ```
/// use msmr_ilp::{LinExpr, Problem};
///
/// let mut p = Problem::new();
/// let x = p.binary("x");
/// let y = p.binary("y");
/// let expr = LinExpr::new().term(x, 2).term(y, -1).term(x, 3).constant(7);
/// assert_eq!(expr.coefficient(x), 5);
/// assert_eq!(expr.coefficient(y), -1);
/// assert_eq!(expr.constant_term(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, i64>,
    constant: i64,
}

impl LinExpr {
    /// Creates the zero expression.
    #[must_use]
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Adds `coefficient · var` to the expression, merging with any existing
    /// term for the same variable.
    #[must_use]
    pub fn term(mut self, var: VarId, coefficient: i64) -> Self {
        self.add_term(var, coefficient);
        self
    }

    /// Adds a constant offset to the expression.
    #[must_use]
    pub fn constant(mut self, value: i64) -> Self {
        self.constant += value;
        self
    }

    /// In-place variant of [`LinExpr::term`].
    pub fn add_term(&mut self, var: VarId, coefficient: i64) {
        let entry = self.terms.entry(var).or_insert(0);
        *entry += coefficient;
        if *entry == 0 {
            self.terms.remove(&var);
        }
    }

    /// In-place variant of [`LinExpr::constant`].
    pub fn add_constant(&mut self, value: i64) {
        self.constant += value;
    }

    /// Adds another expression to this one.
    #[must_use]
    pub fn plus(mut self, other: &LinExpr) -> Self {
        for (&var, &coef) in &other.terms {
            self.add_term(var, coef);
        }
        self.constant += other.constant;
        self
    }

    /// Returns the expression multiplied by a scalar.
    #[must_use]
    pub fn scaled(mut self, factor: i64) -> Self {
        if factor == 0 {
            return LinExpr::new();
        }
        for coef in self.terms.values_mut() {
            *coef *= factor;
        }
        self.constant *= factor;
        self
    }

    /// Coefficient of `var` (zero if absent).
    #[must_use]
    pub fn coefficient(&self, var: VarId) -> i64 {
        self.terms.get(&var).copied().unwrap_or(0)
    }

    /// The constant offset `c`.
    #[must_use]
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with a non-zero coefficient.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression has no variable terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for the given assignment.
    ///
    /// Variables missing from `values` (index out of range) evaluate as
    /// zero.
    #[must_use]
    pub fn evaluate(&self, values: &[i64]) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(&var, &coef)| coef * values.get(var.index()).copied().unwrap_or(0))
                .sum::<i64>()
    }
}

impl From<VarId> for LinExpr {
    fn from(var: VarId) -> Self {
        LinExpr::new().term(var, 1)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (var, coef) in self.terms() {
            if first {
                write!(f, "{coef}·x{}", var.index())?;
                first = false;
            } else if coef >= 0 {
                write!(f, " + {coef}·x{}", var.index())?;
            } else {
                write!(f, " - {}·x{}", -coef, var.index())?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn merging_and_cancellation() {
        let e = LinExpr::new().term(v(0), 2).term(v(0), -2).term(v(1), 5);
        assert_eq!(e.coefficient(v(0)), 0);
        assert_eq!(e.coefficient(v(1)), 5);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        assert!(LinExpr::new().is_empty());
    }

    #[test]
    fn plus_and_scaled() {
        let a = LinExpr::new().term(v(0), 1).constant(2);
        let b = LinExpr::new().term(v(0), 3).term(v(1), -1).constant(-5);
        let sum = a.clone().plus(&b);
        assert_eq!(sum.coefficient(v(0)), 4);
        assert_eq!(sum.coefficient(v(1)), -1);
        assert_eq!(sum.constant_term(), -3);
        let doubled = sum.scaled(2);
        assert_eq!(doubled.coefficient(v(0)), 8);
        assert_eq!(doubled.constant_term(), -6);
        assert!(doubled.clone().scaled(0).is_empty());
        assert_eq!(doubled.scaled(0).constant_term(), 0);
    }

    #[test]
    fn evaluate_assignment() {
        let e = LinExpr::new().term(v(0), 2).term(v(2), -3).constant(4);
        assert_eq!(e.evaluate(&[5, 0, 1]), 2 * 5 - 3 + 4);
        // Out-of-range variables count as zero.
        assert_eq!(e.evaluate(&[5]), 14);
    }

    #[test]
    fn from_var_and_display() {
        let e = LinExpr::from(v(3)).term(v(1), -2).constant(-1);
        assert_eq!(e.coefficient(v(3)), 1);
        let text = e.to_string();
        assert!(text.contains("x3"));
        assert!(text.contains("x1"));
        assert_eq!(LinExpr::new().constant(7).to_string(), "7");
        assert_eq!(LinExpr::new().to_string(), "0");
    }
}
