//! Problem definition: variables, constraints and objective.

use std::fmt;

use crate::{IlpError, LinExpr};

/// Opaque identifier of a problem variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Creates a variable id from its dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        VarId(index)
    }

    /// Dense index of the variable within its problem.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// A bounded integer decision variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    name: String,
    lower: i64,
    upper: i64,
}

impl Variable {
    /// The variable's (diagnostic) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Smallest admissible value.
    #[must_use]
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Largest admissible value.
    #[must_use]
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Returns `true` if the domain is `{0, 1}`.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.lower == 0 && self.upper == 1
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Le => write!(f, "<="),
            CmpOp::Ge => write!(f, ">="),
            CmpOp::Eq => write!(f, "="),
        }
    }
}

/// A linear constraint `expr (≤|≥|=) rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    expr: LinExpr,
    op: CmpOp,
    rhs: i64,
}

impl Constraint {
    /// Creates a constraint.
    #[must_use]
    pub fn new(expr: LinExpr, op: CmpOp, rhs: i64) -> Self {
        Constraint { expr, op, rhs }
    }

    /// The left-hand-side expression.
    #[must_use]
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The comparison operator.
    #[must_use]
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The right-hand-side constant.
    #[must_use]
    pub fn rhs(&self) -> i64 {
        self.rhs
    }

    /// Checks the constraint against a complete assignment.
    #[must_use]
    pub fn is_satisfied_by(&self, values: &[i64]) -> bool {
        let lhs = self.expr.evaluate(values);
        match self.op {
            CmpOp::Le => lhs <= self.rhs,
            CmpOp::Ge => lhs >= self.rhs,
            CmpOp::Eq => lhs == self.rhs,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.op, self.rhs)
    }
}

/// Optimisation sense of the objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Objective {
    /// Pure feasibility problem.
    None,
    /// Minimise the expression.
    Minimize(LinExpr),
    /// Maximise the expression.
    Maximize(LinExpr),
}

/// An integer linear problem: bounded integer variables, linear constraints
/// and an optional linear objective.
///
/// See the crate-level example. Construction methods validate their inputs;
/// constraints referencing foreign variables are caught by
/// [`Solver::solve`](crate::Solver::solve).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    pub(crate) objective: Objective,
}

impl Default for Problem {
    fn default() -> Self {
        Problem::new()
    }
}

impl Problem {
    /// Creates an empty problem.
    #[must_use]
    pub fn new() -> Self {
        Problem {
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: Objective::None,
        }
    }

    /// Adds a binary (0/1) variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.int_var(name, 0, 1)
            .expect("binary bounds are always valid")
    }

    /// Adds a bounded integer variable with inclusive bounds
    /// `lower ..= upper`.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::InvalidBounds`] if `lower > upper`.
    pub fn int_var(
        &mut self,
        name: impl Into<String>,
        lower: i64,
        upper: i64,
    ) -> Result<VarId, IlpError> {
        if lower > upper {
            return Err(IlpError::InvalidBounds { lower, upper });
        }
        let id = VarId::new(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower,
            upper,
        });
        Ok(id)
    }

    /// Adds the constraint `expr ≤ rhs`.
    pub fn less_equal(&mut self, expr: LinExpr, rhs: i64) -> &mut Self {
        self.constraints.push(Constraint::new(expr, CmpOp::Le, rhs));
        self
    }

    /// Adds the constraint `expr ≥ rhs`.
    pub fn greater_equal(&mut self, expr: LinExpr, rhs: i64) -> &mut Self {
        self.constraints.push(Constraint::new(expr, CmpOp::Ge, rhs));
        self
    }

    /// Adds the constraint `expr = rhs`.
    pub fn equal(&mut self, expr: LinExpr, rhs: i64) -> &mut Self {
        self.constraints.push(Constraint::new(expr, CmpOp::Eq, rhs));
        self
    }

    /// Adds an arbitrary pre-built constraint.
    pub fn add_constraint(&mut self, constraint: Constraint) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Sets a minimisation objective (replacing any previous objective).
    pub fn minimize(&mut self, expr: LinExpr) -> &mut Self {
        self.objective = Objective::Minimize(expr);
        self
    }

    /// Sets a maximisation objective (replacing any previous objective).
    pub fn maximize(&mut self, expr: LinExpr) -> &mut Self {
        self.objective = Objective::Maximize(expr);
        self
    }

    /// Number of variables.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variable behind an id.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] for ids that do not belong to
    /// this problem.
    pub fn variable(&self, var: VarId) -> Result<&Variable, IlpError> {
        self.variables
            .get(var.index())
            .ok_or(IlpError::UnknownVariable {
                var,
                len: self.variables.len(),
            })
    }

    /// Iterates over the variables in id order.
    pub fn variables(&self) -> impl Iterator<Item = (VarId, &Variable)> {
        self.variables
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId::new(i), v))
    }

    /// Iterates over the constraints in insertion order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Checks that every variable referenced by constraints and the
    /// objective belongs to this problem.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] naming the first foreign
    /// variable found.
    pub fn validate(&self) -> Result<(), IlpError> {
        let check_expr = |expr: &LinExpr| -> Result<(), IlpError> {
            for (var, _) in expr.terms() {
                if var.index() >= self.variables.len() {
                    return Err(IlpError::UnknownVariable {
                        var,
                        len: self.variables.len(),
                    });
                }
            }
            Ok(())
        };
        for c in &self.constraints {
            check_expr(c.expr())?;
        }
        match &self.objective {
            Objective::None => Ok(()),
            Objective::Minimize(e) | Objective::Maximize(e) => check_expr(e),
        }
    }

    /// Checks a complete assignment against every constraint.
    #[must_use]
    pub fn is_feasible(&self, values: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied_by(values))
            && self
                .variables
                .iter()
                .enumerate()
                .all(|(i, v)| values.get(i).is_some_and(|&x| x >= v.lower && x <= v.upper))
    }

    /// Evaluates the objective for an assignment (`None` for feasibility
    /// problems).
    #[must_use]
    pub fn objective_value(&self, values: &[i64]) -> Option<i64> {
        match &self.objective {
            Objective::None => None,
            Objective::Minimize(e) | Objective::Maximize(e) => Some(e.evaluate(values)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_creation_and_bounds() {
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.int_var("y", -3, 7).unwrap();
        assert_eq!(p.num_variables(), 2);
        assert!(p.variable(x).unwrap().is_binary());
        assert!(!p.variable(y).unwrap().is_binary());
        assert_eq!(p.variable(y).unwrap().lower(), -3);
        assert_eq!(p.variable(y).unwrap().upper(), 7);
        assert_eq!(p.variable(y).unwrap().name(), "y");
        assert!(matches!(
            p.int_var("bad", 5, 2),
            Err(IlpError::InvalidBounds { .. })
        ));
        assert!(matches!(
            p.variable(VarId::new(99)),
            Err(IlpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn constraints_and_feasibility_check() {
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.int_var("y", 0, 10).unwrap();
        p.less_equal(LinExpr::new().term(x, 2).term(y, 1), 5);
        p.greater_equal(LinExpr::from(y), 1);
        p.equal(LinExpr::new().term(x, 1).term(y, 1), 3);
        assert_eq!(p.num_constraints(), 3);
        assert!(p.is_feasible(&[1, 2]));
        assert!(!p.is_feasible(&[0, 2])); // violates equality
        assert!(!p.is_feasible(&[1, 11])); // violates variable bound
        assert!(!p.is_feasible(&[2, 1])); // x out of binary bounds
    }

    #[test]
    fn validation_catches_foreign_variables() {
        let mut p = Problem::new();
        let _x = p.binary("x");
        p.less_equal(LinExpr::new().term(VarId::new(5), 1), 3);
        assert!(matches!(
            p.validate(),
            Err(IlpError::UnknownVariable { .. })
        ));

        let mut p = Problem::new();
        let x = p.binary("x");
        p.maximize(LinExpr::new().term(VarId::new(9), 1));
        p.less_equal(LinExpr::from(x), 1);
        assert!(p.validate().is_err());
    }

    #[test]
    fn objective_value_evaluation() {
        let mut p = Problem::new();
        let x = p.binary("x");
        assert_eq!(p.objective_value(&[1]), None);
        p.maximize(LinExpr::new().term(x, 4).constant(1));
        assert_eq!(p.objective_value(&[1]), Some(5));
        p.minimize(LinExpr::new().term(x, 2));
        assert_eq!(p.objective_value(&[1]), Some(2));
    }

    #[test]
    fn constraint_display_and_accessors() {
        let c = Constraint::new(LinExpr::new().term(VarId::new(0), 2), CmpOp::Ge, 3);
        assert_eq!(c.op(), CmpOp::Ge);
        assert_eq!(c.rhs(), 3);
        assert_eq!(c.expr().coefficient(VarId::new(0)), 2);
        assert!(c.to_string().contains(">="));
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Eq.to_string(), "=");
    }

    #[test]
    fn variables_iteration() {
        let mut p = Problem::new();
        p.binary("a");
        p.binary("b");
        let names: Vec<&str> = p.variables().map(|(_, v)| v.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(p.constraints().count(), 0);
    }
}
