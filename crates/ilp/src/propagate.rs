//! Domain store and bounds-consistency propagation for linear constraints.

use crate::{CmpOp, Problem};

/// Current lower/upper bounds of every variable during search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Domains {
    lower: Vec<i64>,
    upper: Vec<i64>,
}

impl Domains {
    /// Initial domains straight from the variable declarations.
    pub(crate) fn from_problem(problem: &Problem) -> Self {
        let mut lower = Vec::with_capacity(problem.num_variables());
        let mut upper = Vec::with_capacity(problem.num_variables());
        for (_, var) in problem.variables() {
            lower.push(var.lower());
            upper.push(var.upper());
        }
        Domains { lower, upper }
    }

    pub(crate) fn lower(&self, var: usize) -> i64 {
        self.lower[var]
    }

    pub(crate) fn upper(&self, var: usize) -> i64 {
        self.upper[var]
    }

    pub(crate) fn is_fixed(&self, var: usize) -> bool {
        self.lower[var] == self.upper[var]
    }

    pub(crate) fn width(&self, var: usize) -> i64 {
        self.upper[var] - self.lower[var]
    }

    pub(crate) fn len(&self) -> usize {
        self.lower.len()
    }

    pub(crate) fn all_fixed(&self) -> bool {
        (0..self.len()).all(|v| self.is_fixed(v))
    }

    /// The assignment formed by the lower bounds; only meaningful when all
    /// variables are fixed.
    pub(crate) fn assignment(&self) -> Vec<i64> {
        self.lower.clone()
    }

    pub(crate) fn set_lower(&mut self, var: usize, value: i64) {
        self.lower[var] = value;
    }

    pub(crate) fn set_upper(&mut self, var: usize, value: i64) {
        self.upper[var] = value;
    }
}

/// A constraint normalised to the form `Σ a_j x_j ≤ b`.
#[derive(Debug, Clone)]
pub(crate) struct LeConstraint {
    pub(crate) terms: Vec<(usize, i64)>,
    pub(crate) rhs: i64,
}

impl LeConstraint {
    /// Minimum possible activity of the left-hand side under the current
    /// domains.
    fn min_activity(&self, domains: &Domains) -> i128 {
        self.terms
            .iter()
            .map(|&(var, coef)| {
                let bound = if coef > 0 {
                    domains.lower(var)
                } else {
                    domains.upper(var)
                };
                i128::from(coef) * i128::from(bound)
            })
            .sum()
    }
}

/// Normalises all problem constraints to `≤` form (a `=` constraint becomes
/// two inequalities, a `≥` constraint is negated).
pub(crate) fn normalize(problem: &Problem) -> Vec<LeConstraint> {
    let mut out = Vec::new();
    for c in problem.constraints() {
        let terms: Vec<(usize, i64)> = c
            .expr()
            .terms()
            .map(|(var, coef)| (var.index(), coef))
            .collect();
        let rhs = c.rhs() - c.expr().constant_term();
        match c.op() {
            CmpOp::Le => out.push(LeConstraint {
                terms: terms.clone(),
                rhs,
            }),
            CmpOp::Ge => out.push(negated(&terms, rhs)),
            CmpOp::Eq => {
                out.push(LeConstraint {
                    terms: terms.clone(),
                    rhs,
                });
                out.push(negated(&terms, rhs));
            }
        }
    }
    out
}

fn negated(terms: &[(usize, i64)], rhs: i64) -> LeConstraint {
    LeConstraint {
        terms: terms.iter().map(|&(v, c)| (v, -c)).collect(),
        rhs: -rhs,
    }
}

/// Result of a propagation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Propagation {
    /// Domains are (bounds-)consistent with every constraint.
    Consistent,
    /// Some constraint cannot be satisfied under the current domains.
    Infeasible,
}

/// Runs bounds-consistency propagation to a fixpoint.
pub(crate) fn propagate(constraints: &[LeConstraint], domains: &mut Domains) -> Propagation {
    loop {
        let mut changed = false;
        for c in constraints {
            let min_activity = c.min_activity(domains);
            if min_activity > i128::from(c.rhs) {
                return Propagation::Infeasible;
            }
            for &(var, coef) in &c.terms {
                if coef == 0 {
                    continue;
                }
                let own_min = if coef > 0 {
                    i128::from(coef) * i128::from(domains.lower(var))
                } else {
                    i128::from(coef) * i128::from(domains.upper(var))
                };
                let slack = i128::from(c.rhs) - (min_activity - own_min);
                if coef > 0 {
                    // coef · x ≤ slack  ⇒  x ≤ ⌊slack / coef⌋
                    let new_upper = div_floor(slack, i128::from(coef));
                    if new_upper < i128::from(domains.lower(var)) {
                        return Propagation::Infeasible;
                    }
                    if new_upper < i128::from(domains.upper(var)) {
                        domains.set_upper(var, new_upper as i64);
                        changed = true;
                    }
                } else {
                    // coef · x ≤ slack with coef < 0  ⇒  x ≥ ⌈slack / coef⌉
                    let new_lower = div_ceil(slack, i128::from(coef));
                    if new_lower > i128::from(domains.upper(var)) {
                        return Propagation::Infeasible;
                    }
                    if new_lower > i128::from(domains.lower(var)) {
                        domains.set_lower(var, new_lower as i64);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return Propagation::Consistent;
        }
    }
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    #[test]
    fn div_helpers() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_floor(-7, -2), 3);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(7, -2), -3);
        assert_eq!(div_ceil(-7, -2), 4);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_ceil(6, 3), 2);
    }

    #[test]
    fn propagation_tightens_upper_bounds() {
        let mut p = Problem::new();
        let x = p.int_var("x", 0, 10).unwrap();
        let y = p.int_var("y", 2, 10).unwrap();
        // x + y <= 6 with y >= 2 forces x <= 4.
        p.less_equal(LinExpr::new().term(x, 1).term(y, 1), 6);
        let constraints = normalize(&p);
        let mut domains = Domains::from_problem(&p);
        assert_eq!(
            propagate(&constraints, &mut domains),
            Propagation::Consistent
        );
        assert_eq!(domains.upper(x.index()), 4);
        assert_eq!(domains.upper(y.index()), 6);
    }

    #[test]
    fn propagation_tightens_lower_bounds_via_ge() {
        let mut p = Problem::new();
        let x = p.int_var("x", 0, 10).unwrap();
        let y = p.int_var("y", 0, 3).unwrap();
        // x + y >= 8 with y <= 3 forces x >= 5.
        p.greater_equal(LinExpr::new().term(x, 1).term(y, 1), 8);
        let constraints = normalize(&p);
        let mut domains = Domains::from_problem(&p);
        assert_eq!(
            propagate(&constraints, &mut domains),
            Propagation::Consistent
        );
        assert_eq!(domains.lower(x.index()), 5);
    }

    #[test]
    fn equality_fixes_variables() {
        let mut p = Problem::new();
        let x = p.binary("x");
        let y = p.binary("y");
        // x + y = 2 fixes both to 1.
        p.equal(LinExpr::new().term(x, 1).term(y, 1), 2);
        let constraints = normalize(&p);
        let mut domains = Domains::from_problem(&p);
        assert_eq!(
            propagate(&constraints, &mut domains),
            Propagation::Consistent
        );
        assert!(domains.all_fixed());
        assert_eq!(domains.assignment(), vec![1, 1]);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = Problem::new();
        let x = p.binary("x");
        p.greater_equal(LinExpr::new().term(x, 1), 2);
        let constraints = normalize(&p);
        let mut domains = Domains::from_problem(&p);
        assert_eq!(
            propagate(&constraints, &mut domains),
            Propagation::Infeasible
        );
    }

    #[test]
    fn negative_coefficients_and_constants() {
        let mut p = Problem::new();
        let x = p.int_var("x", -5, 5).unwrap();
        // -2x + 1 <= -5  ⇒  x >= 3.
        p.less_equal(LinExpr::new().term(x, -2).constant(1), -5);
        let constraints = normalize(&p);
        let mut domains = Domains::from_problem(&p);
        assert_eq!(
            propagate(&constraints, &mut domains),
            Propagation::Consistent
        );
        assert_eq!(domains.lower(x.index()), 3);
        assert_eq!(domains.upper(x.index()), 5);
    }

    #[test]
    fn domain_accessors() {
        let mut p = Problem::new();
        let x = p.int_var("x", 1, 4).unwrap();
        let domains = Domains::from_problem(&p);
        assert_eq!(domains.len(), 1);
        assert_eq!(domains.width(x.index()), 3);
        assert!(!domains.is_fixed(x.index()));
        assert!(!domains.all_fixed());
    }
}
