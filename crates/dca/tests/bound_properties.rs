//! Property tests of the delay bounds against straightforward
//! re-implementations of the paper's formulas ("oracles") and against each
//! other.

use msmr_dca::{Analysis, DelayBoundKind, InterferenceSets};
use msmr_model::{
    Job, JobId, JobSet, Pipeline, PreemptionPolicy, Segments, SharedStageTimes, StageId, Time,
};
use proptest::prelude::*;

fn arbitrary_jobset() -> impl Strategy<Value = JobSet> {
    (2usize..=4, 1usize..=3, 2usize..=6).prop_flat_map(|(stages, max_res, jobs)| {
        let resources = prop::collection::vec(1usize..=max_res, stages);
        resources.prop_flat_map(move |resources| {
            let job = {
                let resources = resources.clone();
                (
                    prop::collection::vec((1u64..=25, 0usize..3), resources.len()),
                    50u64..=500,
                )
                    .prop_map(move |(stage_specs, deadline)| {
                        let mut builder = Job::builder().deadline(Time::new(deadline));
                        for (j, (p, r)) in stage_specs.into_iter().enumerate() {
                            builder = builder.stage_time(Time::new(p), r % resources[j]);
                        }
                        builder
                    })
            };
            (Just(resources), prop::collection::vec(job, jobs)).prop_map(|(resources, builders)| {
                let pipeline = Pipeline::uniform(&resources, PreemptionPolicy::Preemptive).unwrap();
                let jobs: Vec<Job> = builders
                    .into_iter()
                    .enumerate()
                    .map(|(i, b)| b.build(JobId::new(i)).unwrap())
                    .collect();
                JobSet::new(pipeline, jobs).unwrap()
            })
        })
    })
}

/// Straightforward re-implementation of Eq. 6, written directly from the
/// paper's notation without the precomputed interference table.
fn oracle_eq6(jobs: &JobSet, target: JobId, higher: &[JobId]) -> Time {
    let target_job = jobs.job(target);
    // Job-additive terms: w_{i,i} = 1 for the target itself.
    let mut total = target_job.max_processing().as_ticks();
    for &k in higher {
        if !jobs.windows_overlap(target, k) {
            continue;
        }
        let segments = Segments::between(target_job, jobs.job(k));
        let shared = SharedStageTimes::of(jobs.job(k), target_job);
        let w = segments.single_stage_count() + 2 * segments.multi_stage_count();
        for x in 1..=w {
            total += shared.et(x).as_ticks();
        }
    }
    // Stage-additive terms over the first N-1 stages.
    for j in 0..jobs.stage_count() - 1 {
        let stage = StageId::new(j);
        let mut max = target_job.processing(stage).as_ticks();
        for &k in higher {
            if !jobs.windows_overlap(target, k) {
                continue;
            }
            if jobs.shares_stage(target, k, stage) {
                max = max.max(jobs.job(k).processing(stage).as_ticks());
            }
        }
        total += max;
    }
    Time::new(total)
}

/// Straightforward re-implementation of Eq. 5.
fn oracle_eq5(jobs: &JobSet, target: JobId, higher: &[JobId]) -> Time {
    let target_job = jobs.job(target);
    let mut total = 0u64;
    // m_{i,k}·et_{k,1} job-additive terms (m_{i,i} = 1 for the target).
    total += target_job.max_processing().as_ticks();
    for &k in higher {
        if !jobs.windows_overlap(target, k) {
            continue;
        }
        let segments = Segments::between(target_job, jobs.job(k));
        let shared = SharedStageTimes::of(jobs.job(k), target_job);
        total += (segments.count() as u64) * shared.max().as_ticks();
    }
    // Stage-additive over the first N-1 stages.
    for j in 0..jobs.stage_count() - 1 {
        let stage = StageId::new(j);
        let mut max = target_job.processing(stage).as_ticks();
        for &k in higher {
            if jobs.windows_overlap(target, k) && jobs.shares_stage(target, k, stage) {
                max = max.max(jobs.job(k).processing(stage).as_ticks());
            }
        }
        total += max;
    }
    // Blocking over all other jobs, every stage.
    for j in 0..jobs.stage_count() {
        let stage = StageId::new(j);
        let mut max = 0u64;
        for k in jobs.job_ids() {
            if k != target && jobs.windows_overlap(target, k) && jobs.shares_stage(target, k, stage)
            {
                max = max.max(jobs.job(k).processing(stage).as_ticks());
            }
        }
        total += max;
    }
    Time::new(total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The optimised Eq. 6 implementation matches the literal formula.
    #[test]
    fn refined_preemptive_matches_oracle(jobs in arbitrary_jobset(), split in 0usize..6) {
        let analysis = Analysis::new(&jobs);
        for target in jobs.job_ids() {
            let higher: Vec<JobId> = jobs
                .job_ids()
                .filter(|&k| k != target && (k.index() + split) % 2 == 0)
                .collect();
            let ctx = InterferenceSets::new(higher.clone(), []);
            prop_assert_eq!(
                analysis.refined_preemptive_bound(target, &ctx),
                oracle_eq6(&jobs, target, &higher)
            );
        }
    }

    /// The optimised Eq. 5 implementation matches the literal formula.
    #[test]
    fn non_preemptive_opa_matches_oracle(jobs in arbitrary_jobset(), split in 0usize..6) {
        let analysis = Analysis::new(&jobs);
        for target in jobs.job_ids() {
            let higher: Vec<JobId> = jobs
                .job_ids()
                .filter(|&k| k != target && (k.index() + split) % 2 == 0)
                .collect();
            let lower: Vec<JobId> = jobs
                .job_ids()
                .filter(|&k| k != target && (k.index() + split) % 2 == 1)
                .collect();
            let ctx = InterferenceSets::new(higher.clone(), lower);
            prop_assert_eq!(
                analysis.non_preemptive_opa_bound(target, &ctx),
                oracle_eq5(&jobs, target, &higher)
            );
        }
    }

    /// Eq. 10 equals Eq. 6 plus the last-stage blocking term, and the
    /// blocking term is bounded by the largest lower-priority shared
    /// processing time at the last stage.
    #[test]
    fn edge_hybrid_decomposes_into_eq6_plus_blocking(jobs in arbitrary_jobset()) {
        let analysis = Analysis::new(&jobs);
        let last = StageId::new(jobs.stage_count() - 1);
        for target in jobs.job_ids() {
            let higher: Vec<JobId> = jobs
                .job_ids()
                .filter(|&k| k != target && k.index() % 2 == 0)
                .collect();
            let lower: Vec<JobId> = jobs
                .job_ids()
                .filter(|&k| k != target && k.index() % 2 == 1)
                .collect();
            let ctx = InterferenceSets::new(higher, lower.clone());
            let eq6 = analysis.refined_preemptive_bound(target, &ctx);
            let eq10 = analysis.edge_hybrid_bound(target, &ctx);
            prop_assert!(eq10 >= eq6);
            let max_blocking = lower
                .iter()
                .filter(|&&k| jobs.windows_overlap(target, k))
                .filter(|&&k| jobs.shares_stage(target, k, last))
                .map(|&k| jobs.job(k).processing(last))
                .max()
                .unwrap_or(Time::ZERO);
            prop_assert_eq!(eq10, eq6 + max_blocking);
        }
    }

    /// Delay bounds never depend on jobs that are neither higher nor lower
    /// priority (undecided jobs are simply absent from the sets).
    #[test]
    fn unrelated_jobs_do_not_affect_compatible_bounds(jobs in arbitrary_jobset()) {
        let analysis = Analysis::new(&jobs);
        for target in jobs.job_ids() {
            let ctx_empty = InterferenceSets::default();
            for kind in [
                DelayBoundKind::RefinedPreemptive,
                DelayBoundKind::PreemptiveMsmr,
                DelayBoundKind::PreemptiveSingleResource,
            ] {
                // With no higher-priority jobs the bound is the isolated
                // delay regardless of how many other jobs exist.
                let isolated = analysis.delay_bound(kind, target, &ctx_empty);
                prop_assert!(isolated >= jobs.job(target).max_processing());
            }
        }
    }
}
