//! Property suite: the incremental [`DelayEvaluator`] must be
//! bit-identical to the naive [`Analysis`] bounds for all seven
//! [`DelayBoundKind`]s, over random MSMR systems and random
//! add/remove operation sequences.

use std::collections::BTreeSet;

use msmr_dca::{Analysis, DelayBoundKind, DelayEvaluator, InterferenceSets};
use msmr_model::{Job, JobId, JobSet, Pipeline, PreemptionPolicy, Time};
use proptest::prelude::*;

/// Random MSMR job sets: 2–4 stages, up to 3 resources per stage, 2–7
/// jobs, staggered arrivals so some window pairs do not overlap.
fn arbitrary_jobset() -> impl Strategy<Value = JobSet> {
    (2usize..=4, 1usize..=3, 2usize..=7).prop_flat_map(|(stages, max_res, jobs)| {
        let resources = prop::collection::vec(1usize..=max_res, stages);
        resources.prop_flat_map(move |resources| {
            let job = {
                let resources = resources.clone();
                (
                    prop::collection::vec((1u64..=25, 0usize..3), resources.len()),
                    50u64..=500,
                    0u64..=120,
                )
                    .prop_map(move |(stage_specs, deadline, arrival)| {
                        let mut builder = Job::builder()
                            .deadline(Time::new(deadline))
                            .arrival(Time::new(arrival));
                        for (j, (p, r)) in stage_specs.into_iter().enumerate() {
                            builder = builder.stage_time(Time::new(p), r % resources[j]);
                        }
                        builder
                    })
            };
            (Just(resources), prop::collection::vec(job, jobs)).prop_map(|(resources, builders)| {
                let pipeline = Pipeline::uniform(&resources, PreemptionPolicy::Preemptive).unwrap();
                let jobs: Vec<Job> = builders
                    .into_iter()
                    .enumerate()
                    .map(|(i, b)| b.build(JobId::new(i)).unwrap())
                    .collect();
                JobSet::new(pipeline, jobs).unwrap()
            })
        })
    })
}

/// One evaluator operation: (opcode, target selector, other selector).
type Op = (u8, usize, usize);

/// Reference bookkeeping mirroring the evaluator ops on plain sets with
/// the same displacement semantics as `InterferenceSets`.
#[derive(Default, Clone)]
struct RefSets {
    higher: BTreeSet<JobId>,
    lower: BTreeSet<JobId>,
}

impl RefSets {
    fn interference_sets(&self) -> InterferenceSets {
        InterferenceSets::new(self.higher.iter().copied(), self.lower.iter().copied())
    }
}

/// Applies one op to both the evaluator and the reference sets.
fn apply(eval: &mut DelayEvaluator<'_>, refs: &mut [RefSets], op: Op, n: usize) {
    let (code, t_sel, k_sel) = op;
    let target = JobId::new(t_sel % n);
    let k = JobId::new(k_sel % n);
    let refsets = &mut refs[target.index()];
    match code % 4 {
        0 => {
            eval.add_higher(target, k);
            if k != target {
                refsets.lower.remove(&k);
                refsets.higher.insert(k);
            }
        }
        1 => {
            eval.add_lower(target, k);
            if k != target {
                refsets.higher.remove(&k);
                refsets.lower.insert(k);
            }
        }
        2 => {
            eval.remove_higher(target, k);
            refsets.higher.remove(&k);
        }
        _ => {
            eval.remove_lower(target, k);
            refsets.lower.remove(&k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After every operation of a random sequence, the evaluator's delay
    /// equals the reference bound of the tracked interference sets, for
    /// every target and all seven bound kinds.
    #[test]
    fn evaluator_matches_reference_under_random_op_sequences(
        jobs in arbitrary_jobset(),
        ops in prop::collection::vec((0u8..4, 0usize..8, 0usize..8), 1..60),
    ) {
        let analysis = Analysis::new(&jobs);
        let n = jobs.len();
        for kind in DelayBoundKind::all() {
            let mut eval = analysis.evaluator(kind);
            let mut refs = vec![RefSets::default(); n];
            for &op in &ops {
                apply(&mut eval, &mut refs, op, n);
                let target = JobId::new(op.1 % n);
                let ctx = refs[target.index()].interference_sets();
                prop_assert_eq!(
                    eval.delay(target),
                    analysis.delay_bound(kind, target, &ctx),
                    "{}: target {} diverged mid-sequence", kind, target
                );
            }
            // And a full sweep at the end of the sequence.
            for target in jobs.job_ids() {
                let ctx = refs[target.index()].interference_sets();
                prop_assert_eq!(
                    eval.delay(target),
                    analysis.delay_bound(kind, target, &ctx),
                    "{}: target {} diverged at end", kind, target
                );
                prop_assert_eq!(
                    eval.fits(target),
                    analysis.meets_deadline(kind, target, &ctx)
                );
                let expected_slack = jobs.job(target).deadline()
                    .signed_diff(analysis.delay_bound(kind, target, &ctx));
                prop_assert_eq!(eval.slack(target), expected_slack);
            }
        }
    }

    /// The evaluator's effective sets match the reference filters: only
    /// interfering jobs are tracked.
    #[test]
    fn effective_sets_match_window_overlap_filter(
        jobs in arbitrary_jobset(),
        ops in prop::collection::vec((0u8..2, 0usize..8, 0usize..8), 1..40),
    ) {
        let analysis = Analysis::new(&jobs);
        let n = jobs.len();
        let mut eval = analysis.evaluator(DelayBoundKind::RefinedPreemptive);
        let mut refs = vec![RefSets::default(); n];
        for &op in &ops {
            apply(&mut eval, &mut refs, op, n);
        }
        for target in jobs.job_ids() {
            let expect_higher: Vec<JobId> = refs[target.index()]
                .higher
                .iter()
                .copied()
                .filter(|&k| k != target && analysis.pair(target, k).interferes())
                .collect();
            let got: Vec<JobId> = eval.higher(target).iter().collect();
            prop_assert_eq!(got, expect_higher);
            let expect_lower: Vec<JobId> = refs[target.index()]
                .lower
                .iter()
                .copied()
                .filter(|&k| k != target && analysis.pair(target, k).interferes())
                .collect();
            let got: Vec<JobId> = eval.lower(target).iter().collect();
            prop_assert_eq!(got, expect_lower);
        }
    }
}
