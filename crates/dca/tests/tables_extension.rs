//! Property suite for incremental pair-table extension: growing an
//! [`Analysis`]/[`PairTables`] one job at a time must be bit-identical to
//! a full rebuild on the extended set — the primitive the `msmr-serve`
//! admission-session cache rides on.

use msmr_dca::{Analysis, DelayBoundKind, DelayEvaluator, InterferenceSets, PairTables};
use msmr_model::{Job, JobId, JobSet, Pipeline, PreemptionPolicy, Time};
use proptest::prelude::*;

/// Random MSMR job sets: 2–4 stages, up to 3 resources per stage, 3–8
/// jobs, staggered arrivals so some window pairs do not overlap.
fn arbitrary_jobset() -> impl Strategy<Value = JobSet> {
    (2usize..=4, 1usize..=3, 3usize..=8).prop_flat_map(|(stages, max_res, jobs)| {
        let resources = prop::collection::vec(1usize..=max_res, stages);
        resources.prop_flat_map(move |resources| {
            let job = {
                let resources = resources.clone();
                (
                    prop::collection::vec((1u64..=25, 0usize..3), resources.len()),
                    50u64..=500,
                    0u64..=120,
                )
                    .prop_map(move |(stage_specs, deadline, arrival)| {
                        let mut builder = Job::builder()
                            .deadline(Time::new(deadline))
                            .arrival(Time::new(arrival));
                        for (j, (p, r)) in stage_specs.into_iter().enumerate() {
                            builder = builder.stage_time(Time::new(p), r % resources[j]);
                        }
                        builder
                    })
            };
            (Just(resources), prop::collection::vec(job, jobs)).prop_map(|(resources, builders)| {
                let pipeline = Pipeline::uniform(&resources, PreemptionPolicy::Preemptive).unwrap();
                let jobs: Vec<Job> = builders
                    .into_iter()
                    .enumerate()
                    .map(|(i, b)| b.build(JobId::new(i)).unwrap())
                    .collect();
                JobSet::new(pipeline, jobs).unwrap()
            })
        })
    })
}

/// The prefix job sets `jobs[..1], jobs[..2], …, jobs[..n]` of a set (a
/// job-by-job arrival trace).
fn prefixes(jobs: &JobSet) -> Vec<JobSet> {
    let ids: Vec<JobId> = jobs.job_ids().collect();
    (1..=ids.len())
        .map(|m| jobs.restrict_to(&ids[..m]).unwrap().0)
        .collect()
}

/// A total priority order of `n` jobs derived from sort keys.
fn order_from_keys(n: usize, keys: &[u64]) -> Vec<JobId> {
    let mut order: Vec<JobId> = (0..n).map(JobId::new).collect();
    order.sort_by_key(|id| (keys[id.index() % keys.len()], id.index()));
    order
}

/// Asserts that two pair tables describe the same system: identical
/// masks, identical evaluator delays for every bound kind and every
/// target under the given total order, and identical Eq. 5 blocking
/// behaviour. This is a *behavioural* bit-for-bit check — it reads every
/// table the evaluator reads (job-additive scalars, ep rows, self terms,
/// deadlines, interference masks, blocking constants).
fn assert_tables_equivalent(extended: &PairTables, rebuilt: &PairTables, order: &[JobId]) {
    assert_eq!(extended.job_count(), rebuilt.job_count());
    assert_eq!(extended.stage_count(), rebuilt.stage_count());
    let n = rebuilt.job_count();
    for t in 0..n {
        let id = JobId::new(t);
        assert_eq!(
            extended.interference_mask(id),
            rebuilt.interference_mask(id),
            "interference mask of J{t}"
        );
        assert_eq!(
            extended.competitor_mask(id),
            rebuilt.competitor_mask(id),
            "competitor mask of J{t}"
        );
    }
    for kind in DelayBoundKind::all() {
        let mut a = DelayEvaluator::new(extended, kind);
        let mut b = DelayEvaluator::new(rebuilt, kind);
        for (pos, &t) in order.iter().enumerate() {
            for &h in &order[..pos] {
                a.add_higher(t, h);
                b.add_higher(t, h);
            }
            for &l in &order[pos + 1..] {
                a.add_lower(t, l);
                b.add_lower(t, l);
            }
        }
        for &t in order {
            assert_eq!(a.delay(t), b.delay(t), "{kind}: target {t}");
            assert_eq!(a.fits(t), b.fits(t), "{kind}: target {t}");
            assert_eq!(a.slack(t), b.slack(t), "{kind}: target {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Job-by-job extension from a single job up to the full set matches
    /// a fresh build of every prefix, for every bound kind.
    #[test]
    fn extension_matches_full_rebuild(jobs in arbitrary_jobset(), keys in prop::collection::vec(0u64..1_000, 8)) {
        let sets = prefixes(&jobs);
        let mut analysis = Analysis::new(&sets[0]);
        for m in 1..sets.len() {
            analysis = analysis.extend_with_job(&sets[m]);
            let rebuilt = Analysis::new(&sets[m]);
            let order = order_from_keys(m + 1, &keys);
            assert_tables_equivalent(analysis.tables(), rebuilt.tables(), &order);

            // The reference bounds agree too (they read the extended
            // analysis' lazily re-materialised pair objects).
            let ctx = InterferenceSets::from_total_order(&order, order[m / 2]);
            for kind in DelayBoundKind::all() {
                prop_assert_eq!(
                    analysis.delay_bound(kind, order[m / 2], &ctx),
                    rebuilt.delay_bound(kind, order[m / 2], &ctx),
                    "reference {} after {} extensions", kind, m
                );
            }
        }
    }

    /// Extending tables whose Eq. 5 blocking cache is already built takes
    /// the incremental-update path and still matches the rebuild.
    #[test]
    fn extension_updates_a_built_opa_cache(jobs in arbitrary_jobset(), keys in prop::collection::vec(0u64..1_000, 8)) {
        let sets = prefixes(&jobs);
        let n = sets.len();
        let analysis = Analysis::new(&sets[n - 2]);
        // Force the Eq. 5 blocking cache *before* the extension.
        let _ = analysis.evaluator(DelayBoundKind::NonPreemptiveOpa);
        let extended = analysis.extend_with_job(&sets[n - 1]);
        let rebuilt = Analysis::new(&sets[n - 1]);
        let order = order_from_keys(n, &keys);
        assert_tables_equivalent(extended.tables(), rebuilt.tables(), &order);
    }

    /// `remove_last_job` rolls an extension back to the original tables
    /// (the rejected-admission path).
    #[test]
    fn remove_last_job_rolls_back_an_extension(jobs in arbitrary_jobset(), keys in prop::collection::vec(0u64..1_000, 8)) {
        let sets = prefixes(&jobs);
        let n = sets.len();
        let mut tables = Analysis::new(&sets[n - 2]).into_tables();
        tables.extend_with_job(&sets[n - 1]);
        tables.remove_last_job();
        let original = Analysis::new(&sets[n - 2]);
        let order = order_from_keys(n - 1, &keys);
        assert_tables_equivalent(&tables, original.tables(), &order);
    }

    /// General swap-removal of *any* job is bit-identical to a rebuild on
    /// the swap-removed set — the `O(n·N)` mid-set withdraw path of the
    /// online solver seam.
    #[test]
    fn remove_job_matches_rebuild_on_the_swap_removed_set(
        jobs in arbitrary_jobset(),
        victim_key in 0usize..64,
        keys in prop::collection::vec(0u64..1_000, 8),
    ) {
        let n = jobs.len();
        let victim = JobId::new(victim_key % n);
        let mut tables = Analysis::new(&jobs).into_tables();
        tables.remove_job(victim);
        let (reduced, moved) = jobs.swap_remove_job(victim);
        if victim.index() + 1 < n {
            prop_assert_eq!(moved, Some(JobId::new(n - 1)));
        }
        let rebuilt = Analysis::new(&reduced);
        let order = order_from_keys(n - 1, &keys);
        assert_tables_equivalent(&tables, rebuilt.tables(), &order);
    }

    /// Repeated removals down to a single job stay rebuild-identical at
    /// every step, with a built Eq. 5 cache discarded and rebuilt along
    /// the way.
    #[test]
    fn repeated_removals_stay_rebuild_identical(
        jobs in arbitrary_jobset(),
        victims in prop::collection::vec(0usize..64, 4),
        keys in prop::collection::vec(0u64..1_000, 8),
    ) {
        let mut current = jobs;
        let mut tables = Analysis::new(&current).into_tables();
        for &pick in &victims {
            if current.len() <= 1 {
                break;
            }
            // Force the Eq. 5 cache so removal exercises its discard.
            let _ = DelayEvaluator::new(&tables, DelayBoundKind::NonPreemptiveOpa);
            let victim = JobId::new(pick % current.len());
            tables.remove_job(victim);
            current = current.swap_remove_job(victim).0;
            let rebuilt = Analysis::new(&current);
            let order = order_from_keys(current.len(), &keys);
            assert_tables_equivalent(&tables, rebuilt.tables(), &order);
        }
    }

    /// Pre-reserved capacity changes neither values nor behaviour, and
    /// extensions within capacity never re-stride.
    #[test]
    fn reserve_is_value_neutral(jobs in arbitrary_jobset(), keys in prop::collection::vec(0u64..1_000, 8)) {
        let sets = prefixes(&jobs);
        let n = sets.len();
        let mut tables = Analysis::new(&sets[0]).into_tables();
        tables.reserve(64);
        prop_assert_eq!(tables.capacity(), 64);
        for set in &sets[1..] {
            tables.extend_with_job(set);
        }
        prop_assert_eq!(tables.capacity(), 64);
        let rebuilt = Analysis::new(&sets[n - 1]);
        let order = order_from_keys(n, &keys);
        assert_tables_equivalent(&tables, rebuilt.tables(), &order);
    }
}
