//! Incremental, allocation-free delay-bound evaluation.

use msmr_model::{JobId, Time};

use crate::{Analysis, DelayBoundKind, JobMask, PairTables};

/// Incremental evaluator of one delay bound over *all* targets of a job
/// set.
///
/// The reference entry points on [`Analysis`] recompute a bound from
/// scratch in `O(|H_i|·N)`; search algorithms, however, move between
/// *neighbouring* interference configurations — a branch-and-bound node
/// orients one pair, Audsley's loop moves one job from "higher" to
/// "lower", DMR's repair flips one pair. `DelayEvaluator` maintains, per
/// target job,
///
/// * the running job-additive sum (one addition/subtraction per change),
/// * the per-stage maxima of the stage-additive component together with
///   their running sum, and
/// * the per-stage blocking maxima of the bound's lower-priority term
///   (where the bound has one),
///
/// so [`DelayEvaluator::add_higher`], [`DelayEvaluator::remove_higher`],
/// [`DelayEvaluator::add_lower`] and [`DelayEvaluator::remove_lower`] cost
/// `O(N)` and [`DelayEvaluator::delay`] is `O(1)`. Removing a job that
/// holds a stage maximum triggers an exact recompute of that stage's
/// maximum over the remaining members (the only `O(|H_i|)` path).
///
/// After construction no operation allocates (job populations above 64
/// pre-size their [`JobMask`] spill words up front), which is what keeps
/// the OPT branch-and-bound allocation-free per search node.
///
/// Membership is tracked in *effective* terms: jobs whose interference
/// windows do not overlap the target are ignored by every operation,
/// mirroring the `effective_higher`/`effective_lower` filters of the
/// reference bounds. The aggregates are exact integer arithmetic over the
/// same precomputed ticks the reference reads, so for every reachable
/// state `evaluator.delay(i)` is bit-identical to
/// [`Analysis::delay_bound`] with the corresponding
/// [`InterferenceSets`](crate::InterferenceSets) — a property the test
/// suite asserts for all seven [`DelayBoundKind`]s.
///
/// # Example
///
/// ```
/// use msmr_dca::{Analysis, DelayBoundKind, InterferenceSets};
/// use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};
///
/// # fn main() -> Result<(), msmr_model::ModelError> {
/// let mut b = JobSetBuilder::new();
/// b.stage("cpu", 1, PreemptionPolicy::Preemptive);
/// b.job().deadline(Time::new(20)).stage_time(Time::new(4), 0).add()?;
/// b.job().deadline(Time::new(20)).stage_time(Time::new(9), 0).add()?;
/// let jobs = b.build()?;
/// let analysis = Analysis::new(&jobs);
/// let kind = DelayBoundKind::RefinedPreemptive;
///
/// let mut eval = analysis.evaluator(kind);
/// eval.add_higher(0.into(), 1.into());
/// let ctx = InterferenceSets::new([1.into()], []);
/// assert_eq!(eval.delay(0.into()), analysis.delay_bound(kind, 0.into(), &ctx));
/// eval.remove_higher(0.into(), 1.into());
/// assert_eq!(
///     eval.delay(0.into()),
///     analysis.delay_bound(kind, 0.into(), &InterferenceSets::default()),
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DelayEvaluator<'a> {
    tables: &'a PairTables,
    kind: DelayBoundKind,
    /// Job-additive scalar table of `kind`, indexed `target·n + k`.
    job_additive: &'a [u64],
    /// `true` when the stage-additive component reads raw processing
    /// times (Eqs. 1 and 2) instead of shared-stage times.
    raw_stage_values: bool,
    /// Number of stage-additive stages (`N − 1`).
    add_stages: usize,
    /// Stages carrying a dynamic lower-priority blocking term.
    block_stages: Vec<usize>,
    /// `true` when the blocking term reads raw processing times (Eq. 2).
    raw_block_values: bool,
    /// Per-target constant: self term plus, for Eq. 5, the
    /// content-independent blocking sum.
    base: Vec<u64>,
    /// Per-target running job-additive sum over `H_i`.
    ja_sum: Vec<u64>,
    /// Per-target, per-stage maxima of the stage-additive component,
    /// indexed `target·(N−1) + j`; seeded with the target's own time.
    stage_max: Vec<u64>,
    /// Per-target running sum of `stage_max`.
    stage_sum: Vec<u64>,
    /// Per-target, per-blocking-stage maxima over `L_i`, indexed
    /// `target·|block_stages| + b`.
    block_max: Vec<u64>,
    /// Per-target running sum of `block_max`.
    block_sum: Vec<u64>,
    /// Effective `H_i` per target.
    higher: Vec<JobMask>,
    /// Effective `L_i` per target.
    lower: Vec<JobMask>,
}

/// Stage-additive value of interferer `k` against `target` at stage `j`.
#[inline]
fn stage_value(tables: &PairTables, raw: bool, target: usize, k: usize, stage: usize) -> u64 {
    if raw {
        tables.proc_at(k, stage)
    } else {
        tables.ep_at(target, k, stage)
    }
}

/// The per-stage value row of interferer `k` against `target` (raw
/// processing for Eqs. 1–2, shared-stage times otherwise).
#[inline]
fn stage_row(tables: &PairTables, raw: bool, target: usize, k: usize) -> &[u64] {
    if raw {
        &tables.proc[k * tables.stages..(k + 1) * tables.stages]
    } else {
        let base = (target * tables.cap + k) * tables.stages;
        &tables.ep[base..base + tables.stages]
    }
}

impl<'a> DelayEvaluator<'a> {
    /// Creates an evaluator for `kind` with empty interference sets for
    /// every target (every delay starts at the job's isolated bound).
    #[must_use]
    pub fn new(tables: &'a PairTables, kind: DelayBoundKind) -> Self {
        let n = tables.job_count();
        let stages = tables.stage_count();
        let add_stages = stages.saturating_sub(1);
        let (block_stages, raw_block_values): (Vec<usize>, bool) = match kind {
            DelayBoundKind::NonPreemptiveSingleResource => ((0..stages).collect(), true),
            DelayBoundKind::NonPreemptiveMsmr => ((0..stages).collect(), false),
            DelayBoundKind::EdgeHybrid => (vec![stages - 1], false),
            _ => (Vec::new(), false),
        };
        let raw_stage_values = matches!(
            kind,
            DelayBoundKind::PreemptiveSingleResource | DelayBoundKind::NonPreemptiveSingleResource
        );

        let opa_block = (kind == DelayBoundKind::NonPreemptiveOpa).then(|| tables.opa_block());
        let mut base = Vec::with_capacity(n);
        let mut stage_max = Vec::with_capacity(n * add_stages);
        let mut stage_sum = Vec::with_capacity(n);
        for t in 0..n {
            let mut b = tables.self_term(kind, t);
            if let Some(opa_block) = opa_block {
                b += opa_block[t];
            }
            base.push(b);
            let mut sum = 0u64;
            for j in 0..add_stages {
                let seed = tables.proc_at(t, j);
                stage_max.push(seed);
                sum += seed;
            }
            stage_sum.push(sum);
        }

        DelayEvaluator {
            tables,
            kind,
            job_additive: tables.job_additive(kind),
            raw_stage_values,
            add_stages,
            block_max: vec![0; n * block_stages.len()],
            block_sum: vec![0; n],
            block_stages,
            raw_block_values,
            base,
            ja_sum: vec![0; n],
            stage_max,
            stage_sum,
            higher: (0..n).map(|_| JobMask::with_capacity(n)).collect(),
            lower: (0..n).map(|_| JobMask::with_capacity(n)).collect(),
        }
    }

    /// The bound kind this evaluator maintains.
    #[must_use]
    pub const fn kind(&self) -> DelayBoundKind {
        self.kind
    }

    /// The effective higher-priority set of a target (interfering members
    /// only).
    #[must_use]
    pub fn higher(&self, target: JobId) -> &JobMask {
        &self.higher[target.index()]
    }

    /// The effective lower-priority set of a target.
    #[must_use]
    pub fn lower(&self, target: JobId) -> &JobMask {
        &self.lower[target.index()]
    }

    /// Current delay bound `Δ_target` under the maintained sets — `O(1)`.
    #[must_use]
    pub fn delay(&self, target: JobId) -> Time {
        let t = target.index();
        Time::new(self.base[t] + self.ja_sum[t] + self.stage_sum[t] + self.block_sum[t])
    }

    /// `true` iff `Δ_target ≤ D_target`.
    #[must_use]
    pub fn fits(&self, target: JobId) -> bool {
        self.delay(target).as_ticks() <= self.tables.deadline[target.index()]
    }

    /// Slack `D_target − Δ_target` (negative when the deadline is
    /// missed).
    #[must_use]
    pub fn slack(&self, target: JobId) -> i128 {
        i128::from(self.tables.deadline[target.index()]) - i128::from(self.delay(target).as_ticks())
    }

    /// Current delay bounds of every job, indexed by id.
    #[must_use]
    pub fn delays(&self) -> Vec<Time> {
        (0..self.tables.job_count())
            .map(|t| self.delay(JobId::new(t)))
            .collect()
    }

    /// Adds `k` to `H_target`, removing it from `L_target` first if
    /// present (mirroring
    /// [`InterferenceSets::insert_higher`](crate::InterferenceSets::insert_higher)).
    /// No-op for the target itself, for non-interfering jobs and for jobs
    /// already in `H_target`.
    pub fn add_higher(&mut self, target: JobId, k: JobId) {
        let (t, ki) = (target.index(), k.index());
        if t == ki || !self.tables.interferes[t].contains(k) {
            return;
        }
        if self.lower[t].contains(k) {
            self.remove_lower(target, k);
        }
        if !self.higher[t].insert(k) {
            return;
        }
        self.ja_sum[t] += self.job_additive[t * self.tables.cap + ki];
        let row = stage_row(self.tables, self.raw_stage_values, t, ki);
        let maxima =
            &mut self.stage_max[t * self.add_stages..t * self.add_stages + self.add_stages];
        for (slot, &v) in maxima.iter_mut().zip(row) {
            if v > *slot {
                self.stage_sum[t] += v - *slot;
                *slot = v;
            }
        }
    }

    /// Removes `k` from `H_target`. No-op when `k` is not an effective
    /// member.
    pub fn remove_higher(&mut self, target: JobId, k: JobId) {
        let (t, ki) = (target.index(), k.index());
        if !self.higher[t].remove(k) {
            return;
        }
        self.ja_sum[t] -= self.job_additive[t * self.tables.cap + ki];
        let row = stage_row(self.tables, self.raw_stage_values, t, ki);
        for (j, &v) in row.iter().enumerate().take(self.add_stages) {
            let slot = t * self.add_stages + j;
            if v == self.stage_max[slot] {
                // The removed job may have held this stage's maximum:
                // recompute it exactly over the remaining members.
                let mut max = self.tables.proc_at(t, j);
                for kk in self.higher[t].iter() {
                    max = max.max(stage_value(
                        self.tables,
                        self.raw_stage_values,
                        t,
                        kk.index(),
                        j,
                    ));
                }
                self.stage_sum[t] -= self.stage_max[slot] - max;
                self.stage_max[slot] = max;
            }
        }
    }

    /// Adds `k` to `L_target`, removing it from `H_target` first if
    /// present. No-op for the target itself, for non-interfering jobs and
    /// for jobs already in `L_target`.
    pub fn add_lower(&mut self, target: JobId, k: JobId) {
        let (t, ki) = (target.index(), k.index());
        if t == ki || !self.tables.interferes[t].contains(k) {
            return;
        }
        if self.higher[t].contains(k) {
            self.remove_higher(target, k);
        }
        if !self.lower[t].insert(k) {
            return;
        }
        for (b, &j) in self.block_stages.iter().enumerate() {
            let v = stage_value(self.tables, self.raw_block_values, t, ki, j);
            let slot = t * self.block_stages.len() + b;
            if v > self.block_max[slot] {
                self.block_sum[t] += v - self.block_max[slot];
                self.block_max[slot] = v;
            }
        }
    }

    /// Removes `k` from `L_target`. No-op when `k` is not an effective
    /// member.
    pub fn remove_lower(&mut self, target: JobId, k: JobId) {
        let (t, ki) = (target.index(), k.index());
        if !self.lower[t].remove(k) {
            return;
        }
        for (b, &j) in self.block_stages.iter().enumerate() {
            let v = stage_value(self.tables, self.raw_block_values, t, ki, j);
            let slot = t * self.block_stages.len() + b;
            if v == self.block_max[slot] {
                let mut max = 0u64;
                for kk in self.lower[t].iter() {
                    max = max.max(stage_value(
                        self.tables,
                        self.raw_block_values,
                        t,
                        kk.index(),
                        j,
                    ));
                }
                self.block_sum[t] -= self.block_max[slot] - max;
                self.block_max[slot] = max;
            }
        }
    }

    /// Seeds every target with *all* interfering jobs at higher priority —
    /// the canonical start state of Audsley's algorithm (every other job
    /// assumed higher) — in one fused pass per target, equivalent to but
    /// cheaper than `n·(n−1)` individual [`DelayEvaluator::add_higher`]
    /// calls. Lower sets are emptied.
    pub fn seed_all_higher(&mut self) {
        let tables = self.tables;
        let n = tables.job_count();
        for t in 0..n {
            self.lower[t].clear();
            self.higher[t].clone_from(&tables.interferes[t]);
            let base = t * self.add_stages;
            for j in 0..self.add_stages {
                self.stage_max[base + j] = tables.proc_at(t, j);
            }
            let mut ja = 0u64;
            for k in tables.interferes[t].iter() {
                let ki = k.index();
                ja += self.job_additive[t * tables.cap + ki];
                let row = stage_row(tables, self.raw_stage_values, t, ki);
                let maxima = &mut self.stage_max[base..base + self.add_stages];
                for (slot, &v) in maxima.iter_mut().zip(row) {
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
            self.ja_sum[t] = ja;
            self.stage_sum[t] = self.stage_max[base..base + self.add_stages].iter().sum();
            self.block_sum[t] = 0;
        }
        self.block_max.fill(0);
    }

    /// Returns every target to empty interference sets without releasing
    /// any storage.
    pub fn reset(&mut self) {
        let n = self.tables.job_count();
        for t in 0..n {
            self.ja_sum[t] = 0;
            let mut sum = 0u64;
            for j in 0..self.add_stages {
                let seed = self.tables.proc_at(t, j);
                self.stage_max[t * self.add_stages + j] = seed;
                sum += seed;
            }
            self.stage_sum[t] = sum;
            self.block_sum[t] = 0;
            self.higher[t].clear();
            self.lower[t].clear();
        }
        self.block_max.fill(0);
    }
}

impl<'a> Analysis<'a> {
    /// Creates an incremental [`DelayEvaluator`] for `kind` over this
    /// analysis' precomputed tables, with empty interference sets for
    /// every target.
    #[must_use]
    pub fn evaluator(&self, kind: DelayBoundKind) -> DelayEvaluator<'_> {
        DelayEvaluator::new(self.tables(), kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InterferenceSets;
    use msmr_model::{JobSet, JobSetBuilder, PreemptionPolicy};

    fn jid(i: usize) -> JobId {
        JobId::new(i)
    }

    /// The Observation V.1 system (Figure 2(a) mapping).
    fn observation_v1() -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s1", 2, PreemptionPolicy::Preemptive)
            .stage("s2", 2, PreemptionPolicy::Preemptive)
            .stage("s3", 2, PreemptionPolicy::Preemptive);
        let rows: [([u64; 3], [usize; 3], u64); 4] = [
            ([5, 7, 15], [0, 1, 1], 60),
            ([7, 9, 17], [1, 1, 1], 55),
            ([6, 8, 30], [0, 0, 0], 55),
            ([2, 4, 3], [1, 0, 0], 50),
        ];
        for (times, resources, deadline) in rows {
            b.job()
                .deadline(Time::new(deadline))
                .stage_time(Time::new(times[0]), resources[0])
                .stage_time(Time::new(times[1]), resources[1])
                .stage_time(Time::new(times[2]), resources[2])
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_reference_on_total_orders_for_all_kinds() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let order = [jid(2), jid(0), jid(1), jid(3)];
        for kind in DelayBoundKind::all() {
            let mut eval = analysis.evaluator(kind);
            for (pos, &t) in order.iter().enumerate() {
                for &h in &order[..pos] {
                    eval.add_higher(t, h);
                }
                for &l in &order[pos + 1..] {
                    eval.add_lower(t, l);
                }
            }
            for &t in &order {
                let ctx = InterferenceSets::from_total_order(&order, t);
                assert_eq!(
                    eval.delay(t),
                    analysis.delay_bound(kind, t, &ctx),
                    "{kind}: target {t}"
                );
                assert_eq!(
                    eval.fits(t),
                    analysis.meets_deadline(kind, t, &ctx),
                    "{kind}: target {t}"
                );
            }
        }
    }

    #[test]
    fn removal_restores_the_isolated_bound() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        for kind in DelayBoundKind::all() {
            let mut eval = analysis.evaluator(kind);
            let isolated: Vec<Time> = jobs.job_ids().map(|t| eval.delay(t)).collect();
            for t in jobs.job_ids() {
                for k in jobs.job_ids() {
                    eval.add_higher(t, k);
                }
            }
            for t in jobs.job_ids() {
                for k in jobs.job_ids() {
                    eval.remove_higher(t, k);
                }
            }
            for t in jobs.job_ids() {
                assert_eq!(eval.delay(t), isolated[t.index()], "{kind}");
                assert!(eval.higher(t).is_empty() && eval.lower(t).is_empty());
            }
        }
    }

    #[test]
    fn add_higher_displaces_lower_membership() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let kind = DelayBoundKind::EdgeHybrid;
        let mut eval = analysis.evaluator(kind);
        eval.add_lower(jid(0), jid(1));
        eval.add_higher(jid(0), jid(1));
        assert!(eval.higher(jid(0)).contains(jid(1)));
        assert!(!eval.lower(jid(0)).contains(jid(1)));
        let ctx = InterferenceSets::new([jid(1)], []);
        assert_eq!(eval.delay(jid(0)), analysis.delay_bound(kind, jid(0), &ctx));
        // And back again.
        eval.add_lower(jid(0), jid(1));
        let ctx = InterferenceSets::new([], [jid(1)]);
        assert_eq!(eval.delay(jid(0)), analysis.delay_bound(kind, jid(0), &ctx));
    }

    #[test]
    fn self_and_duplicate_operations_are_no_ops() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let mut eval = analysis.evaluator(DelayBoundKind::RefinedPreemptive);
        let before = eval.delay(jid(0));
        eval.add_higher(jid(0), jid(0));
        eval.remove_higher(jid(0), jid(2));
        eval.remove_lower(jid(0), jid(2));
        assert_eq!(eval.delay(jid(0)), before);
        eval.add_higher(jid(0), jid(1));
        let once = eval.delay(jid(0));
        eval.add_higher(jid(0), jid(1));
        assert_eq!(eval.delay(jid(0)), once);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let mut eval = analysis.evaluator(DelayBoundKind::NonPreemptiveMsmr);
        let initial = eval.delays();
        for t in jobs.job_ids() {
            for k in jobs.job_ids() {
                if k < t {
                    eval.add_higher(t, k);
                } else {
                    eval.add_lower(t, k);
                }
            }
        }
        eval.reset();
        assert_eq!(eval.delays(), initial);
        assert_eq!(eval.kind(), DelayBoundKind::NonPreemptiveMsmr);
    }
}
