//! Delay composition algebra (DCA) end-to-end delay bounds for multi-stage
//! multi-resource (MSMR) pipelines.
//!
//! This crate implements every delay bound used by the paper
//! *"Optimal Fixed Priority Scheduling in Multi-Stage Multi-Resource
//! Distributed Real-Time Systems"* (DATE 2024):
//!
//! | Paper equation | This crate | Scope |
//! |----------------|------------|-------|
//! | Eq. 1 | [`Analysis::preemptive_single_resource_bound`] | preemptive, multi-stage *single-resource* pipeline |
//! | Eq. 2 | [`Analysis::non_preemptive_single_resource_bound`] | non-preemptive, single-resource pipeline (OPA-*in*compatible) |
//! | Eq. 3 | [`Analysis::preemptive_msmr_bound`] | preemptive MSMR, per-segment job-additive terms |
//! | Eq. 4 | [`Analysis::non_preemptive_msmr_bound`] | non-preemptive MSMR (OPA-*in*compatible) |
//! | Eq. 5 | [`Analysis::non_preemptive_opa_bound`] | non-preemptive MSMR, pessimistic but OPA-compatible |
//! | Eq. 6 | [`Analysis::refined_preemptive_bound`] | preemptive MSMR, refined `w_{i,k}` job-additive terms |
//! | Eq. 10 | [`Analysis::edge_hybrid_bound`] | preemptive pipeline with a non-preemptive last stage (edge offload/compute/download) |
//!
//! The bounds take the *target* job and an [`InterferenceSets`] value
//! describing the sets of higher- and lower-priority jobs (`H_i` and
//! `L_i`); they return an upper bound on the end-to-end delay `Δ_i`.
//! Jobs whose interference windows do not overlap the target's window are
//! ignored automatically, per §II of the paper.
//!
//! [`Analysis`] precomputes all pairwise interference data
//! ([`PairInterference`]) of a [`JobSet`](msmr_model::JobSet) once, so the
//! `O(n²)` delay-bound evaluations performed by priority-assignment
//! algorithms stay cheap.
//!
//! # Incremental evaluation architecture
//!
//! The [`Analysis`] methods above are the *reference* implementation:
//! straightforward transcriptions of the paper's formulas, evaluated from
//! scratch in `O(|H_i|·N)` per call. Search algorithms (the OPT
//! branch-and-bound, Audsley's loop in OPDCA, DMR's repair phase) evaluate
//! millions of *neighbouring* interference configurations, for which the
//! crate provides an allocation-free incremental engine built from three
//! pieces:
//!
//! * [`JobMask`] — a bitset over job ids whose first 64 bits live inline
//!   (no heap for `n ≤ 64`; larger populations pre-size their spill words
//!   once). Set membership, the `effective_higher`/`effective_lower`
//!   window-overlap filters and iteration are word operations.
//! * [`PairTables`] — a flat struct-of-arrays projection of the pair
//!   table, built once inside [`Analysis::new`]: dense `ep_{k,j}` ticks
//!   contiguous per (target, interferer), one precomputed job-additive
//!   scalar per pair and bound family, per-target interference masks and
//!   per-target constants (self terms, deadlines, the Eq. 5 blocking sum).
//! * [`DelayEvaluator`] — maintains, per target, the running job-additive
//!   sum and the per-stage maxima (plus blocking maxima where the bound
//!   has a lower-priority term) under `add_higher`/`remove_higher`/
//!   `add_lower`/`remove_lower` updates in `O(N)` each, with an exact
//!   recompute fallback when a removed job held a stage maximum; reading a
//!   delay is `O(1)`. All aggregates are exact integer sums over the same
//!   precomputed ticks the reference reads, so evaluator delays are
//!   bit-identical to [`Analysis::delay_bound`] for every reachable state
//!   and all seven [`DelayBoundKind`]s (property-tested in
//!   `tests/evaluator_equivalence.rs`).
//!
//! Callers that mutate priority relations (e.g. an undo-based search)
//! apply the inverse operations on backtrack instead of cloning any
//! state; `msmr-sched`'s OPT/OPDCA/DMR engines are all driven this way.
//!
//! The tables also support **online extension** for admission-control
//! services: [`PairTables::extend_with_job`] /
//! [`Analysis::extend_with_job`] append one arriving job by computing
//! only its new row and column (`O(n·N)` pairs, bit-identical to a full
//! rebuild — property-tested in `tests/tables_extension.rs`), and
//! [`PairTables::remove_last_job`] rolls a rejected arrival back. The
//! `msmr-serve` sessions keep one set of tables warm across requests
//! this way instead of re-running the `O(n²·N)` pass per arrival.
//!
//! # Example
//!
//! ```
//! use msmr_dca::{Analysis, DelayBoundKind, InterferenceSets};
//! use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};
//!
//! # fn main() -> Result<(), msmr_model::ModelError> {
//! let mut b = JobSetBuilder::new();
//! b.stage("net", 1, PreemptionPolicy::Preemptive)
//!     .stage("cpu", 1, PreemptionPolicy::Preemptive);
//! b.job()
//!     .deadline(Time::from_millis(100))
//!     .stage_time(Time::from_millis(10), 0)
//!     .stage_time(Time::from_millis(30), 0)
//!     .add()?;
//! b.job()
//!     .deadline(Time::from_millis(60))
//!     .stage_time(Time::from_millis(5), 0)
//!     .stage_time(Time::from_millis(10), 0)
//!     .add()?;
//! let jobs = b.build()?;
//! let analysis = Analysis::new(&jobs);
//!
//! // Job 0 at the lowest priority: job 1 is higher priority.
//! let ctx = InterferenceSets::from_total_order(&[1.into(), 0.into()], 0.into());
//! let delta = analysis.delay_bound(DelayBoundKind::RefinedPreemptive, 0.into(), &ctx);
//! assert!(delta <= Time::from_millis(100));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod bounds;
mod context;
mod evaluator;
mod mask;
mod pair;
mod tables;

pub use analysis::Analysis;
pub use bounds::DelayBoundKind;
pub use context::InterferenceSets;
pub use evaluator::DelayEvaluator;
pub use mask::{JobMask, JobMaskIter};
pub use pair::PairInterference;
pub use tables::PairTables;
