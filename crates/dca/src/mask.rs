//! Allocation-free bitsets over job ids.

use msmr_model::JobId;

/// Number of inline words: ids below `64 · INLINE_WORDS` never touch the
/// heap, which covers the paper's evaluation scale (100 jobs) and the
/// branch-and-bound's allocation-free guarantee.
const INLINE_WORDS: usize = 2;

/// A set of [`JobId`]s stored as a bitmask.
///
/// The first 128 ids live in inline words, so sets over job populations of
/// `n ≤ 128` never touch the heap — the property the branch-and-bound
/// search relies on for allocation-free nodes. Larger populations spill
/// into a heap-backed tail of additional words;
/// [`JobMask::with_capacity`] pre-sizes that tail once so later mutations
/// stay allocation-free too.
///
/// # Example
///
/// ```
/// use msmr_dca::JobMask;
/// use msmr_model::JobId;
///
/// let mut mask = JobMask::new();
/// assert!(mask.insert(JobId::new(3)));
/// assert!(!mask.insert(JobId::new(3)));
/// assert!(mask.contains(JobId::new(3)));
/// assert_eq!(mask.iter().collect::<Vec<_>>(), vec![JobId::new(3)]);
/// assert!(mask.remove(JobId::new(3)));
/// assert!(mask.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobMask {
    /// Bits for ids `0..64·INLINE_WORDS`.
    head: [u64; INLINE_WORDS],
    /// Bits for ids `64·INLINE_WORDS..`; word `w` holds ids
    /// `64·(INLINE_WORDS + w) ..`.
    tail: Vec<u64>,
}

impl JobMask {
    /// Creates an empty mask. No allocation is performed; the tail grows
    /// lazily if ids ≥ 128 are inserted.
    #[must_use]
    pub fn new() -> Self {
        JobMask::default()
    }

    /// Creates an empty mask whose tail is pre-sized for ids `0..n`, so
    /// subsequent insertions never allocate.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let words = n.div_ceil(64);
        JobMask {
            head: [0; INLINE_WORDS],
            tail: vec![0; words.saturating_sub(INLINE_WORDS)],
        }
    }

    /// Inserts a job id; returns `true` if it was not already present.
    pub fn insert(&mut self, job: JobId) -> bool {
        let idx = job.index();
        let word = self.word_mut(idx);
        let bit = 1u64 << (idx % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes a job id; returns `true` if it was present.
    pub fn remove(&mut self, job: JobId) -> bool {
        let idx = job.index();
        if idx >= 64 * INLINE_WORDS && idx / 64 - INLINE_WORDS >= self.tail.len() {
            return false;
        }
        let word = self.word_mut(idx);
        let bit = 1u64 << (idx % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Returns `true` if the id is in the set.
    #[must_use]
    pub fn contains(&self, job: JobId) -> bool {
        let idx = job.index();
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if word < INLINE_WORDS {
            self.head[word] & bit != 0
        } else {
            self.tail
                .get(word - INLINE_WORDS)
                .is_some_and(|w| w & bit != 0)
        }
    }

    /// Removes every id without releasing the tail storage.
    pub fn clear(&mut self) {
        self.head = [0; INLINE_WORDS];
        self.tail.fill(0);
    }

    /// Number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.head
            .iter()
            .chain(&self.tail)
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head.iter().all(|&w| w == 0) && self.tail.iter().all(|&w| w == 0)
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> JobMaskIter<'_> {
        JobMaskIter {
            mask: self,
            word: self.head[0],
            next_word: 1,
        }
    }

    fn word_mut(&mut self, idx: usize) -> &mut u64 {
        let word = idx / 64;
        if word < INLINE_WORDS {
            &mut self.head[word]
        } else {
            let word = word - INLINE_WORDS;
            if word >= self.tail.len() {
                self.tail.resize(word + 1, 0);
            }
            &mut self.tail[word]
        }
    }
}

impl FromIterator<JobId> for JobMask {
    fn from_iter<I: IntoIterator<Item = JobId>>(iter: I) -> Self {
        let mut mask = JobMask::new();
        for job in iter {
            mask.insert(job);
        }
        mask
    }
}

impl<'a> IntoIterator for &'a JobMask {
    type Item = JobId;
    type IntoIter = JobMaskIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending iterator over the ids of a [`JobMask`].
#[derive(Debug, Clone)]
pub struct JobMaskIter<'a> {
    mask: &'a JobMask,
    /// Remaining bits of the word currently being drained.
    word: u64,
    /// Index of the next word to drain (`< INLINE_WORDS`: head word,
    /// otherwise tail word `next_word - INLINE_WORDS`).
    next_word: usize,
}

impl Iterator for JobMaskIter<'_> {
    type Item = JobId;

    fn next(&mut self) -> Option<JobId> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(JobId::new((self.next_word - 1) * 64 + bit));
            }
            self.word = if self.next_word < INLINE_WORDS {
                self.mask.head[self.next_word]
            } else if let Some(&word) = self.mask.tail.get(self.next_word - INLINE_WORDS) {
                word
            } else {
                return None;
            };
            self.next_word += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jid(i: usize) -> JobId {
        JobId::new(i)
    }

    #[test]
    fn insert_remove_contains_small_ids() {
        let mut mask = JobMask::new();
        assert!(mask.is_empty());
        assert!(mask.insert(jid(0)));
        assert!(mask.insert(jid(63)));
        assert!(!mask.insert(jid(63)));
        assert!(mask.contains(jid(0)) && mask.contains(jid(63)));
        assert!(!mask.contains(jid(1)));
        assert_eq!(mask.len(), 2);
        assert!(mask.remove(jid(0)));
        assert!(!mask.remove(jid(0)));
        assert_eq!(mask.len(), 1);
    }

    #[test]
    fn spills_past_128_jobs() {
        let mut mask = JobMask::with_capacity(300);
        for i in [0usize, 64, 65, 127, 128, 130, 299] {
            assert!(mask.insert(jid(i)));
        }
        assert_eq!(mask.len(), 7);
        assert!(mask.contains(jid(130)));
        assert!(!mask.contains(jid(131)));
        assert!(!mask.contains(jid(1000)));
        assert_eq!(
            mask.iter().map(JobId::index).collect::<Vec<_>>(),
            vec![0, 64, 65, 127, 128, 130, 299]
        );
        assert!(mask.remove(jid(128)));
        assert!(!mask.contains(jid(128)));
        // Removing an id beyond the tail is a no-op, not a panic.
        assert!(!mask.remove(jid(100_000)));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut mask = JobMask::with_capacity(256);
        mask.insert(jid(200));
        mask.clear();
        assert!(mask.is_empty());
        assert!(!mask.contains(jid(200)));
        // Tail storage survived the clear, so this insert is in-place.
        assert!(mask.insert(jid(200)));
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let mask: JobMask = [jid(5), jid(2), jid(5), jid(90)].into_iter().collect();
        assert_eq!(mask.len(), 3);
        let ids: Vec<JobId> = (&mask).into_iter().collect();
        assert_eq!(ids, vec![jid(2), jid(5), jid(90)]);
    }

    #[test]
    fn sets_of_128_or_fewer_jobs_never_allocate_a_tail() {
        let mask = JobMask::with_capacity(128);
        assert!(mask.tail.is_empty());
        let mut mask = JobMask::new();
        for i in 0..128 {
            mask.insert(jid(i));
        }
        assert!(mask.tail.is_empty());
        assert_eq!(mask.len(), 128);
    }
}
