//! Delay-bound evaluation over a precomputed interference table.

use std::sync::OnceLock;

use msmr_model::{JobId, JobSet, StageId, Time};

use crate::{DelayBoundKind, InterferenceSets, PairInterference, PairTables};

/// Precomputed delay composition analysis of one [`JobSet`].
///
/// Construction is `O(n²·N)`: for every ordered pair of jobs the segment
/// structure and shared-stage processing times are computed once. Every
/// delay-bound evaluation afterwards is `O(|H_i|·N)`, which keeps the
/// `O(n²)` schedulability-test invocations of OPA and the many evaluations
/// of the pairwise branch-and-bound search cheap.
///
/// See the crate-level documentation for the mapping between methods and
/// paper equations.
#[derive(Debug)]
pub struct Analysis<'a> {
    jobs: &'a JobSet,
    /// The rich per-pair objects backing the reference bounds. Built
    /// lazily: the incremental hot path ([`crate::DelayEvaluator`]) reads
    /// only the flat `tables`, so callers that never touch a reference
    /// bound skip this `O(n²)` allocation-heavy pass entirely.
    pairs: OnceLock<Vec<PairInterference>>,
    tables: PairTables,
}

impl Clone for Analysis<'_> {
    fn clone(&self) -> Self {
        let pairs = OnceLock::new();
        if let Some(values) = self.pairs.get() {
            let _ = pairs.set(values.clone());
        }
        Analysis {
            jobs: self.jobs,
            pairs,
            tables: self.tables.clone(),
        }
    }
}

impl<'a> Analysis<'a> {
    /// Precomputes the pairwise interference tables of `jobs` (one flat
    /// `O(n²·N)` pass; the per-pair [`PairInterference`] objects of the
    /// reference paths are materialised on first use).
    #[must_use]
    pub fn new(jobs: &'a JobSet) -> Self {
        let tables = PairTables::build(jobs);
        Analysis {
            jobs,
            pairs: OnceLock::new(),
            tables,
        }
    }

    /// Re-assembles an analysis from already-built [`PairTables`] —
    /// the cross-request caching entry point: a long-running admission
    /// session keeps the tables alive (extending them per arrival via
    /// [`PairTables::extend_with_job`]) and wraps them in a fresh
    /// `Analysis` per query instead of paying [`Analysis::new`]'s
    /// `O(n²·N)` pass again.
    ///
    /// # Panics
    ///
    /// Panics if the tables do not describe `jobs` (job or stage count
    /// mismatch). The per-pair *values* are trusted; callers must pass the
    /// job set the tables were built from (and extended with).
    #[must_use]
    pub fn from_tables(jobs: &'a JobSet, tables: PairTables) -> Self {
        assert_eq!(
            tables.job_count(),
            jobs.len(),
            "tables were built for a different number of jobs"
        );
        assert_eq!(
            tables.stage_count(),
            jobs.stage_count(),
            "tables were built for a different pipeline"
        );
        Analysis {
            jobs,
            pairs: OnceLock::new(),
            tables,
        }
    }

    /// Releases the precomputed tables for reuse (the counterpart of
    /// [`Analysis::from_tables`]).
    #[must_use]
    pub fn into_tables(self) -> PairTables {
        self.tables
    }

    /// Extends the analysis with the one job that `jobs` appends to the
    /// analysed set, reusing every already-computed pair: only the new
    /// job's row and column of the pair tables are computed (`O(n·N)`
    /// instead of the `O(n²·N)` rebuild of [`Analysis::new`]). The
    /// returned analysis borrows the extended job set and is bit-identical
    /// to `Analysis::new(jobs)` for every bound (property-tested).
    ///
    /// The lazily-built reference pair objects are discarded (their dense
    /// `n×n` layout cannot be extended in place); they re-materialise on
    /// the next reference-bound evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` does not extend the analysed set by exactly one
    /// job or changes the pipeline.
    #[must_use]
    pub fn extend_with_job(self, jobs: &JobSet) -> Analysis<'_> {
        let mut tables = self.tables;
        tables.extend_with_job(jobs);
        Analysis {
            jobs,
            pairs: OnceLock::new(),
            tables,
        }
    }

    /// The lazily-built per-pair interference objects, indexed
    /// `target·n + interferer`.
    fn pair_table(&self) -> &[PairInterference] {
        self.pairs.get_or_init(|| {
            let n = self.jobs.len();
            let mut pairs = Vec::with_capacity(n * n);
            for i in 0..n {
                for k in 0..n {
                    pairs.push(PairInterference::compute(
                        self.jobs,
                        JobId::new(i),
                        JobId::new(k),
                    ));
                }
            }
            pairs
        })
    }

    /// The job set being analysed (with the full borrow lifetime, so the
    /// reference can outlive the analysis value itself).
    #[must_use]
    pub fn jobs(&self) -> &'a JobSet {
        self.jobs
    }

    /// The flat struct-of-arrays projection of the pair table used by
    /// [`DelayEvaluator`](crate::DelayEvaluator).
    #[must_use]
    pub fn tables(&self) -> &PairTables {
        &self.tables
    }

    /// Precomputed interference data of the ordered pair
    /// *(target, interferer)*.
    ///
    /// Ids are range-checked in debug builds only (this lookup sits on the
    /// reference evaluation hot path); out-of-range ids in release builds
    /// either panic on the underlying slice index or — when
    /// `target·n + interferer` happens to stay in bounds — return data of
    /// a different pair. Use [`Analysis::try_pair`] when the ids are not
    /// known to be valid.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either id is out of range.
    #[must_use]
    pub fn pair(&self, target: JobId, interferer: JobId) -> &PairInterference {
        let n = self.jobs.len();
        debug_assert!(
            target.index() < n && interferer.index() < n,
            "job id out of range"
        );
        &self.pair_table()[target.index() * n + interferer.index()]
    }

    /// Checked variant of [`Analysis::pair`]: returns `None` when either
    /// id is out of range for the analysed job set.
    #[must_use]
    pub fn try_pair(&self, target: JobId, interferer: JobId) -> Option<&PairInterference> {
        let n = self.jobs.len();
        if target.index() < n && interferer.index() < n {
            Some(&self.pair_table()[target.index() * n + interferer.index()])
        } else {
            None
        }
    }

    /// The higher-priority jobs of `ctx` that can actually interfere with
    /// `target` (overlapping windows), i.e. the effective `H_i`.
    fn effective_higher(&self, target: JobId, ctx: &InterferenceSets) -> Vec<JobId> {
        ctx.higher()
            .iter()
            .copied()
            .filter(|&k| k != target && self.pair(target, k).interferes())
            .collect()
    }

    /// The lower-priority jobs of `ctx` that can actually interfere with
    /// `target`, i.e. the effective `L_i`.
    fn effective_lower(&self, target: JobId, ctx: &InterferenceSets) -> Vec<JobId> {
        ctx.lower()
            .iter()
            .copied()
            .filter(|&k| k != target && self.pair(target, k).interferes())
            .collect()
    }

    /// Stage-additive component `Σ_{j=1}^{N-1} max_{k ∈ Q_i} ep_{k,j}`
    /// (shared-stage variant, used by Eqs. 3–6 and 10).
    fn stage_additive_shared(&self, target: JobId, higher: &[JobId]) -> Time {
        let n_stages = self.jobs.stage_count();
        let mut total = Time::ZERO;
        for j in 0..n_stages.saturating_sub(1) {
            let stage = StageId::new(j);
            let mut max = self.jobs.job(target).processing(stage);
            for &k in higher {
                max = max.max(self.pair(target, k).ep(stage));
            }
            total += max;
        }
        total
    }

    /// Stage-additive component over raw processing times
    /// `Σ_{j=1}^{N-1} max_{k ∈ Q_i} P_{k,j}` (single-resource variant,
    /// Eqs. 1 and 2).
    fn stage_additive_raw(&self, target: JobId, higher: &[JobId]) -> Time {
        let n_stages = self.jobs.stage_count();
        let mut total = Time::ZERO;
        for j in 0..n_stages.saturating_sub(1) {
            let stage = StageId::new(j);
            let mut max = self.jobs.job(target).processing(stage);
            for &k in higher {
                max = max.max(self.jobs.job(k).processing(stage));
            }
            total += max;
        }
        total
    }

    /// Eq. 1 — preemptive scheduling in a multi-stage **single-resource**
    /// pipeline.
    ///
    /// `Δ_i ≤ Σ_{k∈Q_i} t_{k,1} + Σ_{k∈H^a_i} t_{k,2}
    ///        + Σ_{j=1}^{N-1} max_{k∈Q_i} P_{k,j}`
    ///
    /// where `H^a_i ⊆ H_i` contains the higher-priority jobs arriving
    /// strictly after the target.
    #[must_use]
    pub fn preemptive_single_resource_bound(&self, target: JobId, ctx: &InterferenceSets) -> Time {
        let higher = self.effective_higher(target, ctx);
        let target_job = self.jobs.job(target);
        let mut delta = target_job.max_processing();
        for &k in &higher {
            let job_k = self.jobs.job(k);
            delta += job_k.max_processing();
            if job_k.arrival() > target_job.arrival() {
                delta += job_k.nth_max_processing(2);
            }
        }
        delta + self.stage_additive_raw(target, &higher)
    }

    /// Eq. 2 — non-preemptive scheduling in a single-resource pipeline.
    ///
    /// `Δ_i ≤ Σ_{k∈Q_i} t_{k,1} + Σ_{j=1}^{N-1} max_{k∈Q_i} P_{k,j}
    ///        + Σ_{j=1}^{N} max_{k∈L_i} P_{k,j}`
    ///
    /// This bound depends on the *content* of `L_i` and is therefore not
    /// OPA-compatible (Observation IV.2).
    #[must_use]
    pub fn non_preemptive_single_resource_bound(
        &self,
        target: JobId,
        ctx: &InterferenceSets,
    ) -> Time {
        let higher = self.effective_higher(target, ctx);
        let lower = self.effective_lower(target, ctx);
        let mut delta = self.jobs.job(target).max_processing();
        for &k in &higher {
            delta += self.jobs.job(k).max_processing();
        }
        delta += self.stage_additive_raw(target, &higher);
        for j in 0..self.jobs.stage_count() {
            let stage = StageId::new(j);
            let blocking = lower
                .iter()
                .map(|&k| self.jobs.job(k).processing(stage))
                .max()
                .unwrap_or(Time::ZERO);
            delta += blocking;
        }
        delta
    }

    /// Eq. 3 — preemptive MSMR bound with `2·m_{i,k}` job-additive terms
    /// per job of `Q_i` (one pair of terms per shared segment).
    ///
    /// `Δ_i ≤ Σ_{k∈Q_i} 2·m_{i,k}·et_{k,1}
    ///        + Σ_{j=1}^{N-1} max_{k∈Q_i} ep_{k,j}`
    ///
    /// The formula is evaluated literally (including the factor 2 for the
    /// target's own single segment), exactly as stated in the paper; the
    /// refined Eq. 6 ([`Analysis::refined_preemptive_bound`]) removes that
    /// pessimism and is the bound used by the scheduling algorithms.
    #[must_use]
    pub fn preemptive_msmr_bound(&self, target: JobId, ctx: &InterferenceSets) -> Time {
        let higher = self.effective_higher(target, ctx);
        let mut delta = Time::ZERO;
        let self_pair = self.pair(target, target);
        delta += job_additive_scaled(self_pair, 2 * self_pair.segment_count());
        for &k in &higher {
            let pair = self.pair(target, k);
            delta += job_additive_scaled(pair, 2 * pair.segment_count());
        }
        delta + self.stage_additive_shared(target, &higher)
    }

    /// Eq. 4 — non-preemptive MSMR bound.
    ///
    /// `Δ_i ≤ Σ_{k∈Q_i} m_{i,k}·et_{k,1}
    ///        + Σ_{j=1}^{N-1} max_{k∈Q_i} ep_{k,j}
    ///        + Σ_{j=1}^{N} max_{k∈L_i} ep_{k,j}`
    ///
    /// Like Eq. 2 this depends on the content of `L_i`, so it is
    /// OPA-incompatible; it is however valid (and less pessimistic than
    /// Eq. 5) for checking a *given* assignment, e.g. inside the pairwise
    /// algorithms of §V.
    #[must_use]
    pub fn non_preemptive_msmr_bound(&self, target: JobId, ctx: &InterferenceSets) -> Time {
        let higher = self.effective_higher(target, ctx);
        let lower = self.effective_lower(target, ctx);
        self.non_preemptive_core(target, &higher) + self.blocking_all_stages(target, &lower)
    }

    /// Eq. 5 — OPA-compatible non-preemptive MSMR bound: the blocking term
    /// is taken over every other job instead of `L_i`.
    ///
    /// `Δ_i ≤ Σ_{k∈Q_i} m_{i,k}·et_{k,1}
    ///        + Σ_{j=1}^{N-1} max_{k∈Q_i} ep_{k,j}
    ///        + Σ_{j=1}^{N} max_{k∈J∖J_i} ep_{k,j}`
    #[must_use]
    pub fn non_preemptive_opa_bound(&self, target: JobId, ctx: &InterferenceSets) -> Time {
        let higher = self.effective_higher(target, ctx);
        let everyone_else: Vec<JobId> = self
            .jobs
            .job_ids()
            .filter(|&k| k != target && self.pair(target, k).interferes())
            .collect();
        self.non_preemptive_core(target, &higher) + self.blocking_all_stages(target, &everyone_else)
    }

    /// Shared part of Eqs. 4 and 5: job-additive `m_{i,k}·et_{k,1}` terms
    /// plus the stage-additive component.
    fn non_preemptive_core(&self, target: JobId, higher: &[JobId]) -> Time {
        let mut delta = Time::ZERO;
        let self_pair = self.pair(target, target);
        delta += job_additive_scaled(self_pair, self_pair.segment_count());
        for &k in higher {
            let pair = self.pair(target, k);
            delta += job_additive_scaled(pair, pair.segment_count());
        }
        delta + self.stage_additive_shared(target, higher)
    }

    /// `Σ_{j=1}^{N} max_{k ∈ blockers} ep_{k,j}`.
    fn blocking_all_stages(&self, target: JobId, blockers: &[JobId]) -> Time {
        let mut total = Time::ZERO;
        for j in 0..self.jobs.stage_count() {
            let stage = StageId::new(j);
            let blocking = blockers
                .iter()
                .map(|&k| self.pair(target, k).ep(stage))
                .max()
                .unwrap_or(Time::ZERO);
            total += blocking;
        }
        total
    }

    /// Eq. 6 — refined preemptive MSMR bound.
    ///
    /// `Δ_i ≤ Σ_{k∈Q_i} Σ_{x=1}^{w_{i,k}} et_{k,x}
    ///        + Σ_{j=1}^{N-1} max_{k∈Q_i} ep_{k,j}`
    ///
    /// with `w_{i,i} = 1`: a single-stage segment contributes one
    /// job-additive term, a longer segment two (joining and leaving the
    /// shared pipeline portion).
    #[must_use]
    pub fn refined_preemptive_bound(&self, target: JobId, ctx: &InterferenceSets) -> Time {
        let higher = self.effective_higher(target, ctx);
        let mut delta = self.jobs.job(target).max_processing(); // w_{i,i} = 1
        for &k in &higher {
            let pair = self.pair(target, k);
            delta += pair.sum_of_largest(pair.job_additive_terms());
        }
        delta + self.stage_additive_shared(target, &higher)
    }

    /// Generalised hybrid bound: the refined preemptive interference of
    /// Eq. 6 plus a non-preemptive blocking term
    /// `max_{k∈L_i} ep_{k,j}` for every stage in `blocking_stages`.
    ///
    /// [`Analysis::edge_hybrid_bound`] (paper Eq. 10) is the special case
    /// with blocking at the last stage only.
    #[must_use]
    pub fn hybrid_bound(
        &self,
        target: JobId,
        ctx: &InterferenceSets,
        blocking_stages: &[StageId],
    ) -> Time {
        let lower = self.effective_lower(target, ctx);
        let mut delta = self.refined_preemptive_bound(target, ctx);
        for &stage in blocking_stages {
            let blocking = lower
                .iter()
                .map(|&k| self.pair(target, k).ep(stage))
                .max()
                .unwrap_or(Time::ZERO);
            delta += blocking;
        }
        delta
    }

    /// Eq. 10 — the edge-computing bound used in §VI: preemptive analysis
    /// for every stage plus one blocking term for the non-preemptive last
    /// stage (download through an access point).
    ///
    /// The paper notes that with simultaneous release (`H^a_i = ∅`) and
    /// blocking only at the last stage this bound remains OPA-compatible
    /// even though the blocking term ranges over `L_i`.
    #[must_use]
    pub fn edge_hybrid_bound(&self, target: JobId, ctx: &InterferenceSets) -> Time {
        let last = StageId::new(self.jobs.stage_count() - 1);
        self.hybrid_bound(target, ctx, &[last])
    }

    /// Evaluates the bound selected by `kind`.
    #[must_use]
    pub fn delay_bound(&self, kind: DelayBoundKind, target: JobId, ctx: &InterferenceSets) -> Time {
        match kind {
            DelayBoundKind::PreemptiveSingleResource => {
                self.preemptive_single_resource_bound(target, ctx)
            }
            DelayBoundKind::NonPreemptiveSingleResource => {
                self.non_preemptive_single_resource_bound(target, ctx)
            }
            DelayBoundKind::PreemptiveMsmr => self.preemptive_msmr_bound(target, ctx),
            DelayBoundKind::NonPreemptiveMsmr => self.non_preemptive_msmr_bound(target, ctx),
            DelayBoundKind::NonPreemptiveOpa => self.non_preemptive_opa_bound(target, ctx),
            DelayBoundKind::RefinedPreemptive => self.refined_preemptive_bound(target, ctx),
            DelayBoundKind::EdgeHybrid => self.edge_hybrid_bound(target, ctx),
        }
    }

    /// Returns `true` if the bound selected by `kind` keeps the target
    /// within its end-to-end deadline, i.e. `Δ_i ≤ D_i`.
    #[must_use]
    pub fn meets_deadline(
        &self,
        kind: DelayBoundKind,
        target: JobId,
        ctx: &InterferenceSets,
    ) -> bool {
        self.delay_bound(kind, target, ctx) <= self.jobs.job(target).deadline()
    }
}

/// `scale · et_{k,1}` — helper for the `m_{i,k}`-scaled job-additive terms
/// of Eqs. 3–5.
fn job_additive_scaled(pair: &PairInterference, scale: usize) -> Time {
    let base = pair.max_shared().as_ticks();
    Time::new(base * scale as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_model::{JobSetBuilder, PreemptionPolicy};

    fn jid(i: usize) -> JobId {
        JobId::new(i)
    }

    /// Example 1 of the paper: three-stage single-resource pipeline with
    /// four jobs whose stage-processing times are ⟨5,7,15⟩, ⟨7,9,17⟩,
    /// ⟨6,8,30⟩ and ⟨2,4,3⟩. Deadlines are irrelevant for the delay values.
    fn example1() -> msmr_model::JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s1", 1, PreemptionPolicy::NonPreemptive)
            .stage("s2", 1, PreemptionPolicy::NonPreemptive)
            .stage("s3", 1, PreemptionPolicy::NonPreemptive);
        for times in [[5u64, 7, 15], [7, 9, 17], [6, 8, 30], [2, 4, 3]] {
            b.job()
                .deadline(Time::new(1_000))
                .stage_time(Time::new(times[0]), 0)
                .stage_time(Time::new(times[1]), 0)
                .stage_time(Time::new(times[2]), 0)
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    /// The Observation V.1 system: Example 1 processing times, the
    /// job-to-resource mapping of Figure 2(a) and deadlines {60,55,55,50}.
    fn observation_v1() -> msmr_model::JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s1", 2, PreemptionPolicy::Preemptive)
            .stage("s2", 2, PreemptionPolicy::Preemptive)
            .stage("s3", 2, PreemptionPolicy::Preemptive);
        // J1 <5,7,15>, D=60: S1 resource 0, S2/S3 resource 1.
        b.job()
            .deadline(Time::new(60))
            .stage_time(Time::new(5), 0)
            .stage_time(Time::new(7), 1)
            .stage_time(Time::new(15), 1)
            .add()
            .unwrap();
        // J2 <7,9,17>, D=55: S1 resource 1, S2/S3 resource 1.
        b.job()
            .deadline(Time::new(55))
            .stage_time(Time::new(7), 1)
            .stage_time(Time::new(9), 1)
            .stage_time(Time::new(17), 1)
            .add()
            .unwrap();
        // J3 <6,8,30>, D=55: S1 resource 0, S2/S3 resource 0.
        b.job()
            .deadline(Time::new(55))
            .stage_time(Time::new(6), 0)
            .stage_time(Time::new(8), 0)
            .stage_time(Time::new(30), 0)
            .add()
            .unwrap();
        // J4 <2,4,3>, D=50: S1 resource 1, S2/S3 resource 0.
        b.job()
            .deadline(Time::new(50))
            .stage_time(Time::new(2), 1)
            .stage_time(Time::new(4), 0)
            .stage_time(Time::new(3), 0)
            .add()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn example1_eq2_reproduces_observation_iv2() {
        let jobs = example1();
        let analysis = Analysis::new(&jobs);
        // Priority ordering J1 > J2 > J3 > J4 (ids 0..3): Δ_2 (job id 1).
        let order = [jid(0), jid(1), jid(2), jid(3)];
        let ctx = InterferenceSets::from_total_order(&order, jid(1));
        assert_eq!(
            analysis.non_preemptive_single_resource_bound(jid(1), &ctx),
            Time::new(92)
        );
        // Swapping J2 and J3 *reduces* Δ_2 to 87 even though J2 moved to a
        // lower priority — the violation of OPA-compatibility condition 3.
        let swapped = [jid(0), jid(2), jid(1), jid(3)];
        let ctx = InterferenceSets::from_total_order(&swapped, jid(1));
        assert_eq!(
            analysis.non_preemptive_single_resource_bound(jid(1), &ctx),
            Time::new(87)
        );
    }

    #[test]
    fn example1_eq4_matches_eq2_on_single_resource_pipelines() {
        // With a single resource per stage every pair shares every stage,
        // so the MSMR bound of Eq. 4 degenerates to Eq. 2.
        let jobs = example1();
        let analysis = Analysis::new(&jobs);
        for target in 0..4 {
            let order = [jid(0), jid(1), jid(2), jid(3)];
            let ctx = InterferenceSets::from_total_order(&order, jid(target));
            assert_eq!(
                analysis.non_preemptive_msmr_bound(jid(target), &ctx),
                analysis.non_preemptive_single_resource_bound(jid(target), &ctx),
            );
        }
    }

    #[test]
    fn eq5_is_at_least_eq4() {
        let jobs = example1();
        let analysis = Analysis::new(&jobs);
        for target in 0..4 {
            let order = [jid(3), jid(2), jid(1), jid(0)];
            let ctx = InterferenceSets::from_total_order(&order, jid(target));
            assert!(
                analysis.non_preemptive_opa_bound(jid(target), &ctx)
                    >= analysis.non_preemptive_msmr_bound(jid(target), &ctx)
            );
        }
    }

    #[test]
    fn eq3_is_at_least_eq6() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        for target in 0..4 {
            let order = [jid(0), jid(1), jid(2), jid(3)];
            let ctx = InterferenceSets::from_total_order(&order, jid(target));
            assert!(
                analysis.preemptive_msmr_bound(jid(target), &ctx)
                    >= analysis.refined_preemptive_bound(jid(target), &ctx)
            );
        }
    }

    #[test]
    fn observation_v1_pairwise_delays_under_eq6() {
        // Pairwise assignment of Figure 2(b): J3>J1, J1>J2, J2>J4, J4>J3.
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        // Target J1 (id 0): higher = {J3}.
        let ctx = InterferenceSets::new([jid(2)], [jid(1)]);
        assert_eq!(
            analysis.refined_preemptive_bound(jid(0), &ctx),
            Time::new(34)
        );
        // Target J2 (id 1): higher = {J1}.
        let ctx = InterferenceSets::new([jid(0)], [jid(3)]);
        assert_eq!(
            analysis.refined_preemptive_bound(jid(1), &ctx),
            Time::new(55)
        );
        // Target J3 (id 2): higher = {J4}.
        let ctx = InterferenceSets::new([jid(3)], [jid(0)]);
        assert_eq!(
            analysis.refined_preemptive_bound(jid(2), &ctx),
            Time::new(51)
        );
        // Target J4 (id 3): higher = {J2}.
        let ctx = InterferenceSets::new([jid(1)], [jid(2)]);
        assert_eq!(
            analysis.refined_preemptive_bound(jid(3), &ctx),
            Time::new(22)
        );
    }

    #[test]
    fn observation_v1_no_job_can_take_lowest_priority() {
        // With all three other jobs at higher priority, every job misses
        // its deadline under Eq. 6 — the first OPA step fails, so no total
        // priority ordering exists.
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let expected = [62u64, 57, 56, 64];
        for (target, &want) in expected.iter().enumerate() {
            let higher: Vec<JobId> = (0..4).filter(|&k| k != target).map(jid).collect();
            let ctx = InterferenceSets::new(higher, []);
            let delta = analysis.refined_preemptive_bound(jid(target), &ctx);
            assert_eq!(delta, Time::new(want));
            assert!(delta > jobs.job(jid(target)).deadline());
        }
    }

    #[test]
    fn isolated_job_delay_is_its_largest_plus_other_stage_times() {
        // With no interference, Eq. 6 reduces to t_{i,1} plus the
        // processing of every stage but the last... i.e. for a job alone,
        // the stage-additive component is its own processing on stages
        // 1..N-1 and the job-additive component is its largest stage time.
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let ctx = InterferenceSets::default();
        // J1 <5,7,15>: 15 + (5 + 7) = 27.
        assert_eq!(
            analysis.refined_preemptive_bound(jid(0), &ctx),
            Time::new(27)
        );
    }

    #[test]
    fn higher_priority_job_never_decreases_compatible_bounds() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        for kind in [
            DelayBoundKind::PreemptiveSingleResource,
            DelayBoundKind::PreemptiveMsmr,
            DelayBoundKind::NonPreemptiveOpa,
            DelayBoundKind::RefinedPreemptive,
            DelayBoundKind::EdgeHybrid,
        ] {
            let base = analysis.delay_bound(kind, jid(0), &InterferenceSets::default());
            let with_one = analysis.delay_bound(kind, jid(0), &InterferenceSets::new([jid(1)], []));
            let with_two =
                analysis.delay_bound(kind, jid(0), &InterferenceSets::new([jid(1), jid(2)], []));
            assert!(
                with_one >= base,
                "{kind}: adding interference reduced the bound"
            );
            assert!(with_two >= with_one);
        }
    }

    #[test]
    fn non_interfering_jobs_are_ignored() {
        // A job whose window does not overlap contributes nothing.
        let mut b = JobSetBuilder::new();
        b.stage("s", 1, PreemptionPolicy::Preemptive)
            .stage("t", 1, PreemptionPolicy::Preemptive);
        b.job()
            .arrival(Time::new(0))
            .deadline(Time::new(20))
            .stage_time(Time::new(4), 0)
            .stage_time(Time::new(6), 0)
            .add()
            .unwrap();
        b.job()
            .arrival(Time::new(1_000))
            .deadline(Time::new(20))
            .stage_time(Time::new(9), 0)
            .stage_time(Time::new(9), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let analysis = Analysis::new(&jobs);
        let alone = analysis.refined_preemptive_bound(jid(0), &InterferenceSets::default());
        let with_far_future_job =
            analysis.refined_preemptive_bound(jid(0), &InterferenceSets::new([jid(1)], []));
        assert_eq!(alone, with_far_future_job);
    }

    #[test]
    fn edge_hybrid_adds_last_stage_blocking() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        // Target J1 (id 0), higher {J3}, lower {J2}: J2 shares stages 2 and
        // 3 with J1, so blocking at the last stage adds ep_{2,3} = 17.
        let ctx = InterferenceSets::new([jid(2)], [jid(1)]);
        let preemptive = analysis.refined_preemptive_bound(jid(0), &ctx);
        let hybrid = analysis.edge_hybrid_bound(jid(0), &ctx);
        assert_eq!(hybrid, preemptive + Time::new(17));
        // Blocking over an explicitly chosen stage set matches.
        let last = StageId::new(2);
        assert_eq!(analysis.hybrid_bound(jid(0), &ctx, &[last]), hybrid);
        assert_eq!(analysis.hybrid_bound(jid(0), &ctx, &[]), preemptive);
    }

    #[test]
    fn eq1_accounts_for_late_arriving_higher_priority_jobs() {
        let mut b = JobSetBuilder::new();
        b.stage("s", 1, PreemptionPolicy::Preemptive)
            .stage("t", 1, PreemptionPolicy::Preemptive);
        // Target arrives first.
        b.job()
            .arrival(Time::new(0))
            .deadline(Time::new(100))
            .stage_time(Time::new(10), 0)
            .stage_time(Time::new(20), 0)
            .add()
            .unwrap();
        // Higher-priority job arriving later: contributes t_{k,1} and
        // t_{k,2}.
        b.job()
            .arrival(Time::new(5))
            .deadline(Time::new(100))
            .stage_time(Time::new(8), 0)
            .stage_time(Time::new(3), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let analysis = Analysis::new(&jobs);
        let ctx = InterferenceSets::new([jid(1)], []);
        // Q = {0,1}: t_{0,1}=20, t_{1,1}=8; H^a: t_{1,2}=3;
        // stage-additive j=1: max(10, 8) = 10. Total = 41.
        assert_eq!(
            analysis.preemptive_single_resource_bound(jid(0), &ctx),
            Time::new(41)
        );
        // If the higher-priority job arrived together with the target, the
        // extra t_{k,2} term disappears.
        let mut b = JobSetBuilder::new();
        b.stage("s", 1, PreemptionPolicy::Preemptive)
            .stage("t", 1, PreemptionPolicy::Preemptive);
        b.job()
            .arrival(Time::new(0))
            .deadline(Time::new(100))
            .stage_time(Time::new(10), 0)
            .stage_time(Time::new(20), 0)
            .add()
            .unwrap();
        b.job()
            .arrival(Time::new(0))
            .deadline(Time::new(100))
            .stage_time(Time::new(8), 0)
            .stage_time(Time::new(3), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let analysis = Analysis::new(&jobs);
        let ctx = InterferenceSets::new([jid(1)], []);
        assert_eq!(
            analysis.preemptive_single_resource_bound(jid(0), &ctx),
            Time::new(38)
        );
    }

    #[test]
    fn delay_bound_dispatch_matches_direct_calls() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        let order = [jid(2), jid(0), jid(1), jid(3)];
        let ctx = InterferenceSets::from_total_order(&order, jid(1));
        assert_eq!(
            analysis.delay_bound(DelayBoundKind::RefinedPreemptive, jid(1), &ctx),
            analysis.refined_preemptive_bound(jid(1), &ctx)
        );
        assert_eq!(
            analysis.delay_bound(DelayBoundKind::NonPreemptiveOpa, jid(1), &ctx),
            analysis.non_preemptive_opa_bound(jid(1), &ctx)
        );
        assert_eq!(
            analysis.delay_bound(DelayBoundKind::EdgeHybrid, jid(1), &ctx),
            analysis.edge_hybrid_bound(jid(1), &ctx)
        );
    }

    #[test]
    fn meets_deadline_compares_against_job_deadline() {
        let jobs = observation_v1();
        let analysis = Analysis::new(&jobs);
        // J1 alone: Δ = 27 ≤ 60.
        assert!(analysis.meets_deadline(
            DelayBoundKind::RefinedPreemptive,
            jid(0),
            &InterferenceSets::default()
        ));
        // J4 with everyone higher: Δ = 64 > 50.
        let ctx = InterferenceSets::new([jid(0), jid(1), jid(2)], []);
        assert!(!analysis.meets_deadline(DelayBoundKind::RefinedPreemptive, jid(3), &ctx));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "out of range"))]
    fn pair_lookup_panics_on_bad_id_in_debug_builds() {
        let jobs = example1();
        let analysis = Analysis::new(&jobs);
        let _ = analysis.pair(jid(0), jid(9));
    }

    #[test]
    fn try_pair_checks_both_ids() {
        let jobs = example1();
        let analysis = Analysis::new(&jobs);
        assert!(analysis.try_pair(jid(0), jid(3)).is_some());
        assert!(analysis.try_pair(jid(0), jid(9)).is_none());
        assert!(analysis.try_pair(jid(9), jid(0)).is_none());
        assert_eq!(
            analysis
                .try_pair(jid(1), jid(2))
                .map(|p| p.ep(StageId::new(0))),
            Some(analysis.pair(jid(1), jid(2)).ep(StageId::new(0)))
        );
    }
}
