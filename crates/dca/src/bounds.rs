//! Enumeration of the delay-bound variants defined by the paper.

use std::fmt;

/// Which delay composition bound to evaluate.
///
/// The variants map one-to-one to the equations of the paper; see the
/// crate-level table. [`DelayBoundKind::is_opa_compatible`] records the
/// paper's Observations IV.1 and IV.2: a bound whose value may *decrease*
/// when a lower-priority job set changes violates condition 3 of
/// OPA-compatibility and must not be used inside Audsley's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DelayBoundKind {
    /// Eq. 1 — preemptive scheduling in a multi-stage *single-resource*
    /// pipeline (all jobs compete at every stage).
    PreemptiveSingleResource,
    /// Eq. 2 — non-preemptive scheduling in a single-resource pipeline.
    /// OPA-incompatible (Observation IV.2 / Example 1).
    NonPreemptiveSingleResource,
    /// Eq. 3 — preemptive MSMR bound with `2·m_{i,k}` job-additive terms
    /// per higher-priority job.
    PreemptiveMsmr,
    /// Eq. 4 — non-preemptive MSMR bound; blocking term over `L_i`.
    /// OPA-incompatible.
    NonPreemptiveMsmr,
    /// Eq. 5 — non-preemptive MSMR bound with the blocking term taken over
    /// all other jobs (`J \ J_i`), which restores OPA-compatibility at the
    /// cost of extra pessimism.
    NonPreemptiveOpa,
    /// Eq. 6 — refined preemptive MSMR bound with `w_{i,k}` job-additive
    /// terms (single-stage segments count once). The default preemptive
    /// test of the paper.
    RefinedPreemptive,
    /// Eq. 10 — the edge-computing bound: refined preemptive interference
    /// on all stages plus a non-preemptive blocking term at the *last*
    /// stage (download via an access point).
    EdgeHybrid,
}

impl DelayBoundKind {
    /// All variants, in paper-equation order.
    #[must_use]
    pub const fn all() -> [DelayBoundKind; 7] {
        [
            DelayBoundKind::PreemptiveSingleResource,
            DelayBoundKind::NonPreemptiveSingleResource,
            DelayBoundKind::PreemptiveMsmr,
            DelayBoundKind::NonPreemptiveMsmr,
            DelayBoundKind::NonPreemptiveOpa,
            DelayBoundKind::RefinedPreemptive,
            DelayBoundKind::EdgeHybrid,
        ]
    }

    /// Whether a schedulability test built on this bound satisfies the
    /// three conditions of OPA-compatibility (§III-B, Observations IV.1 and
    /// IV.2).
    #[must_use]
    pub const fn is_opa_compatible(self) -> bool {
        match self {
            DelayBoundKind::PreemptiveSingleResource
            | DelayBoundKind::PreemptiveMsmr
            | DelayBoundKind::NonPreemptiveOpa
            | DelayBoundKind::RefinedPreemptive
            | DelayBoundKind::EdgeHybrid => true,
            DelayBoundKind::NonPreemptiveSingleResource | DelayBoundKind::NonPreemptiveMsmr => {
                false
            }
        }
    }

    /// The paper equation number this variant corresponds to.
    #[must_use]
    pub const fn equation(self) -> u8 {
        match self {
            DelayBoundKind::PreemptiveSingleResource => 1,
            DelayBoundKind::NonPreemptiveSingleResource => 2,
            DelayBoundKind::PreemptiveMsmr => 3,
            DelayBoundKind::NonPreemptiveMsmr => 4,
            DelayBoundKind::NonPreemptiveOpa => 5,
            DelayBoundKind::RefinedPreemptive => 6,
            DelayBoundKind::EdgeHybrid => 10,
        }
    }

    /// Whether the bound models preemptive execution at every stage
    /// (`EdgeHybrid` is preemptive everywhere except the last stage).
    #[must_use]
    pub const fn is_preemptive(self) -> bool {
        matches!(
            self,
            DelayBoundKind::PreemptiveSingleResource
                | DelayBoundKind::PreemptiveMsmr
                | DelayBoundKind::RefinedPreemptive
        )
    }
}

impl fmt::Display for DelayBoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DelayBoundKind::PreemptiveSingleResource => "preemptive single-resource (Eq. 1)",
            DelayBoundKind::NonPreemptiveSingleResource => "non-preemptive single-resource (Eq. 2)",
            DelayBoundKind::PreemptiveMsmr => "preemptive MSMR (Eq. 3)",
            DelayBoundKind::NonPreemptiveMsmr => "non-preemptive MSMR (Eq. 4)",
            DelayBoundKind::NonPreemptiveOpa => "non-preemptive OPA-compatible (Eq. 5)",
            DelayBoundKind::RefinedPreemptive => "refined preemptive (Eq. 6)",
            DelayBoundKind::EdgeHybrid => "edge hybrid (Eq. 10)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matches_paper_observations() {
        use DelayBoundKind::*;
        assert!(PreemptiveSingleResource.is_opa_compatible());
        assert!(!NonPreemptiveSingleResource.is_opa_compatible());
        assert!(PreemptiveMsmr.is_opa_compatible());
        assert!(!NonPreemptiveMsmr.is_opa_compatible());
        assert!(NonPreemptiveOpa.is_opa_compatible());
        assert!(RefinedPreemptive.is_opa_compatible());
        assert!(EdgeHybrid.is_opa_compatible());
    }

    #[test]
    fn equations_are_unique_and_in_order() {
        let eqs: Vec<u8> = DelayBoundKind::all().iter().map(|k| k.equation()).collect();
        assert_eq!(eqs, vec![1, 2, 3, 4, 5, 6, 10]);
    }

    #[test]
    fn preemptive_classification() {
        assert!(DelayBoundKind::RefinedPreemptive.is_preemptive());
        assert!(!DelayBoundKind::NonPreemptiveOpa.is_preemptive());
        assert!(!DelayBoundKind::EdgeHybrid.is_preemptive());
    }

    #[test]
    fn display_mentions_equation() {
        for kind in DelayBoundKind::all() {
            assert!(kind.to_string().contains("Eq."));
        }
    }
}
