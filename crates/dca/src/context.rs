//! Higher-/lower-priority interference sets (`H_i`, `L_i`).

use std::collections::BTreeSet;
use std::fmt;

use msmr_model::JobId;

/// The interference sets of one target job: the set `H_i` of
/// higher-priority jobs and the set `L_i` of lower-priority jobs.
///
/// The delay composition bounds of [`Analysis`](crate::Analysis) are
/// functions of these *sets only* — never of the relative order inside
/// them — which is exactly what makes the resulting schedulability test
/// OPA-compatible (conditions 1 and 2 of §III-B).
///
/// A job absent from both sets is treated as unrelated to the target (e.g.
/// jobs that cannot interfere, or jobs whose relative priority is not yet
/// decided in a pairwise assignment search).
///
/// # Example
///
/// ```
/// use msmr_dca::InterferenceSets;
/// use msmr_model::JobId;
///
/// // Priority order J2 > J0 > J1 (highest to lowest); target J0.
/// let ctx = InterferenceSets::from_total_order(
///     &[JobId::new(2), JobId::new(0), JobId::new(1)],
///     JobId::new(0),
/// );
/// assert!(ctx.is_higher(JobId::new(2)));
/// assert!(ctx.is_lower(JobId::new(1)));
/// assert!(!ctx.is_higher(JobId::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterferenceSets {
    higher: BTreeSet<JobId>,
    lower: BTreeSet<JobId>,
}

impl InterferenceSets {
    /// Creates interference sets from explicit higher- and lower-priority
    /// job collections.
    ///
    /// The target job itself should appear in neither set; it is ignored by
    /// the delay bounds if it does.
    #[must_use]
    pub fn new<H, L>(higher: H, lower: L) -> Self
    where
        H: IntoIterator<Item = JobId>,
        L: IntoIterator<Item = JobId>,
    {
        InterferenceSets {
            higher: higher.into_iter().collect(),
            lower: lower.into_iter().collect(),
        }
    }

    /// Builds the sets of a target job from a total priority order given
    /// from highest to lowest priority.
    ///
    /// Jobs not mentioned in `order` are unrelated to the target.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not appear in `order`.
    #[must_use]
    pub fn from_total_order(order: &[JobId], target: JobId) -> Self {
        let position = order
            .iter()
            .position(|&id| id == target)
            .expect("target job must appear in the priority order");
        InterferenceSets {
            higher: order[..position].iter().copied().collect(),
            lower: order[position + 1..].iter().copied().collect(),
        }
    }

    /// Builds the sets used by Audsley's optimal priority assignment when
    /// probing whether `target` can take the current (lowest unassigned)
    /// priority: all other `unassigned` jobs are assumed higher priority,
    /// and the already-`assigned` jobs (which hold lower priorities) form
    /// `L_i`.
    #[must_use]
    pub fn for_opa_probe<U, A>(unassigned: U, assigned: A, target: JobId) -> Self
    where
        U: IntoIterator<Item = JobId>,
        A: IntoIterator<Item = JobId>,
    {
        let higher = unassigned.into_iter().filter(|&id| id != target).collect();
        let lower = assigned.into_iter().filter(|&id| id != target).collect();
        InterferenceSets { higher, lower }
    }

    /// The set of higher-priority jobs `H_i`.
    #[must_use]
    pub fn higher(&self) -> &BTreeSet<JobId> {
        &self.higher
    }

    /// The set of lower-priority jobs `L_i`.
    #[must_use]
    pub fn lower(&self) -> &BTreeSet<JobId> {
        &self.lower
    }

    /// Returns `true` if `job` is in `H_i`.
    #[must_use]
    pub fn is_higher(&self, job: JobId) -> bool {
        self.higher.contains(&job)
    }

    /// Returns `true` if `job` is in `L_i`.
    #[must_use]
    pub fn is_lower(&self, job: JobId) -> bool {
        self.lower.contains(&job)
    }

    /// Adds a job to `H_i`, removing it from `L_i` if present.
    pub fn insert_higher(&mut self, job: JobId) {
        self.lower.remove(&job);
        self.higher.insert(job);
    }

    /// Adds a job to `L_i`, removing it from `H_i` if present.
    pub fn insert_lower(&mut self, job: JobId) {
        self.higher.remove(&job);
        self.lower.insert(job);
    }

    /// Removes a job from both sets.
    pub fn remove(&mut self, job: JobId) {
        self.higher.remove(&job);
        self.lower.remove(&job);
    }

    /// Builder-style variant of [`InterferenceSets::insert_higher`].
    #[must_use]
    pub fn with_higher(mut self, job: JobId) -> Self {
        self.insert_higher(job);
        self
    }

    /// Builder-style variant of [`InterferenceSets::insert_lower`].
    #[must_use]
    pub fn with_lower(mut self, job: JobId) -> Self {
        self.insert_lower(job);
        self
    }

    /// Number of higher-priority jobs.
    #[must_use]
    pub fn higher_count(&self) -> usize {
        self.higher.len()
    }

    /// Number of lower-priority jobs.
    #[must_use]
    pub fn lower_count(&self) -> usize {
        self.lower.len()
    }
}

impl fmt::Display for InterferenceSets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "H={{{}}} L={{{}}}",
            self.higher
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.lower
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> JobId {
        JobId::new(i)
    }

    #[test]
    fn from_total_order_splits_around_target() {
        let order = [id(3), id(1), id(0), id(2)];
        let ctx = InterferenceSets::from_total_order(&order, id(0));
        assert_eq!(ctx.higher().len(), 2);
        assert!(ctx.is_higher(id(3)) && ctx.is_higher(id(1)));
        assert_eq!(ctx.lower().len(), 1);
        assert!(ctx.is_lower(id(2)));
        assert!(!ctx.is_higher(id(0)) && !ctx.is_lower(id(0)));
    }

    #[test]
    fn highest_and_lowest_priority_targets() {
        let order = [id(0), id(1), id(2)];
        let top = InterferenceSets::from_total_order(&order, id(0));
        assert_eq!(top.higher_count(), 0);
        assert_eq!(top.lower_count(), 2);
        let bottom = InterferenceSets::from_total_order(&order, id(2));
        assert_eq!(bottom.higher_count(), 2);
        assert_eq!(bottom.lower_count(), 0);
    }

    #[test]
    #[should_panic(expected = "must appear")]
    fn missing_target_panics() {
        let _ = InterferenceSets::from_total_order(&[id(1)], id(0));
    }

    #[test]
    fn opa_probe_excludes_target() {
        let ctx =
            InterferenceSets::for_opa_probe(vec![id(0), id(1), id(2)], vec![id(3), id(4)], id(1));
        assert!(ctx.is_higher(id(0)) && ctx.is_higher(id(2)));
        assert!(!ctx.is_higher(id(1)));
        assert!(ctx.is_lower(id(3)) && ctx.is_lower(id(4)));
    }

    #[test]
    fn mutation_keeps_sets_disjoint() {
        let mut ctx = InterferenceSets::new([id(1)], [id(2)]);
        ctx.insert_higher(id(2));
        assert!(ctx.is_higher(id(2)) && !ctx.is_lower(id(2)));
        ctx.insert_lower(id(1));
        assert!(ctx.is_lower(id(1)) && !ctx.is_higher(id(1)));
        ctx.remove(id(1));
        assert!(!ctx.is_lower(id(1)));
        let ctx = ctx.with_higher(id(7)).with_lower(id(8));
        assert!(ctx.is_higher(id(7)) && ctx.is_lower(id(8)));
    }

    #[test]
    fn display_lists_both_sets() {
        let ctx = InterferenceSets::new([id(1)], [id(2)]);
        assert_eq!(ctx.to_string(), "H={J1} L={J2}");
    }
}
