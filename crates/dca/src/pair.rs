//! Precomputed pairwise interference data.

use msmr_model::{JobId, JobSet, Segments, SharedStageTimes, StageId, Time};

/// Precomputed interference data of an ordered job pair
/// *(target `J_i`, interferer `J_k`)*.
///
/// The data combines the segment structure (`m_{i,k}`, `u_{i,k}`,
/// `v_{i,k}`, `w_{i,k}`) with the shared-stage processing times
/// (`ep_{k,j}`, `et_{k,x}`) and the interference-window overlap check of
/// §II. It is computed once per pair by [`Analysis`](crate::Analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairInterference {
    target: JobId,
    interferer: JobId,
    segments: Segments,
    shared: SharedStageTimes,
    interferes: bool,
}

impl PairInterference {
    /// Computes the pair data for `(target, interferer)` in `jobs`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for `jobs`.
    #[must_use]
    pub fn compute(jobs: &JobSet, target: JobId, interferer: JobId) -> Self {
        let t = jobs.job(target);
        let k = jobs.job(interferer);
        let segments = Segments::between(t, k);
        let shared = SharedStageTimes::of(k, t);
        // A job can always "interfere" with itself (its own processing is
        // part of its delay); other jobs only interfere when their windows
        // overlap (§II).
        let interferes = target == interferer || t.window_overlaps(k);
        PairInterference {
            target,
            interferer,
            segments,
            shared,
            interferes,
        }
    }

    /// The target job `J_i`.
    #[must_use]
    pub fn target(&self) -> JobId {
        self.target
    }

    /// The interfering job `J_k`.
    #[must_use]
    pub fn interferer(&self) -> JobId {
        self.interferer
    }

    /// `true` when the interference windows of the two jobs overlap (always
    /// `true` for the degenerate self pair).
    #[must_use]
    pub fn interferes(&self) -> bool {
        self.interferes
    }

    /// The segments shared by the pair.
    #[must_use]
    pub fn segments(&self) -> &Segments {
        &self.segments
    }

    /// `m_{i,k}`: number of segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.count()
    }

    /// `w_{i,k} = u_{i,k} + 2·v_{i,k}`: refined number of job-additive
    /// terms (Eq. 6). For the self pair the bounds use `w_{i,i} = 1`
    /// regardless of this value.
    #[must_use]
    pub fn job_additive_terms(&self) -> usize {
        self.segments.job_additive_terms()
    }

    /// `true` if the pair shares at least one stage.
    #[must_use]
    pub fn shares_any_stage(&self) -> bool {
        !self.segments.is_empty()
    }

    /// `ep_{k,j}`: the interferer's processing time at `stage` if the pair
    /// shares that stage, zero otherwise.
    #[must_use]
    pub fn ep(&self, stage: StageId) -> Time {
        self.shared.ep(stage)
    }

    /// `et_{k,x}`: the `x`-th largest shared-stage processing time
    /// (1-based).
    #[must_use]
    pub fn et(&self, x: usize) -> Time {
        self.shared.et(x)
    }

    /// `et_{k,1}`.
    #[must_use]
    pub fn max_shared(&self) -> Time {
        self.shared.max()
    }

    /// `Σ_{x=1..count} et_{k,x}`.
    #[must_use]
    pub fn sum_of_largest(&self, count: usize) -> Time {
        self.shared.sum_of_largest(count)
    }

    /// The underlying shared-stage time table.
    #[must_use]
    pub fn shared_times(&self) -> &SharedStageTimes {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};

    fn jobs() -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s0", 2, PreemptionPolicy::Preemptive)
            .stage("s1", 2, PreemptionPolicy::Preemptive)
            .stage("s2", 2, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(100))
            .stage_time(Time::new(5), 0)
            .stage_time(Time::new(7), 0)
            .stage_time(Time::new(15), 0)
            .add()
            .unwrap();
        b.job()
            .deadline(Time::new(100))
            .stage_time(Time::new(7), 0)
            .stage_time(Time::new(9), 1)
            .stage_time(Time::new(17), 0)
            .add()
            .unwrap();
        b.job()
            .arrival(Time::new(500))
            .deadline(Time::new(50))
            .stage_time(Time::new(1), 0)
            .stage_time(Time::new(1), 0)
            .stage_time(Time::new(1), 0)
            .add()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pair_combines_segments_and_times() {
        let set = jobs();
        let pair = PairInterference::compute(&set, JobId::new(0), JobId::new(1));
        assert_eq!(pair.target(), JobId::new(0));
        assert_eq!(pair.interferer(), JobId::new(1));
        // Shared at stages 0 and 2 (two single-stage segments).
        assert_eq!(pair.segment_count(), 2);
        assert_eq!(pair.job_additive_terms(), 2);
        assert!(pair.shares_any_stage());
        assert_eq!(pair.ep(StageId::new(0)), Time::new(7));
        assert_eq!(pair.ep(StageId::new(1)), Time::ZERO);
        assert_eq!(pair.ep(StageId::new(2)), Time::new(17));
        assert_eq!(pair.et(1), Time::new(17));
        assert_eq!(pair.max_shared(), Time::new(17));
        assert_eq!(pair.sum_of_largest(2), Time::new(24));
        assert!(pair.interferes());
        assert_eq!(pair.segments().count(), 2);
        assert_eq!(pair.shared_times().max(), Time::new(17));
    }

    #[test]
    fn non_overlapping_windows_do_not_interfere() {
        let set = jobs();
        let pair = PairInterference::compute(&set, JobId::new(0), JobId::new(2));
        assert!(!pair.interferes());
        let self_pair = PairInterference::compute(&set, JobId::new(2), JobId::new(2));
        assert!(self_pair.interferes());
    }
}
