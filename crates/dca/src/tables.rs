//! Struct-of-arrays pair tables backing the incremental delay evaluator.

use std::sync::OnceLock;

use msmr_model::{JobId, JobSet, StageId};

use crate::{DelayBoundKind, JobMask};

/// Flat struct-of-arrays projection of the pairwise interference table.
///
/// [`Analysis`](crate::Analysis) stores one `PairInterference` value per
/// ordered pair; that layout is convenient for the reference bounds but
/// costs a pointer chase and a branch per pair in the hot evaluation
/// loops. `PairTables` re-materialises the same data as dense arrays of
/// raw ticks:
///
/// * `ep[(target·n + k)·N + j]` — the shared-stage processing time
///   `ep_{k,j}` of interferer `k` against `target`, contiguous in the
///   stage index so one incremental update touches one cache line,
/// * `job_additive_*[target·n + k]` — the per-pair job-additive scalar of
///   each bound family (Eqs. 1–6), folded down to a single addition per
///   membership change,
/// * `interferes[target]` — a [`JobMask`] with bit `k` set iff the pair
///   `(target, k)` has overlapping interference windows, turning the
///   `effective_higher`/`effective_lower` filters into single AND/test
///   instructions,
/// * per-target constants (self terms, deadlines and the Eq. 5 blocking
///   sum, which does not depend on `H_i`/`L_i` at all).
///
/// All values are stored as raw `u64` ticks; every aggregate computed from
/// them is an exact integer sum, so the incremental evaluator reproduces
/// the reference bounds bit for bit.
#[derive(Debug)]
pub struct PairTables {
    // NOTE: `Clone` is implemented manually because of the lazy
    // `opa_block` cell.
    /// Number of jobs `n`.
    pub(crate) n: usize,
    /// Number of pipeline stages `N`.
    pub(crate) stages: usize,
    /// Deadline of each job, indexed by id.
    pub(crate) deadline: Vec<u64>,
    /// Raw processing times `P_{k,j}`, indexed `k·N + j`.
    pub(crate) proc: Vec<u64>,
    /// Shared-stage times `ep_{k,j}` per ordered pair, indexed
    /// `(target·n + k)·N + j`.
    pub(crate) ep: Vec<u64>,
    /// Eq. 1 job-additive scalar per pair: `t_{k,1}` plus `t_{k,2}` when
    /// the interferer arrives strictly after the target.
    pub(crate) ja_eq1: Vec<u64>,
    /// Eq. 2 job-additive scalar per pair: `t_{k,1}`.
    pub(crate) ja_eq2: Vec<u64>,
    /// Eq. 3 job-additive scalar per pair: `2·m_{i,k}·et_{k,1}`.
    pub(crate) ja_eq3: Vec<u64>,
    /// Eq. 4/5 job-additive scalar per pair: `m_{i,k}·et_{k,1}`.
    pub(crate) ja_eq45: Vec<u64>,
    /// Eq. 6/10 job-additive scalar per pair:
    /// `Σ_{x=1}^{w_{i,k}} et_{k,x}`.
    pub(crate) ja_eq6: Vec<u64>,
    /// `t_{i,1}` per target (self term of Eqs. 1, 2, 6 and 10).
    pub(crate) self_max_proc: Vec<u64>,
    /// `2·m_{i,i}·et_{i,1}` per target (self term of Eq. 3).
    pub(crate) self_eq3: Vec<u64>,
    /// `m_{i,i}·et_{i,1}` per target (self term of Eqs. 4 and 5).
    pub(crate) self_eq45: Vec<u64>,
    /// Eq. 5 blocking constant per target:
    /// `Σ_j max_{k ∈ J∖J_i} ep_{k,j}` over interfering jobs. Built lazily
    /// on the first Eq. 5 evaluator — no other bound reads it.
    pub(crate) opa_block: OnceLock<Vec<u64>>,
    /// Per-target interference mask: bit `k` ⇔ `k ≠ target` and the
    /// windows of the pair overlap.
    pub(crate) interferes: Vec<JobMask>,
    /// Per-target competitor mask: bit `k` ⇔ `k ≠ target` and the pair
    /// shares at least one resource (`M_i` of the paper).
    pub(crate) competes: Vec<JobMask>,
}

impl Clone for PairTables {
    fn clone(&self) -> Self {
        let opa_block = OnceLock::new();
        if let Some(values) = self.opa_block.get() {
            let _ = opa_block.set(values.clone());
        }
        PairTables {
            n: self.n,
            stages: self.stages,
            deadline: self.deadline.clone(),
            proc: self.proc.clone(),
            ep: self.ep.clone(),
            ja_eq1: self.ja_eq1.clone(),
            ja_eq2: self.ja_eq2.clone(),
            ja_eq3: self.ja_eq3.clone(),
            ja_eq45: self.ja_eq45.clone(),
            ja_eq6: self.ja_eq6.clone(),
            self_max_proc: self.self_max_proc.clone(),
            self_eq3: self.self_eq3.clone(),
            self_eq45: self.self_eq45.clone(),
            opa_block,
            interferes: self.interferes.clone(),
            competes: self.competes.clone(),
        }
    }
}

impl PairTables {
    /// Builds the flat tables directly from the job set in one
    /// `O(n²·N log N)` pass, without materialising any per-pair
    /// intermediate structures (two reusable scratch buffers serve every
    /// pair). The values are defined to be identical to what the lazy
    /// [`PairInterference`](crate::PairInterference) objects would yield —
    /// the property suite cross-checks this bit for bit.
    pub(crate) fn build(jobs: &JobSet) -> Self {
        let n = jobs.len();
        let stages = jobs.stage_count();
        let mut tables = PairTables {
            n,
            stages,
            deadline: Vec::with_capacity(n),
            proc: Vec::with_capacity(n * stages),
            ep: Vec::with_capacity(n * n * stages),
            ja_eq1: Vec::with_capacity(n * n),
            ja_eq2: Vec::with_capacity(n * n),
            ja_eq3: Vec::with_capacity(n * n),
            ja_eq45: Vec::with_capacity(n * n),
            ja_eq6: Vec::with_capacity(n * n),
            self_max_proc: Vec::with_capacity(n),
            self_eq3: Vec::with_capacity(n),
            self_eq45: Vec::with_capacity(n),
            opa_block: OnceLock::new(),
            interferes: Vec::with_capacity(n),
            competes: Vec::with_capacity(n),
        };

        for job in jobs.jobs() {
            tables.deadline.push(job.deadline().as_ticks());
            for j in 0..stages {
                tables.proc.push(job.processing(StageId::new(j)).as_ticks());
            }
        }

        // Per-job quantities hoisted out of the n² pair loop
        // (`nth_max_processing` sorts internally).
        let max_proc: Vec<u64> = jobs.jobs().map(|j| j.max_processing().as_ticks()).collect();
        let second_proc: Vec<u64> = jobs
            .jobs()
            .map(|j| j.nth_max_processing(2).as_ticks())
            .collect();
        let arrival: Vec<u64> = jobs.jobs().map(|j| j.arrival().as_ticks()).collect();
        let abs_deadline: Vec<u64> = jobs
            .jobs()
            .map(|j| j.absolute_deadline().as_ticks())
            .collect();

        // Scratch buffer reused across all n² pairs (stack-backed for
        // realistic stage counts).
        let mut sorted: Vec<u64> = Vec::with_capacity(stages);

        for target in jobs.job_ids() {
            let target_job = jobs.job(target);
            let t = target.index();
            let target_resources = target_job.resources();
            let mut mask = JobMask::with_capacity(n);
            let mut competes = JobMask::with_capacity(n);
            for k in jobs.job_ids() {
                let ki = k.index();
                let job_k = jobs.job(k);
                if k != target && arrival[t] <= abs_deadline[ki] && arrival[ki] <= abs_deadline[t] {
                    mask.insert(k);
                }

                // Shared stages, `ep_{k,j}` and the segment counts
                // `m`/`u`/`v` of the pair, in one stage scan.
                let k_resources = job_k.resources();
                let k_proc = &tables.proc[ki * stages..ki * stages + stages];
                let (mut et1, mut et2, mut total) = (0u64, 0u64, 0u64);
                let (mut m, mut u, mut v) = (0u64, 0usize, 0usize);
                let mut run = 0usize;
                for j in 0..stages {
                    let is_shared = k == target || target_resources[j] == k_resources[j];
                    let ep = if is_shared { k_proc[j] } else { 0 };
                    tables.ep.push(ep);
                    total += ep;
                    if ep > et1 {
                        et2 = et1;
                        et1 = ep;
                    } else if ep > et2 {
                        et2 = ep;
                    }
                    if is_shared {
                        run += 1;
                    } else if run > 0 {
                        m += 1;
                        if run == 1 {
                            u += 1;
                        } else {
                            v += 1;
                        }
                        run = 0;
                    }
                }
                if run > 0 {
                    m += 1;
                    if run == 1 {
                        u += 1;
                    } else {
                        v += 1;
                    }
                }
                if m > 0 && k != target {
                    competes.insert(k);
                }

                let mut eq1 = max_proc[ki];
                if arrival[ki] > arrival[t] {
                    eq1 += second_proc[ki];
                }
                tables.ja_eq1.push(eq1);
                tables.ja_eq2.push(max_proc[ki]);
                tables.ja_eq3.push(2 * m * et1);
                tables.ja_eq45.push(m * et1);
                // `w = u + 2v` never exceeds the number of shared stages,
                // so summing the `w` largest ep values over all stages
                // (zeros for unshared ones) matches `Σ_{x≤w} et_{k,x}`.
                // The common cases fall out of the scan above; only
                // `3 ≤ w < N` (pipelines of four or more stages) needs an
                // actual selection.
                let w = u + 2 * v;
                let ja_eq6 = match w {
                    0 => 0,
                    1 => et1,
                    2 => et1 + et2,
                    _ if w >= stages => total,
                    _ => {
                        let base = (t * n + ki) * stages;
                        sorted.clear();
                        sorted.extend_from_slice(&tables.ep[base..base + stages]);
                        sorted.sort_unstable_by(|a, b| b.cmp(a));
                        sorted.iter().take(w).sum()
                    }
                };
                tables.ja_eq6.push(ja_eq6);
            }

            let self_et1 = max_proc[t];
            tables.self_max_proc.push(self_et1);
            // The self pair shares every stage: one segment (`m = 1`).
            tables.self_eq3.push(2 * self_et1);
            tables.self_eq45.push(self_et1);

            tables.interferes.push(mask);
            tables.competes.push(competes);
        }
        tables
    }

    /// The Eq. 5 blocking constants, `Σ_j max_{k ∈ J∖J_i, interfering}
    /// ep_{k,j}` per target, computed on first use.
    pub(crate) fn opa_block(&self) -> &[u64] {
        self.opa_block.get_or_init(|| {
            let mut blocks = Vec::with_capacity(self.n);
            for t in 0..self.n {
                let mut opa = 0u64;
                let mut maxima = vec![0u64; self.stages];
                for k in self.interferes[t].iter() {
                    let base = (t * self.n + k.index()) * self.stages;
                    let row = &self.ep[base..base + self.stages];
                    for (slot, &v) in maxima.iter_mut().zip(row) {
                        if v > *slot {
                            *slot = v;
                        }
                    }
                }
                for v in maxima {
                    opa += v;
                }
                blocks.push(opa);
            }
            blocks
        })
    }

    /// Number of jobs the tables were built for.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.n
    }

    /// Number of pipeline stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages
    }

    /// The interference mask of a target: bit `k` is set iff `k ≠ target`
    /// and the interference windows of the pair overlap.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn interference_mask(&self, target: JobId) -> &JobMask {
        &self.interferes[target.index()]
    }

    /// The competitor mask of a target: bit `k` is set iff `k ≠ target`
    /// and the pair shares at least one resource somewhere in the
    /// pipeline (the set `M_i`, identical to
    /// [`JobSet::competitors`](msmr_model::JobSet::competitors) but with
    /// no allocation).
    #[must_use]
    pub fn competitor_mask(&self, target: JobId) -> &JobMask {
        &self.competes[target.index()]
    }

    /// `ep_{k,j}` of `interferer` against `target`, in raw ticks.
    #[inline]
    pub(crate) fn ep_at(&self, target: usize, k: usize, stage: usize) -> u64 {
        self.ep[(target * self.n + k) * self.stages + stage]
    }

    /// `P_{k,j}` in raw ticks.
    #[inline]
    pub(crate) fn proc_at(&self, k: usize, stage: usize) -> u64 {
        self.proc[k * self.stages + stage]
    }

    /// The job-additive scalar table of one bound kind.
    pub(crate) fn job_additive(&self, kind: DelayBoundKind) -> &[u64] {
        match kind {
            DelayBoundKind::PreemptiveSingleResource => &self.ja_eq1,
            DelayBoundKind::NonPreemptiveSingleResource => &self.ja_eq2,
            DelayBoundKind::PreemptiveMsmr => &self.ja_eq3,
            DelayBoundKind::NonPreemptiveMsmr | DelayBoundKind::NonPreemptiveOpa => &self.ja_eq45,
            DelayBoundKind::RefinedPreemptive | DelayBoundKind::EdgeHybrid => &self.ja_eq6,
        }
    }

    /// The per-target self term of one bound kind (the target's own
    /// contribution to the job-additive component).
    pub(crate) fn self_term(&self, kind: DelayBoundKind, target: usize) -> u64 {
        match kind {
            DelayBoundKind::PreemptiveSingleResource
            | DelayBoundKind::NonPreemptiveSingleResource
            | DelayBoundKind::RefinedPreemptive
            | DelayBoundKind::EdgeHybrid => self.self_max_proc[target],
            DelayBoundKind::PreemptiveMsmr => self.self_eq3[target],
            DelayBoundKind::NonPreemptiveMsmr | DelayBoundKind::NonPreemptiveOpa => {
                self.self_eq45[target]
            }
        }
    }
}
