//! Struct-of-arrays pair tables backing the incremental delay evaluator.

use std::sync::OnceLock;

use msmr_model::{JobId, JobSet, StageId};

use crate::{DelayBoundKind, JobMask};

/// Flat struct-of-arrays projection of the pairwise interference table.
///
/// [`Analysis`](crate::Analysis) stores one `PairInterference` value per
/// ordered pair; that layout is convenient for the reference bounds but
/// costs a pointer chase and a branch per pair in the hot evaluation
/// loops. `PairTables` re-materialises the same data as dense arrays of
/// raw ticks:
///
/// * `ep[(target·cap + k)·N + j]` — the shared-stage processing time
///   `ep_{k,j}` of interferer `k` against `target`, contiguous in the
///   stage index so one incremental update touches one cache line,
/// * `job_additive_*[target·cap + k]` — the per-pair job-additive scalar
///   of each bound family (Eqs. 1–6), folded down to a single addition per
///   membership change,
/// * `interferes[target]` — a [`JobMask`] with bit `k` set iff the pair
///   `(target, k)` has overlapping interference windows, turning the
///   `effective_higher`/`effective_lower` filters into single AND/test
///   instructions,
/// * per-target constants (self terms, deadlines and the Eq. 5 blocking
///   data, which does not depend on `H_i`/`L_i` at all).
///
/// All values are stored as raw `u64` ticks; every aggregate computed from
/// them is an exact integer sum, so the incremental evaluator reproduces
/// the reference bounds bit for bit.
///
/// # Online extension
///
/// The pair-indexed arrays are strided by an allocation capacity `cap ≥ n`
/// rather than by the live job count, so
/// [`PairTables::extend_with_job`] appends one arriving job by writing its
/// new row and column only — `O(n·N)` pair computations instead of the
/// `O(n²·N)` full rebuild — which is what keeps per-arrival admission
/// latency in a long-running `msmr-serve` session independent of how the
/// tables were built. When the capacity is exhausted the arrays re-stride
/// geometrically, so the copy cost stays amortized `O(n·N)` per arrival;
/// [`PairTables::reserve`] pre-sizes a session once and removes even that.
/// [`PairTables::remove_last_job`] undoes the most recent extension (the
/// rollback path of a rejected admission).
#[derive(Debug)]
pub struct PairTables {
    // NOTE: `Clone` is implemented manually because of the lazy
    // `opa_block` cell.
    /// Number of live jobs `n`.
    pub(crate) n: usize,
    /// Allocated stride of the pair-indexed arrays (`cap ≥ n`); entries
    /// with either index in `n..cap` are dead storage.
    pub(crate) cap: usize,
    /// Number of pipeline stages `N`.
    pub(crate) stages: usize,
    /// Deadline of each job, indexed by id.
    pub(crate) deadline: Vec<u64>,
    /// Raw processing times `P_{k,j}`, indexed `k·N + j`.
    pub(crate) proc: Vec<u64>,
    /// Shared-stage times `ep_{k,j}` per ordered pair, indexed
    /// `(target·cap + k)·N + j`.
    pub(crate) ep: Vec<u64>,
    /// Eq. 1 job-additive scalar per pair: `t_{k,1}` plus `t_{k,2}` when
    /// the interferer arrives strictly after the target.
    pub(crate) ja_eq1: Vec<u64>,
    /// Eq. 2 job-additive scalar per pair: `t_{k,1}`.
    pub(crate) ja_eq2: Vec<u64>,
    /// Eq. 3 job-additive scalar per pair: `2·m_{i,k}·et_{k,1}`.
    pub(crate) ja_eq3: Vec<u64>,
    /// Eq. 4/5 job-additive scalar per pair: `m_{i,k}·et_{k,1}`.
    pub(crate) ja_eq45: Vec<u64>,
    /// Eq. 6/10 job-additive scalar per pair:
    /// `Σ_{x=1}^{w_{i,k}} et_{k,x}`.
    pub(crate) ja_eq6: Vec<u64>,
    /// `t_{i,1}` per target (self term of Eqs. 1, 2, 6 and 10).
    pub(crate) self_max_proc: Vec<u64>,
    /// `2·m_{i,i}·et_{i,1}` per target (self term of Eq. 3).
    pub(crate) self_eq3: Vec<u64>,
    /// `m_{i,i}·et_{i,1}` per target (self term of Eqs. 4 and 5).
    pub(crate) self_eq45: Vec<u64>,
    /// Eq. 5 blocking data per target (`Σ_j max_{k ∈ J∖J_i} ep_{k,j}`
    /// over interfering jobs, plus the per-stage maxima needed to update
    /// that sum when a job arrives). Built lazily on the first Eq. 5
    /// evaluator — no other bound reads it.
    pub(crate) opa_block: OnceLock<OpaBlock>,
    /// Per-target interference mask: bit `k` ⇔ `k ≠ target` and the
    /// windows of the pair overlap.
    pub(crate) interferes: Vec<JobMask>,
    /// Per-target competitor mask: bit `k` ⇔ `k ≠ target` and the pair
    /// shares at least one resource (`M_i` of the paper).
    pub(crate) competes: Vec<JobMask>,
}

/// The lazily-built Eq. 5 blocking constants together with the per-stage
/// maxima they are the sums of. Keeping the maxima makes
/// [`PairTables::extend_with_job`] able to update the cache in `O(n·N)`
/// (a new arrival can only *raise* a maximum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct OpaBlock {
    /// Per-target, per-stage maxima `max_{k interfering} ep_{k,j}`,
    /// indexed `target·N + j`.
    pub(crate) maxima: Vec<u64>,
    /// Per-target sum of `maxima` (the Eq. 5 blocking constant).
    pub(crate) sum: Vec<u64>,
}

/// Per-job quantities hoisted out of the pair loops
/// (`nth_max_processing` sorts internally).
struct JobScalars {
    max_proc: Vec<u64>,
    second_proc: Vec<u64>,
    arrival: Vec<u64>,
    abs_deadline: Vec<u64>,
}

impl JobScalars {
    fn hoist(jobs: &JobSet) -> Self {
        JobScalars {
            max_proc: jobs.jobs().map(|j| j.max_processing().as_ticks()).collect(),
            second_proc: jobs
                .jobs()
                .map(|j| j.nth_max_processing(2).as_ticks())
                .collect(),
            arrival: jobs.jobs().map(|j| j.arrival().as_ticks()).collect(),
            abs_deadline: jobs
                .jobs()
                .map(|j| j.absolute_deadline().as_ticks())
                .collect(),
        }
    }
}

/// The scalar projection of one ordered pair *(target, k)*; the pair's
/// `ep` row is written into the caller's scratch buffer.
struct PairValues {
    eq1: u64,
    eq2: u64,
    eq3: u64,
    eq45: u64,
    eq6: u64,
    /// `k ≠ target` and the interference windows overlap.
    interferes: bool,
    /// `k ≠ target` and the pair shares at least one resource.
    competes: bool,
}

/// Computes the `ep` row and job-additive scalars of the ordered pair
/// *(target, k)* in one stage scan — the single source of truth shared by
/// the full build and the incremental extension, which is what makes
/// extension ≡ rebuild bit for bit.
fn compute_pair(
    jobs: &JobSet,
    scalars: &JobScalars,
    target: JobId,
    k: JobId,
    ep_row: &mut [u64],
    sorted: &mut Vec<u64>,
) -> PairValues {
    let stages = jobs.stage_count();
    let t = target.index();
    let ki = k.index();
    let target_resources = jobs.job(target).resources();
    let job_k = jobs.job(k);
    let k_resources = job_k.resources();

    // Shared stages, `ep_{k,j}` and the segment counts `m`/`u`/`v` of the
    // pair, in one stage scan.
    let (mut et1, mut et2, mut total) = (0u64, 0u64, 0u64);
    let (mut m, mut u, mut v) = (0u64, 0usize, 0usize);
    let mut run = 0usize;
    for j in 0..stages {
        let is_shared = k == target || target_resources[j] == k_resources[j];
        let ep = if is_shared {
            job_k.processing(StageId::new(j)).as_ticks()
        } else {
            0
        };
        ep_row[j] = ep;
        total += ep;
        if ep > et1 {
            et2 = et1;
            et1 = ep;
        } else if ep > et2 {
            et2 = ep;
        }
        if is_shared {
            run += 1;
        } else if run > 0 {
            m += 1;
            if run == 1 {
                u += 1;
            } else {
                v += 1;
            }
            run = 0;
        }
    }
    if run > 0 {
        m += 1;
        if run == 1 {
            u += 1;
        } else {
            v += 1;
        }
    }

    let mut eq1 = scalars.max_proc[ki];
    if scalars.arrival[ki] > scalars.arrival[t] {
        eq1 += scalars.second_proc[ki];
    }

    // `w = u + 2v` never exceeds the number of shared stages, so summing
    // the `w` largest ep values over all stages (zeros for unshared ones)
    // matches `Σ_{x≤w} et_{k,x}`. The common cases fall out of the scan
    // above; only `3 ≤ w < N` (pipelines of four or more stages) needs an
    // actual selection.
    let w = u + 2 * v;
    let eq6 = match w {
        0 => 0,
        1 => et1,
        2 => et1 + et2,
        _ if w >= stages => total,
        _ => {
            sorted.clear();
            sorted.extend_from_slice(ep_row);
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.iter().take(w).sum()
        }
    };

    PairValues {
        eq1,
        eq2: scalars.max_proc[ki],
        eq3: 2 * m * et1,
        eq45: m * et1,
        eq6,
        interferes: k != target
            && scalars.arrival[t] <= scalars.abs_deadline[ki]
            && scalars.arrival[ki] <= scalars.abs_deadline[t],
        competes: m > 0 && k != target,
    }
}

impl Clone for PairTables {
    fn clone(&self) -> Self {
        let opa_block = OnceLock::new();
        if let Some(values) = self.opa_block.get() {
            let _ = opa_block.set(values.clone());
        }
        PairTables {
            n: self.n,
            cap: self.cap,
            stages: self.stages,
            deadline: self.deadline.clone(),
            proc: self.proc.clone(),
            ep: self.ep.clone(),
            ja_eq1: self.ja_eq1.clone(),
            ja_eq2: self.ja_eq2.clone(),
            ja_eq3: self.ja_eq3.clone(),
            ja_eq45: self.ja_eq45.clone(),
            ja_eq6: self.ja_eq6.clone(),
            self_max_proc: self.self_max_proc.clone(),
            self_eq3: self.self_eq3.clone(),
            self_eq45: self.self_eq45.clone(),
            opa_block,
            interferes: self.interferes.clone(),
            competes: self.competes.clone(),
        }
    }
}

impl PairTables {
    /// Builds the flat tables directly from the job set in one
    /// `O(n²·N log N)` pass, without materialising any per-pair
    /// intermediate structures (two reusable scratch buffers serve every
    /// pair). The values are defined to be identical to what the lazy
    /// [`PairInterference`](crate::PairInterference) objects would yield —
    /// the property suite cross-checks this bit for bit.
    pub(crate) fn build(jobs: &JobSet) -> Self {
        let n = jobs.len();
        let stages = jobs.stage_count();
        let mut tables = PairTables {
            n,
            cap: n,
            stages,
            deadline: Vec::with_capacity(n),
            proc: Vec::with_capacity(n * stages),
            ep: Vec::with_capacity(n * n * stages),
            ja_eq1: Vec::with_capacity(n * n),
            ja_eq2: Vec::with_capacity(n * n),
            ja_eq3: Vec::with_capacity(n * n),
            ja_eq45: Vec::with_capacity(n * n),
            ja_eq6: Vec::with_capacity(n * n),
            self_max_proc: Vec::with_capacity(n),
            self_eq3: Vec::with_capacity(n),
            self_eq45: Vec::with_capacity(n),
            opa_block: OnceLock::new(),
            interferes: Vec::with_capacity(n),
            competes: Vec::with_capacity(n),
        };

        for job in jobs.jobs() {
            tables.deadline.push(job.deadline().as_ticks());
            for j in 0..stages {
                tables.proc.push(job.processing(StageId::new(j)).as_ticks());
            }
        }

        let scalars = JobScalars::hoist(jobs);

        // Scratch buffers reused across all n² pairs (stack-backed for
        // realistic stage counts).
        let mut ep_row = vec![0u64; stages];
        let mut sorted: Vec<u64> = Vec::with_capacity(stages);

        for target in jobs.job_ids() {
            let t = target.index();
            let mut mask = JobMask::with_capacity(n);
            let mut competes = JobMask::with_capacity(n);
            for k in jobs.job_ids() {
                let values = compute_pair(jobs, &scalars, target, k, &mut ep_row, &mut sorted);
                tables.ep.extend_from_slice(&ep_row);
                tables.ja_eq1.push(values.eq1);
                tables.ja_eq2.push(values.eq2);
                tables.ja_eq3.push(values.eq3);
                tables.ja_eq45.push(values.eq45);
                tables.ja_eq6.push(values.eq6);
                if values.interferes {
                    mask.insert(k);
                }
                if values.competes {
                    competes.insert(k);
                }
            }

            let self_et1 = scalars.max_proc[t];
            tables.self_max_proc.push(self_et1);
            // The self pair shares every stage: one segment (`m = 1`).
            tables.self_eq3.push(2 * self_et1);
            tables.self_eq45.push(self_et1);

            tables.interferes.push(mask);
            tables.competes.push(competes);
        }
        tables
    }

    /// Pre-sizes the pair-indexed arrays for up to `jobs` jobs, so that
    /// many subsequent [`PairTables::extend_with_job`] calls re-stride
    /// nothing. A no-op when the tables already have that capacity.
    pub fn reserve(&mut self, jobs: usize) {
        if jobs > self.cap {
            self.grow(jobs);
        }
    }

    /// Re-strides the pair-indexed arrays to a new capacity. Pure data
    /// movement of the `n` live rows — no pair is recomputed.
    fn grow(&mut self, new_cap: usize) {
        debug_assert!(new_cap > self.cap);
        let (n, cap, stages) = (self.n, self.cap, self.stages);
        let restride = |old: &Vec<u64>, width: usize| -> Vec<u64> {
            let mut grown = vec![0u64; new_cap * new_cap * width];
            for t in 0..n {
                // Within one target the k index is contiguous, so each
                // target's live row moves as one block.
                let src = t * cap * width;
                let dst = t * new_cap * width;
                grown[dst..dst + n * width].copy_from_slice(&old[src..src + n * width]);
            }
            grown
        };
        self.ep = restride(&self.ep, stages);
        self.ja_eq1 = restride(&self.ja_eq1, 1);
        self.ja_eq2 = restride(&self.ja_eq2, 1);
        self.ja_eq3 = restride(&self.ja_eq3, 1);
        self.ja_eq45 = restride(&self.ja_eq45, 1);
        self.ja_eq6 = restride(&self.ja_eq6, 1);
        self.cap = new_cap;
    }

    /// Extends the tables with the job that `jobs` appends to the set they
    /// were built for: `jobs` must contain the original jobs unchanged
    /// (same ids, same parameters, same pipeline) plus exactly one new job
    /// at the highest id.
    ///
    /// Only the new job's row and column are computed — `O(n·N)` work
    /// instead of the `O(n²·N)` full rebuild — and the result is
    /// bit-identical to `PairTables::build(jobs)` (property-tested). An
    /// already-built Eq. 5 blocking cache is updated incrementally rather
    /// than discarded.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` does not have exactly one job more than the
    /// tables, or a different stage count.
    pub fn extend_with_job(&mut self, jobs: &JobSet) {
        let new = self.n;
        assert_eq!(
            jobs.len(),
            new + 1,
            "extend_with_job: job set must append exactly one job"
        );
        assert_eq!(
            jobs.stage_count(),
            self.stages,
            "extend_with_job: pipeline stage count changed"
        );
        if new + 1 > self.cap {
            // Geometric growth keeps the re-stride cost amortized O(n·N)
            // per arrival.
            self.grow((new + 1).max(self.cap * 2).max(8));
        }
        let cap = self.cap;
        let stages = self.stages;
        let new_id = JobId::new(new);
        let new_job = jobs.job(new_id);

        self.deadline.push(new_job.deadline().as_ticks());
        for j in 0..stages {
            self.proc
                .push(new_job.processing(StageId::new(j)).as_ticks());
        }

        let scalars = JobScalars::hoist(jobs);
        let mut ep_row = vec![0u64; stages];
        let mut sorted: Vec<u64> = Vec::with_capacity(stages);

        // New column: every existing target against the arriving job.
        for t in 0..new {
            let target = JobId::new(t);
            let values = compute_pair(jobs, &scalars, target, new_id, &mut ep_row, &mut sorted);
            let idx = t * cap + new;
            self.ep[idx * stages..idx * stages + stages].copy_from_slice(&ep_row);
            self.ja_eq1[idx] = values.eq1;
            self.ja_eq2[idx] = values.eq2;
            self.ja_eq3[idx] = values.eq3;
            self.ja_eq45[idx] = values.eq45;
            self.ja_eq6[idx] = values.eq6;
            if values.interferes {
                self.interferes[t].insert(new_id);
            }
            if values.competes {
                self.competes[t].insert(new_id);
            }
        }

        // New row: the arriving job as target against everyone (itself
        // included).
        let mut mask = JobMask::with_capacity(cap);
        let mut competes = JobMask::with_capacity(cap);
        for k in jobs.job_ids() {
            let values = compute_pair(jobs, &scalars, new_id, k, &mut ep_row, &mut sorted);
            let idx = new * cap + k.index();
            self.ep[idx * stages..idx * stages + stages].copy_from_slice(&ep_row);
            self.ja_eq1[idx] = values.eq1;
            self.ja_eq2[idx] = values.eq2;
            self.ja_eq3[idx] = values.eq3;
            self.ja_eq45[idx] = values.eq45;
            self.ja_eq6[idx] = values.eq6;
            if values.interferes {
                mask.insert(k);
            }
            if values.competes {
                competes.insert(k);
            }
        }

        let self_et1 = scalars.max_proc[new];
        self.self_max_proc.push(self_et1);
        self.self_eq3.push(2 * self_et1);
        self.self_eq45.push(self_et1);
        self.interferes.push(mask);
        self.competes.push(competes);
        self.n = new + 1;

        // An arrival can only raise the Eq. 5 per-stage blocking maxima of
        // the existing targets, so an already-built cache updates in
        // O(n·N) instead of being rebuilt.
        if let Some(block) = self.opa_block.get_mut() {
            for t in 0..new {
                if !self.interferes[t].contains(new_id) {
                    continue;
                }
                for j in 0..stages {
                    let v = self.ep[(t * cap + new) * stages + j];
                    let slot = t * stages + j;
                    if v > block.maxima[slot] {
                        block.sum[t] += v - block.maxima[slot];
                        block.maxima[slot] = v;
                    }
                }
            }
            let mut sum = 0u64;
            for j in 0..stages {
                let mut max = 0u64;
                for k in self.interferes[new].iter() {
                    max = max.max(self.ep[(new * cap + k.index()) * stages + j]);
                }
                block.maxima.push(max);
                sum += max;
            }
            block.sum.push(sum);
        }
    }

    /// Removes *any* job by swap-removal, mirroring
    /// [`JobSet::swap_remove_job`](msmr_model::JobSet::swap_remove_job):
    /// the highest-id job's row, column, masks and per-target scalars move
    /// into the victim's slot, every other job keeps its id, and the freed
    /// last slot stays allocated as dead storage for the next arrival.
    /// `O(n·N)` data movement with **zero pair recomputation** — the
    /// general-withdraw counterpart of [`PairTables::extend_with_job`],
    /// replacing the `O(n²·N)` full rebuild a mid-set departure used to
    /// cost. Pair values depend only on the two jobs' parameters (never on
    /// their ids), so the result is bit-identical to
    /// `PairTables::build(reduced)` on the swap-removed job set
    /// (property-tested).
    ///
    /// The lazily-built Eq. 5 blocking cache is discarded (a removal can
    /// lower a per-stage maximum, which cannot be undone incrementally);
    /// it rebuilds on the next Eq. 5 evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn remove_job(&mut self, removed: JobId) {
        let r = removed.index();
        assert!(r < self.n, "remove_job: job id out of range");
        let last = self.n - 1;
        if r != last {
            let (cap, stages) = (self.cap, self.stages);
            let last_id = JobId::new(last);
            // Per-job scalars of the moved job.
            self.deadline[r] = self.deadline[last];
            let (head, tail) = self.proc.split_at_mut(last * stages);
            head[r * stages..(r + 1) * stages].copy_from_slice(&tail[..stages]);
            self.self_max_proc[r] = self.self_max_proc[last];
            self.self_eq3[r] = self.self_eq3[last];
            self.self_eq45[r] = self.self_eq45[last];

            // Column r of every surviving target takes column `last` (the
            // moved job as interferer), and row r takes row `last` (the
            // moved job as target) — with the diagonal mapped onto the
            // moved job's own self pair.
            let move_pairs = |table: &mut Vec<u64>, width: usize| {
                for t in 0..last {
                    if t == r {
                        continue;
                    }
                    let src = (t * cap + last) * width;
                    let dst = (t * cap + r) * width;
                    table.copy_within(src..src + width, dst);
                }
                for k in 0..last {
                    let from = if k == r { last } else { k };
                    let src = (last * cap + from) * width;
                    let dst = (r * cap + k) * width;
                    table.copy_within(src..src + width, dst);
                }
            };
            move_pairs(&mut self.ep, stages);
            move_pairs(&mut self.ja_eq1, 1);
            move_pairs(&mut self.ja_eq2, 1);
            move_pairs(&mut self.ja_eq3, 1);
            move_pairs(&mut self.ja_eq45, 1);
            move_pairs(&mut self.ja_eq6, 1);

            // Masks: the moved job's own masks land in slot r (minus the
            // victim's bit); every other target renames bit `last` → `r`.
            let rename = |mask: &mut JobMask| {
                mask.remove(removed);
                if mask.remove(last_id) {
                    mask.insert(removed);
                }
            };
            self.interferes.swap(r, last);
            self.competes.swap(r, last);
            for t in 0..last {
                rename(&mut self.interferes[t]);
                rename(&mut self.competes[t]);
            }
        }
        self.n = last;
        self.deadline.pop();
        self.proc.truncate(last * self.stages);
        self.self_max_proc.pop();
        self.self_eq3.pop();
        self.self_eq45.pop();
        self.interferes.pop();
        self.competes.pop();
        if r == last {
            let last_id = JobId::new(last);
            for t in 0..last {
                self.interferes[t].remove(last_id);
                self.competes[t].remove(last_id);
            }
        }
        self.opa_block = OnceLock::new();
    }

    /// Removes the job with the highest id — the rollback path of a
    /// rejected admission, undoing the matching
    /// [`PairTables::extend_with_job`]. `O(n)`; the dead row and column
    /// stay allocated for the next arrival.
    ///
    /// The lazily-built Eq. 5 blocking cache is discarded (a removal can
    /// lower a per-stage maximum, which cannot be undone incrementally);
    /// it rebuilds on the next Eq. 5 evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the tables are empty.
    pub fn remove_last_job(&mut self) {
        assert!(self.n > 0, "remove_last_job on empty tables");
        self.remove_job(JobId::new(self.n - 1));
    }

    /// The Eq. 5 blocking constants, `Σ_j max_{k ∈ J∖J_i, interfering}
    /// ep_{k,j}` per target, computed on first use.
    pub(crate) fn opa_block(&self) -> &[u64] {
        &self
            .opa_block
            .get_or_init(|| {
                let mut maxima = vec![0u64; self.n * self.stages];
                let mut sum = Vec::with_capacity(self.n);
                for t in 0..self.n {
                    let slots = &mut maxima[t * self.stages..(t + 1) * self.stages];
                    for k in self.interferes[t].iter() {
                        let base = (t * self.cap + k.index()) * self.stages;
                        let row = &self.ep[base..base + self.stages];
                        for (slot, &v) in slots.iter_mut().zip(row) {
                            if v > *slot {
                                *slot = v;
                            }
                        }
                    }
                    sum.push(slots.iter().sum());
                }
                OpaBlock { maxima, sum }
            })
            .sum
    }

    /// Number of jobs the tables currently describe.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.n
    }

    /// Number of pipeline stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages
    }

    /// Allocated job capacity of the pair-indexed arrays (grows on demand;
    /// see [`PairTables::reserve`]).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The interference mask of a target: bit `k` is set iff `k ≠ target`
    /// and the interference windows of the pair overlap.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn interference_mask(&self, target: JobId) -> &JobMask {
        &self.interferes[target.index()]
    }

    /// The competitor mask of a target: bit `k` is set iff `k ≠ target`
    /// and the pair shares at least one resource somewhere in the
    /// pipeline (the set `M_i`, identical to
    /// [`JobSet::competitors`](msmr_model::JobSet::competitors) but with
    /// no allocation).
    #[must_use]
    pub fn competitor_mask(&self, target: JobId) -> &JobMask {
        &self.competes[target.index()]
    }

    /// `ep_{k,j}` of `interferer` against `target`, in raw ticks.
    #[inline]
    pub(crate) fn ep_at(&self, target: usize, k: usize, stage: usize) -> u64 {
        self.ep[(target * self.cap + k) * self.stages + stage]
    }

    /// `P_{k,j}` in raw ticks.
    #[inline]
    pub(crate) fn proc_at(&self, k: usize, stage: usize) -> u64 {
        self.proc[k * self.stages + stage]
    }

    /// The job-additive scalar table of one bound kind (strided by
    /// [`PairTables::capacity`], not by the job count).
    pub(crate) fn job_additive(&self, kind: DelayBoundKind) -> &[u64] {
        match kind {
            DelayBoundKind::PreemptiveSingleResource => &self.ja_eq1,
            DelayBoundKind::NonPreemptiveSingleResource => &self.ja_eq2,
            DelayBoundKind::PreemptiveMsmr => &self.ja_eq3,
            DelayBoundKind::NonPreemptiveMsmr | DelayBoundKind::NonPreemptiveOpa => &self.ja_eq45,
            DelayBoundKind::RefinedPreemptive | DelayBoundKind::EdgeHybrid => &self.ja_eq6,
        }
    }

    /// The per-target self term of one bound kind (the target's own
    /// contribution to the job-additive component).
    pub(crate) fn self_term(&self, kind: DelayBoundKind, target: usize) -> u64 {
        match kind {
            DelayBoundKind::PreemptiveSingleResource
            | DelayBoundKind::NonPreemptiveSingleResource
            | DelayBoundKind::RefinedPreemptive
            | DelayBoundKind::EdgeHybrid => self.self_max_proc[target],
            DelayBoundKind::PreemptiveMsmr => self.self_eq3[target],
            DelayBoundKind::NonPreemptiveMsmr | DelayBoundKind::NonPreemptiveOpa => {
                self.self_eq45[target]
            }
        }
    }
}
