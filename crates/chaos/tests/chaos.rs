//! The chaos scenarios as integration tests, pinned to fixed seeds so
//! every run injects the same fault schedule. `kill-restart` needs the
//! real `msmr-served` binary, which `cargo test` does not build for
//! other crates — it skips (loudly) when the binary is absent and runs
//! in full from `scripts/chaos_smoke.sh`, which builds it first.

use msmr_chaos::{harness, scenarios};

#[test]
fn torn_snapshot_boot_fails_soft() {
    let log = scenarios::torn_snapshot(11).expect("torn-snapshot scenario");
    assert!(!log.is_empty());
}

#[test]
fn overload_storm_exhausts_typed_and_recovers() {
    let log = scenarios::overload_storm(12).expect("overload-storm scenario");
    assert!(!log.is_empty());
}

#[test]
fn frame_chaos_converges_to_exactly_once() {
    let log = scenarios::frame_chaos(13).expect("frame-chaos scenario");
    assert!(!log.is_empty());
}

#[test]
fn clock_skew_never_reaps_early() {
    let log = scenarios::clock_skew(14).expect("clock-skew scenario");
    assert!(!log.is_empty());
}

#[test]
fn kill_restart_resumes_when_daemon_binary_present() {
    match harness::served_binary() {
        Err(why) => eprintln!("skipping kill-restart: {why}"),
        Ok(_) => {
            let log = scenarios::kill_restart(15).expect("kill-restart scenario");
            assert!(!log.is_empty());
        }
    }
}
