//! The fault scenarios. Each is a pure function of its seed returning
//! the log lines of a successful run, or a display string naming the
//! first violated invariant.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use msmr_cluster::{ClusterConfig, ClusterEngine};
use msmr_model::JobSet;
use msmr_serve::protocol::{
    read_response, write_request, AdmitOp, AttachOp, Frame, JobSpec, Op, Request, Response,
    StatusOp, SubmitOp,
};
use msmr_serve::{
    normalized_verdict_json, Client, Endpoint, Listen, ResumingClient, RetryError, RetryPolicy,
    SessionConfig,
};
use msmr_stats::{fetch_flight_dump, fetch_stats_json, EventKind, FlightDump, StatsSnapshot};
use msmr_workload::arrival_order;

use crate::harness::{wait_until, DaemonHarness};
use crate::proxy::{ChaosProxy, FaultPlan};
use crate::{chaos_trace, scratch_dir, verify_history, HistoryEntry, HistoryOp};

/// Asserts that every decider verdict in `frames` is warm: a session
/// that restored properly keeps its online decider state, so the
/// decider never drops to the cold adapter (`cold_fallback`).
fn assert_decider_warm(frames: &[Response], decider: &str, context: &str) -> Result<(), String> {
    for response in frames {
        if let Frame::Verdict(v) = &response.frame {
            if v.verdict.solver == decider && v.verdict.stats.cold_fallback.is_some() {
                return Err(format!(
                    "{context}: decider `{decider}` verdict carries cold_fallback — \
                     the session did not come back warm"
                ));
            }
        }
    }
    Ok(())
}

/// Reduces one observed op's frames to a [`HistoryEntry`].
fn entry_from_frames(
    seq: u64,
    spec: &JobSpec,
    frames: &[Response],
) -> Result<HistoryEntry, String> {
    let mut verdicts = Vec::new();
    let mut admitted = None;
    for response in frames {
        match &response.frame {
            Frame::Verdict(v) => verdicts.push(normalized_verdict_json(&v.verdict)),
            Frame::Admit(f) => admitted = Some(f.admitted),
            _ => {}
        }
    }
    let admitted = admitted.ok_or_else(|| format!("seq {seq}: observed op has no admit ack"))?;
    Ok(HistoryEntry {
        seq,
        op: HistoryOp::Admit {
            spec: spec.clone(),
            admitted,
        },
        verdicts,
    })
}

/// Post-failure accounting: reconciles the flight recorder's event
/// tallies and the per-op [`LatencyHisto`](msmr_stats::LatencyHisto)
/// totals against the decided-op counts the scenario derived from its
/// surviving history. The recorder, the counters and the histograms
/// are fed by the same seams, so after any fault they must agree
/// exactly — a lost or double-counted op shows up as a delta here.
fn verify_accounting(
    context: &str,
    snapshot: &StatsSnapshot,
    dump: &FlightDump,
    decided: u64,
    withdraws: u64,
    deduped: u64,
) -> Result<(), String> {
    if dump.dropped != 0 {
        return Err(format!(
            "{context}: the flight ring dropped {} event(s) — scenarios are sized under capacity",
            dump.dropped
        ));
    }
    let c = &snapshot.counters;
    // Counter ↔ flight-event identities: both record at the same seams.
    for (what, counter, events) in [
        (
            "decisions",
            c.admits + c.rejects,
            dump.count(EventKind::Admit) + dump.count(EventKind::Reject),
        ),
        ("withdraws", c.withdraws, dump.count(EventKind::Withdraw)),
        ("submits", c.submits, dump.count(EventKind::Submit)),
        ("overloads", c.overloads, dump.count(EventKind::Overload)),
        ("evictions", c.evictions, dump.count(EventKind::Eviction)),
        (
            "snapshot writes",
            c.snapshot_writes,
            dump.count(EventKind::SnapshotWrite),
        ),
        (
            "quarantines",
            c.snapshot_quarantined,
            dump.count(EventKind::SnapshotQuarantine),
        ),
        ("dedups", c.deduped_ops, dump.count(EventKind::Dedup)),
    ] {
        if counter != events {
            return Err(format!(
                "{context}: the {what} counter says {counter} but the flight \
                 recorder holds {events} event(s)"
            ));
        }
    }
    // History ties: what survived must be exactly what was counted.
    if c.admits + c.rejects != decided {
        return Err(format!(
            "{context}: {} decision(s) counted, the surviving history decided {decided}",
            c.admits + c.rejects
        ));
    }
    if c.withdraws != withdraws {
        return Err(format!(
            "{context}: {} withdraw(s) counted, the surviving history holds {withdraws}",
            c.withdraws
        ));
    }
    if c.deduped_ops != deduped {
        return Err(format!(
            "{context}: {} dedup(s) counted, the client observed {deduped} deduped ack(s)",
            c.deduped_ops
        ));
    }
    // The latency histograms hold exactly one sample per decided op.
    for (op, expected) in [("admit", decided), ("withdraw", withdraws)] {
        let (samples, total) = snapshot.ops.get(op).map_or((0, 0), |lat| {
            (lat.samples, lat.histo_buckets.iter().sum::<u64>())
        });
        if samples != expected || total != expected {
            return Err(format!(
                "{context}: op `{op}` histograms hold {total} sample(s) \
                 (ring total {samples}), the surviving history decided {expected}"
            ));
        }
    }
    Ok(())
}

/// SIGKILL the daemon mid-replay and resume against a restart.
///
/// Invariants: the [`ResumingClient`] reconnects and re-issues its
/// journal so every decision seq is applied exactly once; post-restore
/// decider verdicts stay warm; the surviving history replays offline
/// byte-identically; a later SIGTERM shuts down gracefully (exit 0,
/// pidfile removed, state snapshotted) and a third daemon boots with
/// the full decision count.
///
/// # Errors
///
/// Returns the first violated invariant as a display string.
pub fn kill_restart(seed: u64) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let dir = scratch_dir("kill-restart", seed);
    let snapshot_dir = dir.join("snapshots");
    std::fs::create_dir_all(&snapshot_dir).map_err(|e| e.to_string())?;
    let pidfile = dir.join("served.pid");
    let flight_path = dir.join("flight.json");
    let snapshot_arg = snapshot_dir.to_string_lossy().into_owned();
    let pidfile_arg = pidfile.to_string_lossy().into_owned();
    let flight_arg = flight_path.to_string_lossy().into_owned();
    let args = [
        "--cluster",
        "--snapshot-dir",
        snapshot_arg.as_str(),
        "--pidfile",
        pidfile_arg.as_str(),
        "--stats-addr",
        "127.0.0.1:0",
        "--flight-out",
        flight_arg.as_str(),
    ];

    let jobs = 18usize;
    let trace = chaos_trace(seed, jobs)?;
    let order = arrival_order(&trace);
    // Kill after the first checkpoint (op 5) and mid-journal, so the
    // restart restores a snapshot and the journal replay re-applies the
    // acked-but-unsnapshotted tail.
    let kill_before = 6 + (seed as usize % 6);

    let mut daemon = DaemonHarness::spawn_with_stats(&args)?;
    wait_until("the daemon's pidfile", Duration::from_secs(5), || {
        pidfile.is_file()
    })?;
    let written = std::fs::read_to_string(&pidfile).map_err(|e| e.to_string())?;
    if written.trim() != daemon.pid().to_string() {
        return Err(format!(
            "pidfile holds `{}`, daemon pid is {}",
            written.trim(),
            daemon.pid()
        ));
    }
    log.push(format!(
        "kill-restart: daemon pid {} on {} (pidfile verified)",
        daemon.pid(),
        daemon.addr
    ));

    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(60),
    };
    let mut client = ResumingClient::new(
        Endpoint::Tcp(daemon.addr.clone()),
        "chaos-kill",
        policy,
        seed,
    );
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;
    client.set_pipeline(pipeline);

    let mut specs = Vec::new();
    let mut journal_at_kill = 0u64;
    for (i, &id) in order.iter().enumerate() {
        if i == kill_before {
            let pid = daemon.pid();
            daemon.kill9()?;
            journal_at_kill = client.journal_len() as u64;
            log.push(format!(
                "kill-restart: SIGKILLed pid {pid} before op {} (journal holds {} op(s))",
                i + 1,
                journal_at_kill
            ));
            daemon = DaemonHarness::spawn_with_stats(&args)?;
            client.set_endpoint(Endpoint::Tcp(daemon.addr.clone()));
            log.push(format!(
                "kill-restart: restarted as pid {} on {}",
                daemon.pid(),
                daemon.addr
            ));
        }
        let spec = JobSpec::from_job(trace.job(id));
        client
            .admit(&spec, true)
            .map_err(|e| format!("admit {}: {e}", i + 1))?;
        specs.push(spec);
        if (i + 1) % 5 == 0 {
            client
                .checkpoint()
                .map_err(|e| format!("checkpoint after op {}: {e}", i + 1))?;
        }
    }

    let stats = client.stats();
    if stats.reconnects == 0 {
        return Err("the client never reconnected — the kill was not observed".into());
    }
    log.push(format!(
        "kill-restart: {} op(s), {} reconnect(s), {} retry(ies), {} deduped ack(s)",
        jobs, stats.reconnects, stats.retries, stats.deduped_acks
    ));

    // The surviving history: the last observed application per seq.
    let decider = SessionConfig::default().decider;
    let mut last: BTreeMap<u64, Vec<Response>> = BTreeMap::new();
    for observed in client.drain_observed() {
        last.insert(observed.seq, observed.frames);
    }
    if last.len() != jobs {
        return Err(format!(
            "observed {} distinct seq(s), expected {jobs}",
            last.len()
        ));
    }
    let mut entries = Vec::new();
    for (&seq, frames) in &last {
        // Every op past the restore point must have decided warm; ops
        // before it trivially did (same live session). The very first
        // decision after a submit may legitimately decide cold, so it
        // is exempt.
        if seq > 1 {
            assert_decider_warm(frames, &decider, &format!("seq {seq}"))?;
        }
        let spec = &specs[seq as usize - 1];
        entries.push(entry_from_frames(seq, spec, frames)?);
    }
    verify_history(&trace, &entries, SessionConfig::default())?;
    let admitted = entries
        .iter()
        .filter(|e| matches!(e.op, HistoryOp::Admit { admitted: true, .. }))
        .count();
    log.push(format!(
        "kill-restart: history of {jobs} seq(s) replays byte-identically ({admitted} admitted)"
    ));

    // Post-failure accounting on the restarted daemon: everything it
    // applied is the journal the client replayed plus the ops issued
    // after the kill, minus whatever the restored snapshot horizon
    // deduped — and its flight recorder, counters and histograms must
    // all reconcile with that surviving history.
    let replayed_and_new = journal_at_kill + (jobs - kill_before) as u64;
    let decided_after_kill = replayed_and_new - stats.deduped_acks;
    let stats_addr = daemon
        .stats_addr
        .clone()
        .ok_or("restarted daemon announced no stats address")?;
    let live = fetch_stats_json(&stats_addr).map_err(|e| format!("stats fetch: {e}"))?;
    let live: StatsSnapshot =
        serde_json::from_str(live.trim()).map_err(|e| format!("bad stats snapshot: {e}"))?;
    let dump = fetch_flight_dump(&stats_addr).map_err(|e| format!("flight fetch: {e}"))?;
    verify_accounting(
        "kill-restart",
        &live,
        &dump,
        decided_after_kill,
        0,
        stats.deduped_acks,
    )?;
    log.push(format!(
        "kill-restart: daemon #2 accounting reconciled ({journal_at_kill} replayed + {} new \
         op(s), {} deduped)",
        jobs - kill_before,
        stats.deduped_acks
    ));

    // Graceful shutdown: SIGTERM must snapshot, exit 0 and remove the
    // pidfile...
    daemon.sigterm_and_wait(Duration::from_secs(10))?;
    if pidfile.exists() {
        return Err("pidfile survived the SIGTERM shutdown".into());
    }
    log.push("kill-restart: SIGTERM shutdown clean (exit 0, pidfile removed)".into());

    // ...and leave the flight dump on disk — the file the SIGKILLed
    // daemon #1 never got to write, which is exactly why the dump
    // lives on the graceful path and the panic hook.
    let dumped = std::fs::read_to_string(&flight_path)
        .map_err(|e| format!("SIGTERM shutdown left no --flight-out dump: {e}"))?;
    let dumped: FlightDump = serde_json::from_str(dumped.trim())
        .map_err(|e| format!("--flight-out dump does not parse: {e}"))?;
    if dumped.count(EventKind::Admit) + dumped.count(EventKind::Reject) != decided_after_kill {
        return Err(format!(
            "--flight-out dump holds {} decision event(s), expected {decided_after_kill}",
            dumped.count(EventKind::Admit) + dumped.count(EventKind::Reject)
        ));
    }
    log.push(format!(
        "kill-restart: SIGTERM wrote the flight dump ({} event(s) recorded)",
        dumped.recorded
    ));

    // ...so a third daemon finds the full decision count on disk.
    let daemon = DaemonHarness::spawn(&args)?;
    let mut probe =
        Client::connect(&Endpoint::Tcp(daemon.addr.clone())).map_err(|e| e.to_string())?;
    let attach = probe
        .attach("chaos-kill", false)
        .map_err(|e| format!("re-attach after SIGTERM: {e}"))?;
    if attach.decisions != Some(jobs as u64) {
        return Err(format!(
            "rebooted daemon reports decisions {:?}, expected {jobs}: the seq \
             horizon did not survive the snapshot",
            attach.decisions
        ));
    }
    let status = probe
        .request(Op::Status(StatusOp {}))
        .map_err(|e| e.to_string())?;
    let jobs_on_daemon = status
        .iter()
        .find_map(|r| match &r.frame {
            Frame::Status(s) => Some(s.jobs),
            _ => None,
        })
        .ok_or("no status frame from the rebooted daemon")?;
    if jobs_on_daemon != admitted as u64 {
        return Err(format!(
            "rebooted daemon holds {jobs_on_daemon} job(s), history admitted {admitted}"
        ));
    }
    log.push(format!(
        "kill-restart: reboot #3 restored seq horizon {jobs} and {admitted} job(s)"
    ));
    drop(probe);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(log)
}

/// Torn and garbage snapshot files must quarantine on boot, not take
/// the daemon down, and the surviving sessions must restore warm.
///
/// # Errors
///
/// Returns the first violated invariant as a display string.
pub fn torn_snapshot(seed: u64) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let dir = scratch_dir("torn-snapshot", seed);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let config = || ClusterConfig {
        snapshot_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    };
    let trace = chaos_trace(seed, 8)?;
    let order = arrival_order(&trace);
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;

    let tenants = ["tenant-a", "tenant-b", "tenant-c"];
    let mut decisions = BTreeMap::new();
    {
        let engine = ClusterEngine::new(config()).map_err(|e| e.to_string())?;
        for name in tenants {
            let outcome = engine
                .store()
                .attach(name, true)
                .map_err(|e| e.to_string())?;
            outcome.session.submit(pipeline.clone(), false, |_| {});
            for &id in &order[..2] {
                outcome
                    .session
                    .admit(&JobSpec::from_job(trace.job(id)), false, None, |_| {})
                    .map_err(|e| e.to_string())?;
            }
            decisions.insert(name, outcome.session.decisions());
        }
        engine.snapshot_all().map_err(|e| e.to_string())?;
    }

    // Tear one snapshot mid-file and drop a garbage namesake next to it.
    let torn = dir.join("tenant-b.json");
    let bytes = std::fs::read(&torn).map_err(|e| e.to_string())?;
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).map_err(|e| e.to_string())?;
    std::fs::write(dir.join("tenant-x.json"), b"not json at all").map_err(|e| e.to_string())?;
    log.push(format!(
        "torn-snapshot: tore tenant-b.json at byte {} and planted garbage tenant-x.json",
        bytes.len() / 2
    ));

    let engine = ClusterEngine::new(config()).map_err(|e| format!("fail-soft boot failed: {e}"))?;
    let counters = engine.stats_snapshot().counters;
    if counters.snapshot_quarantined != 2 {
        return Err(format!(
            "boot quarantined {} snapshot(s), expected 2",
            counters.snapshot_quarantined
        ));
    }
    for name in ["tenant-a", "tenant-c"] {
        if engine.store().get(name).is_none() {
            return Err(format!("healthy session `{name}` did not survive the boot"));
        }
    }
    for name in ["tenant-b", "tenant-x"] {
        if engine.store().get(name).is_some() {
            return Err(format!("corrupt session `{name}` restored anyway"));
        }
    }
    if !dir.join("tenant-b.json.corrupt").is_file() || torn.exists() {
        return Err("torn snapshot was not renamed to .json.corrupt".into());
    }
    log.push("torn-snapshot: boot quarantined 2 file(s) and restored the 2 healthy tenants".into());

    // The survivors are warm and their seq horizon is intact.
    let decider = SessionConfig::default().decider;
    let session = engine.store().get("tenant-a").ok_or("tenant-a vanished")?;
    if session.decisions() != decisions["tenant-a"] {
        return Err(format!(
            "tenant-a restored with {} decision(s), expected {}",
            session.decisions(),
            decisions["tenant-a"]
        ));
    }
    let mut cold = false;
    let (_, seq, deduped) = session
        .admit(&JobSpec::from_job(trace.job(order[2])), true, None, |v| {
            cold |= v.solver == decider && v.stats.cold_fallback.is_some();
        })
        .map_err(|e| e.to_string())?;
    if cold {
        return Err("tenant-a's decider decided cold after the fail-soft boot".into());
    }
    if seq != decisions["tenant-a"] + 1 || deduped {
        return Err(format!(
            "tenant-a's next decision got seq {seq} (deduped: {deduped}), \
             expected {}",
            decisions["tenant-a"] + 1
        ));
    }
    log.push(format!(
        "torn-snapshot: tenant-a decided warm at seq {seq} after the boot"
    ));

    // Post-failure accounting on the rebooted engine: one fresh
    // decision, two quarantine events, nothing deduped — recorder,
    // counters and histograms all agree.
    verify_accounting(
        "torn-snapshot",
        &engine.stats_snapshot(),
        &engine.stats().flight_dump(),
        1,
        0,
        0,
    )?;
    log.push("torn-snapshot: flight recorder and histograms reconcile with the history".into());
    let _ = std::fs::remove_dir_all(&dir);
    Ok(log)
}

/// Saturate the 1-worker/1-slot pool and assert the typed overload
/// path: every attempt bounces with a counted `Overload`, the retry
/// policy exhausts with `WouldBlock`, and the session recovers to
/// exactly-once application once the pool drains.
///
/// # Errors
///
/// Returns the first violated invariant as a display string.
pub fn overload_storm(seed: u64) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let config = ClusterConfig {
        workers: 1,
        queue: 1,
        ..ClusterConfig::default()
    };
    let (server, engine) = ClusterEngine::start(
        Listen {
            tcp: Some("127.0.0.1:0".into()),
            uds: None,
        },
        config,
    )
    .map_err(|e| e.to_string())?;
    let addr = server.tcp_addr().ok_or("no tcp addr")?.to_string();

    let trace = chaos_trace(seed, 6)?;
    let order = arrival_order(&trace);
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
    };
    let max_attempts = policy.max_attempts;
    let mut client = ResumingClient::new(Endpoint::Tcp(addr), "chaos-storm", policy, seed);
    client.set_pipeline(pipeline);
    client
        .admit(&JobSpec::from_job(trace.job(order[0])), false)
        .map_err(|e| format!("setup admit: {e}"))?;

    // Park the single worker behind a gate, then fill the one queue
    // slot: the pool is now saturated.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    engine
        .pool()
        .try_submit(move || {
            let _ = started_tx.send(());
            let _ = gate_rx.recv();
        })
        .map_err(|_| "parking task rejected")?;
    started_rx
        .recv_timeout(Duration::from_secs(5))
        .map_err(|_| "the parking task never started")?;
    engine
        .pool()
        .try_submit(|| {})
        .map_err(|_| "queue-filling task rejected")?;

    let spec = JobSpec::from_job(trace.job(order[1]));
    let before = engine.stats_snapshot().counters.overloads;
    match client.admit(&spec, false) {
        Err(RetryError::Exhausted { attempts, last })
            if last.kind() == std::io::ErrorKind::WouldBlock =>
        {
            log.push(format!(
                "overload-storm: admit exhausted after {attempts} attempt(s): {last}"
            ));
        }
        Err(e) => return Err(format!("expected overload exhaustion, got: {e}")),
        Ok(_) => return Err("admit succeeded against a saturated pool".into()),
    }
    let bounced = engine.stats_snapshot().counters.overloads - before;
    if bounced != u64::from(max_attempts) {
        return Err(format!(
            "{bounced} overload(s) counted, expected one per attempt ({max_attempts})"
        ));
    }
    let retry_stats = client.stats();
    if retry_stats.retries < u64::from(max_attempts - 1) {
        return Err(format!(
            "only {} retry(ies) recorded across {max_attempts} attempts",
            retry_stats.retries
        ));
    }

    // Lift the gate: the storm drains and the same op goes through.
    gate_tx.send(()).map_err(|e| e.to_string())?;
    let frame = client
        .admit(&spec, false)
        .map_err(|e| format!("post-storm admit: {e}"))?;
    if frame.deduped == Some(true) {
        return Err("post-storm admit deduped — the bounced attempts leaked state".into());
    }
    let session = engine
        .store()
        .get("chaos-storm")
        .ok_or("session vanished")?;
    if session.decisions() != 2 {
        return Err(format!(
            "{} decision(s) on the session, expected 2: overload bounces must not decide",
            session.decisions()
        ));
    }
    log.push(format!(
        "overload-storm: pool drained, op applied exactly once (seq {:?}), {} overload(s) total",
        frame.seq,
        engine.stats_snapshot().counters.overloads
    ));

    // Post-failure accounting: two decided ops around the storm, every
    // bounce a flight Overload event, histograms holding exactly one
    // sample per decision and none for the bounced attempts.
    verify_accounting(
        "overload-storm",
        &engine.stats_snapshot(),
        &engine.stats().flight_dump(),
        2,
        0,
        0,
    )?;
    log.push("overload-storm: flight recorder and histograms reconcile with the history".into());
    server.stop();
    server.join();
    Ok(log)
}

/// Outcome of one proxied request round in [`frame_chaos`].
#[derive(Default)]
struct RoundOutcome {
    /// Freshly applied seqs with their admit verdict and verdict lines.
    applied: Vec<(u64, bool, Vec<String>)>,
    /// `deduped: true` acks observed.
    deduped: u64,
    /// `Error` frames on id 0 (malformed lines the server survived).
    id0_errors: u64,
}

/// One connection through the chaos proxy: attach (+ submit on the
/// first round), then the given seq-stamped admits; the write half is
/// shut down so held/reordered lines flush, and responses are read to
/// EOF.
fn chaos_round(
    proxy_addr: &str,
    session: &str,
    pipeline: Option<&JobSet>,
    ops: &[(u64, JobSpec)],
) -> Result<RoundOutcome, String> {
    let stream = TcpStream::connect(proxy_addr).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    let mut requests = vec![Request {
        id: 1,
        op: Op::Attach(AttachOp {
            session: session.to_string(),
            create: Some(true),
        }),
    }];
    if let Some(jobs) = pipeline {
        requests.push(Request {
            id: 2,
            op: Op::Submit(SubmitOp {
                jobs: jobs.clone(),
                parallel: None,
            }),
        });
    }
    let mut id_to_seq = BTreeMap::new();
    for (i, (seq, spec)) in ops.iter().enumerate() {
        let id = 100 + i as u64;
        id_to_seq.insert(id, *seq);
        requests.push(Request {
            id,
            op: Op::Admit(AdmitOp {
                job: spec.clone(),
                evaluate: Some(true),
                seq: Some(*seq),
            }),
        });
    }
    for request in &requests {
        write_request(&mut writer, request).map_err(|e| e.to_string())?;
    }
    writer
        .shutdown(Shutdown::Write)
        .map_err(|e| e.to_string())?;

    let mut outcome = RoundOutcome::default();
    let mut verdicts: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    while let Some(response) = read_response(&mut reader).map_err(|e| e.to_string())? {
        match &response.frame {
            Frame::Verdict(v) => verdicts
                .entry(response.id)
                .or_default()
                .push(normalized_verdict_json(&v.verdict)),
            Frame::Admit(frame) => {
                let Some(&seq) = id_to_seq.get(&response.id) else {
                    continue;
                };
                let lines = verdicts.remove(&response.id).unwrap_or_default();
                if frame.deduped == Some(true) {
                    outcome.deduped += 1;
                } else {
                    outcome.applied.push((seq, frame.admitted, lines));
                }
            }
            Frame::Error(_) if response.id == 0 => outcome.id0_errors += 1,
            // Seq-gap/retired errors on a real id: the op was not
            // applied this round; a later round re-issues it.
            Frame::Error(_) => {
                verdicts.remove(&response.id);
            }
            _ => {}
        }
    }
    Ok(outcome)
}

/// Byte-level frame chaos: delay, duplicate, reorder and corrupt the
/// client→server NDJSON stream through [`ChaosProxy`] and assert the
/// daemon converges to exactly-once application — decided counters
/// equal the unique ops, duplicates are acked as `deduped` and counted
/// separately, corrupt lines surface as id-0 errors, and the final
/// history is byte-identical offline.
///
/// # Errors
///
/// Returns the first violated invariant as a display string.
pub fn frame_chaos(seed: u64) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let (server, engine) = ClusterEngine::start(
        Listen {
            tcp: Some("127.0.0.1:0".into()),
            uds: None,
        },
        ClusterConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let addr = server.tcp_addr().ok_or("no tcp addr")?.to_string();
    let plan = FaultPlan {
        corrupt: 0.25,
        duplicate: 0.35,
        reorder: 0.2,
        delay: 0.15,
        max_delay_ms: 5,
        warmup: 2,
    };
    let proxy = ChaosProxy::start(&addr, seed, plan)?;

    let jobs = 12usize;
    let trace = chaos_trace(seed, jobs)?;
    let order = arrival_order(&trace);
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;
    let specs: Vec<JobSpec> = order
        .iter()
        .map(|&id| JobSpec::from_job(trace.job(id)))
        .collect();

    let mut applied: BTreeMap<u64, (bool, Vec<String>)> = BTreeMap::new();
    let mut deduped_acks = 0u64;
    let mut id0_errors = 0u64;
    let mut rounds = 0usize;
    while applied.len() < jobs {
        rounds += 1;
        if rounds > jobs + 2 {
            return Err(format!(
                "no convergence after {rounds} round(s): {}/{jobs} seq(s) applied",
                applied.len()
            ));
        }
        // Re-issue every not-yet-applied seq, ascending. The first of
        // them rides in the proxy's warmup window, so every round makes
        // progress even when later lines are reordered into seq gaps.
        let pending: Vec<(u64, JobSpec)> = (1..=jobs as u64)
            .filter(|seq| !applied.contains_key(seq))
            .map(|seq| (seq, specs[seq as usize - 1].clone()))
            .collect();
        let outcome = chaos_round(
            proxy.addr(),
            "chaos-frames",
            (rounds == 1).then_some(&pipeline),
            &pending,
        )?;
        for (seq, admitted, lines) in outcome.applied {
            applied.insert(seq, (admitted, lines));
        }
        deduped_acks += outcome.deduped;
        id0_errors += outcome.id0_errors;
    }
    let stats = proxy.stats();
    log.push(format!(
        "frame-chaos: {jobs} op(s) converged in {rounds} round(s) through \
         {} corrupt / {} duplicated / {} reordered / {} delayed line(s)",
        stats.corrupted.load(Ordering::SeqCst),
        stats.duplicated.load(Ordering::SeqCst),
        stats.reordered.load(Ordering::SeqCst),
        stats.delayed.load(Ordering::SeqCst),
    ));

    // Exactly-once application, with every fault accounted for.
    let counters = engine.stats_snapshot().counters;
    let session = engine
        .store()
        .get("chaos-frames")
        .ok_or("session vanished")?;
    if session.decisions() != jobs as u64 {
        return Err(format!(
            "{} decision(s) on the session, expected {jobs}",
            session.decisions()
        ));
    }
    if counters.admits + counters.rejects != jobs as u64 {
        return Err(format!(
            "{} admit(s) + {} reject(s) counted, expected {jobs} unique decisions",
            counters.admits, counters.rejects
        ));
    }
    if counters.deduped_ops != deduped_acks {
        return Err(format!(
            "daemon counted {} deduped op(s), client observed {deduped_acks}",
            counters.deduped_ops
        ));
    }
    let corrupted = stats.corrupted.load(Ordering::SeqCst);
    if id0_errors != corrupted {
        return Err(format!(
            "{id0_errors} id-0 error frame(s) for {corrupted} corrupt line(s): \
             every malformed line must degrade to exactly one error frame"
        ));
    }
    log.push(format!(
        "frame-chaos: exactly-once held ({} decided, {deduped_acks} deduped ack(s), \
         {id0_errors} malformed-line error(s))",
        jobs
    ));

    let entries: Vec<HistoryEntry> = applied
        .iter()
        .map(|(&seq, (admitted, lines))| HistoryEntry {
            seq,
            op: HistoryOp::Admit {
                spec: specs[seq as usize - 1].clone(),
                admitted: *admitted,
            },
            verdicts: lines.clone(),
        })
        .collect();
    verify_history(&trace, &entries, SessionConfig::default())?;
    log.push("frame-chaos: surviving history replays byte-identically".into());

    // Post-failure accounting: exactly one decision and one histogram
    // sample per unique seq despite the duplicated/reordered/corrupted
    // lines, and one flight Dedup event per deduped ack the client saw.
    verify_accounting(
        "frame-chaos",
        &engine.stats_snapshot(),
        &engine.stats().flight_dump(),
        jobs as u64,
        0,
        deduped_acks,
    )?;
    log.push("frame-chaos: flight recorder and histograms reconcile with the history".into());
    drop(proxy);
    server.stop();
    server.join();
    Ok(log)
}

/// SIGKILL one backend of a routed three-daemon tier mid-replay.
///
/// Invariants: the router's health monitor declares the backend dead
/// on its own clock; the orphaned session is restored on a survivor
/// from the shared snapshot directory; the [`ResumingClient`] rides
/// its journal replay through the router so every decision seq is
/// applied exactly once (no gaps, no conflicts, dedups accounted); the
/// restored decider stays warm; and the surviving history replays
/// offline byte-identically.
///
/// # Errors
///
/// Returns the first violated invariant as a display string.
pub fn router_failover(seed: u64) -> Result<Vec<String>, String> {
    use msmr_router::{Router, RouterConfig};
    let mut log = Vec::new();
    let dir = scratch_dir("router-failover", seed);
    let snapshot_dir = dir.join("snapshots");
    std::fs::create_dir_all(&snapshot_dir).map_err(|e| e.to_string())?;
    let snapshot_arg = snapshot_dir.to_string_lossy().into_owned();
    let args = ["--cluster", "--snapshot-dir", snapshot_arg.as_str()];

    let mut backends = Vec::new();
    for _ in 0..3 {
        backends.push(DaemonHarness::spawn(&args)?);
    }
    let router = Router::start(RouterConfig {
        backends: backends.iter().map(|d| d.addr.clone()).collect(),
        health_interval: Duration::from_millis(30),
        health_failures: 2,
        ..RouterConfig::default()
    })
    .map_err(|e| format!("router start: {e}"))?;
    log.push(format!(
        "router-failover: router on {} over 3 backends",
        router.addr()
    ));

    let jobs = 14usize;
    let trace = chaos_trace(seed, jobs)?;
    let order = arrival_order(&trace);
    let kill_before = 6 + (seed as usize % 5);
    let policy = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(80),
    };
    let mut client = ResumingClient::new(
        Endpoint::Tcp(router.addr().to_string()),
        "chaos-router",
        policy,
        seed,
    );
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;
    client.set_pipeline(pipeline);

    let mut specs = Vec::new();
    let mut killed = String::new();
    for (i, &id) in order.iter().enumerate() {
        if i == kill_before {
            // Checkpoint so the shared snapshot directory holds the
            // session, then SIGKILL its owner. The router is told
            // nothing — its probe loop must notice inside the client's
            // retry budget.
            client
                .checkpoint()
                .map_err(|e| format!("checkpoint before the kill: {e}"))?;
            let owner = router
                .state()
                .route("chaos-router")
                .ok_or("no owner for the session")?;
            let victim = backends
                .iter()
                .position(|d| d.addr == owner)
                .ok_or("owner is not a spawned backend")?;
            let pid = backends[victim].pid();
            backends[victim].kill9()?;
            killed = owner;
            log.push(format!(
                "router-failover: SIGKILLed owner {killed} (pid {pid}) before op {}",
                i + 1
            ));
        }
        let spec = JobSpec::from_job(trace.job(id));
        client
            .admit(&spec, true)
            .map_err(|e| format!("admit {} across the failover: {e}", i + 1))?;
        specs.push(spec);
    }

    let stats = client.stats();
    if stats.reconnects == 0 {
        return Err("the client never reconnected — the kill was not observed".into());
    }
    let owner = router
        .state()
        .route("chaos-router")
        .ok_or("session lost its owner")?;
    if owner == killed {
        return Err(format!("session still routed to the dead backend {killed}"));
    }
    log.push(format!(
        "router-failover: {jobs} op(s), {} reconnect(s), {} retry(ies), \
         {} deduped ack(s); session now on {owner}",
        stats.reconnects, stats.retries, stats.deduped_acks
    ));

    // The surviving history: contiguous seqs, warm decider, offline
    // byte-identity.
    let decider = SessionConfig::default().decider;
    let mut last: BTreeMap<u64, Vec<Response>> = BTreeMap::new();
    for observed in client.drain_observed() {
        last.insert(observed.seq, observed.frames);
    }
    if last.len() != jobs {
        return Err(format!(
            "observed {} distinct seq(s), expected {jobs}",
            last.len()
        ));
    }
    let mut entries = Vec::new();
    for (&seq, frames) in &last {
        if seq > 1 {
            assert_decider_warm(frames, &decider, &format!("seq {seq}"))?;
        }
        let spec = &specs[seq as usize - 1];
        entries.push(entry_from_frames(seq, spec, frames)?);
    }
    verify_history(&trace, &entries, SessionConfig::default())?;
    let admitted = entries
        .iter()
        .filter(|e| matches!(e.op, HistoryOp::Admit { admitted: true, .. }))
        .count();
    log.push(format!(
        "router-failover: history of {jobs} seq(s) replays byte-identically \
         ({admitted} admitted)"
    ));

    // The survivor holds the full horizon, and the tier-wide aggregate
    // accounts every dedup the client observed.
    let mut probe = Client::connect(&Endpoint::Tcp(owner.clone())).map_err(|e| e.to_string())?;
    let attach = probe
        .attach("chaos-router", false)
        .map_err(|e| format!("attach on the survivor: {e}"))?;
    if attach.decisions != Some(jobs as u64) {
        return Err(format!(
            "survivor reports decisions {:?}, expected {jobs}",
            attach.decisions
        ));
    }
    let mut via_router =
        Client::connect(&Endpoint::Tcp(router.addr().to_string())).map_err(|e| e.to_string())?;
    let frames = via_router
        .request(Op::Stats(msmr_serve::protocol::StatsOp { session: None }))
        .map_err(|e| e.to_string())?;
    let aggregate = frames
        .iter()
        .find_map(|f| match &f.frame {
            Frame::Stats(s) => Some(s.stats.clone()),
            _ => None,
        })
        .ok_or("no stats frame from the router")?;
    if aggregate.counters.deduped_ops != stats.deduped_acks {
        return Err(format!(
            "tier counted {} deduped op(s), the client observed {}",
            aggregate.counters.deduped_ops, stats.deduped_acks
        ));
    }
    log.push(format!(
        "router-failover: survivor horizon {jobs} verified, tier dedup \
         accounting reconciled ({} deduped)",
        stats.deduped_acks
    ));

    // Tier shutdown through the router: the op is broadcast and every
    // surviving backend exits.
    via_router
        .request(Op::Shutdown(msmr_serve::protocol::ShutdownOp {}))
        .map_err(|e| format!("shutdown through the router: {e}"))?;
    router.join();
    drop(backends);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(log)
}

/// An injectable store clock driven by the scenario.
struct SkewClock(AtomicU64);

impl msmr_cluster::Clock for SkewClock {
    fn now_millis(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Clock skew against the TTL reaper: a backward jump must evict
/// nothing (idleness saturates at zero), the TTL boundary must hold
/// exactly, and an eviction must snapshot first so a returning client
/// resurrects the session warm with its seq horizon intact.
///
/// # Errors
///
/// Returns the first violated invariant as a display string.
pub fn clock_skew(seed: u64) -> Result<Vec<String>, String> {
    let mut log = Vec::new();
    let dir = scratch_dir("clock-skew", seed);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let clock = Arc::new(SkewClock(AtomicU64::new(1_000)));
    let ttl_millis = 5_000u64;
    let engine = ClusterEngine::with_store_clock(
        ClusterConfig {
            snapshot_dir: Some(dir.clone()),
            session_ttl: Some(Duration::from_millis(ttl_millis)),
            ..ClusterConfig::default()
        },
        Some(clock.clone()),
    )
    .map_err(|e| e.to_string())?;

    let trace = chaos_trace(seed, 6)?;
    let order = arrival_order(&trace);
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;

    let idle = engine
        .store()
        .attach("skew-idle", true)
        .map_err(|e| e.to_string())?;
    idle.session.submit(pipeline.clone(), false, |_| {});
    for &id in &order[..2] {
        idle.session
            .admit(&JobSpec::from_job(trace.job(id)), false, None, |_| {})
            .map_err(|e| e.to_string())?;
    }
    let decisions_before = idle.session.decisions();
    idle.session.client_detached();
    let held = engine
        .store()
        .attach("skew-held", true)
        .map_err(|e| e.to_string())?;
    held.session.submit(pipeline, false, |_| {});

    // Backward skew: `now` before every touch timestamp. Idleness
    // saturates at zero, so nothing may be reaped.
    clock.0.store(0, Ordering::SeqCst);
    let (evicted, error) = engine.evict_idle();
    if !evicted.is_empty() || error.is_some() {
        return Err(format!(
            "backward clock skew evicted {evicted:?} (error: {error:?})"
        ));
    }
    // Right below the TTL boundary: still nothing.
    clock.0.store(1_000 + ttl_millis - 1, Ordering::SeqCst);
    let (evicted, _) = engine.evict_idle();
    if !evicted.is_empty() {
        return Err(format!("evicted {evicted:?} one tick before the TTL"));
    }
    log.push("clock-skew: backward jump and TTL-1 sweep evicted nothing".into());

    // Past the TTL: the detached session goes (snapshot first), the
    // attached one stays.
    clock.0.store(1_000 + ttl_millis + 1, Ordering::SeqCst);
    let (evicted, error) = engine.evict_idle();
    if evicted != ["skew-idle"] {
        return Err(format!(
            "TTL sweep evicted {evicted:?}, expected [skew-idle]"
        ));
    }
    if let Some(e) = error {
        return Err(format!("eviction snapshot failed: {e}"));
    }
    let snapshot = engine.stats_snapshot();
    if snapshot.counters.evictions != 1 || snapshot.counters.snapshot_writes != 1 {
        return Err(format!(
            "{} eviction(s) / {} snapshot write(s) counted, expected 1 / 1",
            snapshot.counters.evictions, snapshot.counters.snapshot_writes
        ));
    }
    if snapshot.gauges.live_sessions != 1 {
        return Err(format!(
            "{} live session(s) after the sweep, expected only skew-held",
            snapshot.gauges.live_sessions
        ));
    }
    log.push("clock-skew: TTL sweep snapshotted and evicted only the detached session".into());

    // Resurrection: re-attaching restores from the eviction snapshot
    // with the decision seq intact and continues warm.
    let outcome = engine.attach_session("skew-idle", false)?;
    if outcome.created {
        return Err("re-attach created a blank session instead of restoring".into());
    }
    if outcome.session.decisions() != decisions_before {
        return Err(format!(
            "resurrected session has {} decision(s), expected {decisions_before}",
            outcome.session.decisions()
        ));
    }
    let decider = SessionConfig::default().decider;
    let mut cold = false;
    let (_, seq, deduped) = outcome
        .session
        .admit(&JobSpec::from_job(trace.job(order[2])), true, None, |v| {
            cold |= v.solver == decider && v.stats.cold_fallback.is_some();
        })
        .map_err(|e| e.to_string())?;
    if cold {
        return Err("resurrected session's decider decided cold".into());
    }
    if seq != decisions_before + 1 || deduped {
        return Err(format!(
            "resurrected session decided at seq {seq} (deduped: {deduped}), \
             expected {}",
            decisions_before + 1
        ));
    }
    log.push(format!(
        "clock-skew: resurrection came back warm, seq continued at {seq}"
    ));

    // Post-failure accounting: three decisions across the skew (two
    // before the eviction, one after the resurrection), one Eviction
    // and one SnapshotWrite flight event matching their counters.
    verify_accounting(
        "clock-skew",
        &engine.stats_snapshot(),
        &engine.stats().flight_dump(),
        3,
        0,
        0,
    )?;
    log.push("clock-skew: flight recorder and histograms reconcile with the history".into());
    let _ = std::fs::remove_dir_all(&dir);
    Ok(log)
}
