//! A byte-level TCP proxy that injects faults into the client→server
//! NDJSON stream: seeded delays, duplicated lines, adjacent-line
//! reorders and corrupted copies. The server→client direction is
//! relayed verbatim, so every fault the daemon survives is observable
//! as a normal response frame.
//!
//! Faults are *additive*: a corrupted line is sent as a corrupted copy
//! **followed by** the original, and a reordered line is held for one
//! line and then released. No request is ever dropped, so a scenario
//! can still drive the session to a known end state and account for
//! every injected fault exactly (corrupt copies → `Error` frames on id
//! 0, duplicates → `deduped: true` acks, reorders → `SeqGap` errors).

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use msmr_serve::MixRng;

/// Per-line fault probabilities (0.0–1.0) plus the warmup prefix.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability of sending a corrupted copy before the line.
    pub corrupt: f64,
    /// Probability of sending the line twice.
    pub duplicate: f64,
    /// Probability of holding the line until after its successor
    /// (an adjacent swap; held lines flush at EOF).
    pub reorder: f64,
    /// Probability of sleeping before forwarding the line.
    pub delay: f64,
    /// Upper bound of an injected delay.
    pub max_delay_ms: u64,
    /// Lines at the start of every connection forwarded untouched.
    /// Attach and submit are not seq-protected — duplicating a submit
    /// would wipe the session — so scenarios shield them here.
    pub warmup: usize,
}

/// Counts of the faults a proxy actually injected, across connections.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Corrupted copies sent.
    pub corrupted: AtomicU64,
    /// Lines sent twice.
    pub duplicated: AtomicU64,
    /// Adjacent swaps performed.
    pub reordered: AtomicU64,
    /// Delays injected.
    pub delayed: AtomicU64,
}

impl ProxyStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::SeqCst);
    }
}

/// The proxy: accepts on an ephemeral port and relays every connection
/// to `upstream` through [`FaultPlan`]-driven mutation. [`Drop`] stops
/// the accept loop.
pub struct ChaosProxy {
    addr: String,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts the accept loop. Each accepted
    /// connection gets its own deterministic RNG stream derived from
    /// `seed` and the connection index, so a scenario's fault pattern
    /// is a pure function of its seed.
    ///
    /// # Errors
    ///
    /// Propagates bind failures as display strings.
    pub fn start(upstream: &str, seed: u64, plan: FaultPlan) -> Result<ChaosProxy, String> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
        let addr = listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .to_string();
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let stats = Arc::new(ProxyStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        {
            let upstream = upstream.to_string();
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                let mut conns: u64 = 0;
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            conns += 1;
                            let conn_seed = seed.wrapping_add(conns);
                            let upstream = upstream.clone();
                            let stats = Arc::clone(&stats);
                            std::thread::spawn(move || {
                                let _ = relay(client, &upstream, conn_seed, plan, &stats);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        Ok(ChaosProxy {
            addr,
            stats,
            shutdown,
        })
    }

    /// The proxy's listen address (`host:port`).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The injected-fault counters.
    #[must_use]
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Draws a probability decision from the RNG.
fn roll(rng: &mut MixRng, probability: f64) -> bool {
    // 53 bits of the draw give a uniform f64 in [0, 1).
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    unit < probability
}

/// Relays one client connection, mutating the client→server lines.
fn relay(
    client: TcpStream,
    upstream: &str,
    seed: u64,
    plan: FaultPlan,
    stats: &ProxyStats,
) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    server.set_nodelay(true)?;
    client.set_nodelay(true)?;

    // Server→client: verbatim copy; propagate the server's EOF so the
    // client's read loop terminates.
    let mut server_read = server.try_clone()?;
    let client_write = client.try_clone()?;
    std::thread::spawn(move || {
        let mut client_write = client_write;
        let _ = std::io::copy(&mut server_read, &mut client_write);
        let _ = client_write.shutdown(Shutdown::Write);
    });

    // Client→server: line-at-a-time with fault injection.
    let mut rng = MixRng::new(seed);
    let mut reader = BufReader::new(client);
    let mut server = server;
    let mut held: Option<Vec<u8>> = None;
    let mut line = Vec::new();
    let mut index: usize = 0;
    loop {
        line.clear();
        if reader.read_until(b'\n', &mut line)? == 0 {
            break;
        }
        let in_warmup = index < plan.warmup;
        index += 1;
        if in_warmup {
            server.write_all(&line)?;
            server.flush()?;
            continue;
        }
        if roll(&mut rng, plan.delay) {
            ProxyStats::bump(&stats.delayed);
            let millis = 1 + rng.next_u64() % plan.max_delay_ms.max(1);
            std::thread::sleep(Duration::from_millis(millis));
        }
        if roll(&mut rng, plan.corrupt) {
            // A corrupted *copy*: the first half of the line's bytes
            // followed by invalid UTF-8 — enough to defeat both the
            // JSON parser and lossless UTF-8 decoding. The original
            // still follows, so the op is delayed, not lost.
            ProxyStats::bump(&stats.corrupted);
            let mut garbled = line[..line.len() / 2].to_vec();
            garbled.extend_from_slice(b"\xff\xfe{\n");
            server.write_all(&garbled)?;
        }
        if roll(&mut rng, plan.reorder) && held.is_none() {
            // Hold this line; it is released right after its successor.
            ProxyStats::bump(&stats.reordered);
            held = Some(line.clone());
            continue;
        }
        server.write_all(&line)?;
        if roll(&mut rng, plan.duplicate) {
            ProxyStats::bump(&stats.duplicated);
            server.write_all(&line)?;
        }
        if let Some(previous) = held.take() {
            server.write_all(&previous)?;
        }
        server.flush()?;
    }
    // EOF from the client: flush any held line, then forward the EOF so
    // the daemon finishes the connection and its responses drain back.
    if let Some(previous) = held.take() {
        server.write_all(&previous)?;
    }
    server.flush()?;
    server.shutdown(Shutdown::Write)?;
    Ok(())
}
