//! `msmr-chaos` — seeded fault-injection harness for the admission
//! daemon.
//!
//! ```text
//! msmr-chaos --all [--seed N]
//! msmr-chaos --scenario NAME [--seed N]
//! msmr-chaos --list
//! ```
//!
//! Each scenario injects one fault family (see `crates/chaos/README.md`
//! for the full matrix) and asserts the recovery invariants. Scenarios
//! are pure functions of the seed; on failure the seed is printed so
//! the run reproduces exactly. `kill-restart` spawns a real
//! `msmr-served`, located next to this binary or via `MSMR_SERVED_BIN`.

use std::process::ExitCode;

use msmr_chaos::scenarios;

type Scenario = fn(u64) -> Result<Vec<String>, String>;

const SCENARIOS: &[(&str, Scenario)] = &[
    ("kill-restart", scenarios::kill_restart),
    ("torn-snapshot", scenarios::torn_snapshot),
    ("overload-storm", scenarios::overload_storm),
    ("frame-chaos", scenarios::frame_chaos),
    ("clock-skew", scenarios::clock_skew),
    ("router-failover", scenarios::router_failover),
];

fn usage() -> String {
    let names: Vec<&str> = SCENARIOS.iter().map(|(name, _)| *name).collect();
    format!(
        "usage: msmr-chaos (--all | --scenario NAME | --list) [--seed N]\n\
         scenarios: {}",
        names.join(", ")
    )
}

fn main() -> ExitCode {
    let mut seed = 7u64;
    let mut selected: Vec<&'static str> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => selected = SCENARIOS.iter().map(|(name, _)| *name).collect(),
            "--list" => {
                for (name, _) in SCENARIOS {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--scenario" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("msmr-chaos: --scenario needs a name\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match SCENARIOS.iter().find(|(known, _)| known == name) {
                    Some((known, _)) => selected.push(known),
                    None => {
                        eprintln!("msmr-chaos: unknown scenario `{name}`\n\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(value) => seed = value,
                    None => {
                        eprintln!("msmr-chaos: --seed needs an integer\n\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("msmr-chaos: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    for name in selected {
        let scenario = SCENARIOS
            .iter()
            .find(|(known, _)| *known == name)
            .map(|(_, f)| *f)
            .expect("selected scenarios are validated");
        println!("chaos: running {name} (seed {seed})");
        match scenario(seed) {
            Ok(lines) => {
                for line in lines {
                    println!("chaos:   {line}");
                }
                println!("chaos: {name} PASSED");
            }
            Err(e) => {
                eprintln!("chaos: {name} FAILED: {e}");
                eprintln!("chaos: seed was {seed}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
