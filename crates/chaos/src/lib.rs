//! Seeded fault-injection harness for the admission daemon.
//!
//! The crate drives the recovery seam end to end: it boots real daemons
//! (or in-process [`ClusterEngine`](msmr_cluster::ClusterEngine)s),
//! injects one fault family per scenario — SIGKILL mid-replay, torn
//! snapshot files, worker-pool overload storms, byte-level frame
//! corruption/duplication/reordering through the [`proxy::ChaosProxy`],
//! and clock skew against the TTL reaper — and then asserts that the
//! survivors uphold the contracts the rest of the workspace relies on:
//!
//! * **Exactly-once application.** Replayed seq-stamped ops are acked
//!   (`deduped: true`) but never re-applied; the daemon's decision
//!   counter equals the number of unique ops.
//! * **Byte-identity.** The seq-ordered history that survives the chaos
//!   replays offline through a fresh [`AdmissionSession`] and every
//!   observed verdict matches byte for byte (after
//!   [`normalized_verdict_json`] zeroes the timing fields).
//! * **Warm provenance.** Sessions restored from snapshots keep their
//!   decider state: no verdict produced after a crash-restart carries
//!   the cold-fallback marker.
//!
//! Every scenario is a pure function of its `seed`, so a failure report
//! ("chaos: seed was N") reproduces exactly.

#![forbid(unsafe_code)]

pub mod harness;
pub mod proxy;
pub mod scenarios;

use msmr_model::JobSet;
use msmr_serve::protocol::JobSpec;
use msmr_serve::{normalized_verdict_json, SessionConfig};
use msmr_workload::{EdgeWorkloadConfig, EdgeWorkloadGenerator};

/// A seeded edge-offloading arrival trace, sized like the load
/// generator's (infrastructure scales with the job count).
///
/// # Errors
///
/// Propagates workload-generator configuration errors as display
/// strings.
pub fn chaos_trace(seed: u64, jobs: usize) -> Result<JobSet, String> {
    let config = EdgeWorkloadConfig::default()
        .with_jobs(jobs)
        .with_infrastructure((jobs / 4).clamp(2, 25), (jobs / 5).clamp(2, 20));
    EdgeWorkloadGenerator::new(config)
        .map_err(|e| e.to_string())
        .map(|generator| generator.generate_seeded(seed))
}

/// One surviving decision of a chaos run, as observed on the wire.
#[derive(Debug, Clone)]
pub enum HistoryOp {
    /// An admission decision.
    Admit {
        /// The job the client offered.
        spec: JobSpec,
        /// The verdict the daemon acked.
        admitted: bool,
    },
    /// A withdrawal.
    Withdraw {
        /// The admitted job's handle.
        handle: u64,
    },
}

/// One seq slot of the surviving history: the op plus the normalized
/// verdict lines the daemon streamed for it. `verdicts` may be empty
/// when the ack survived but its verdict stream was not observed (e.g.
/// the op was applied during a journal replay); the byte-compare is
/// then skipped for that slot, the outcome compare never is.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The decision's sequence number (1-based, contiguous).
    pub seq: u64,
    /// The op that occupied the slot.
    pub op: HistoryOp,
    /// Normalized verdict JSON lines observed online, in stream order.
    pub verdicts: Vec<String>,
}

/// Replays a surviving seq-ordered history offline through a fresh
/// [`AdmissionSession`](msmr_serve::AdmissionSession) and asserts the
/// byte-identity contract: same admit/reject outcome per seq, and —
/// wherever the online verdict stream was observed — byte-identical
/// normalized verdicts.
///
/// # Errors
///
/// Returns a display string naming the first divergent seq: a gap in
/// the seq numbering, a replay error, an outcome flip, a verdict-count
/// mismatch or a byte difference.
pub fn verify_history(
    trace: &JobSet,
    entries: &[HistoryEntry],
    config: SessionConfig,
) -> Result<(), String> {
    let mut mirror = msmr_serve::AdmissionSession::new(config);
    let (pipeline, _) = trace.restrict_to(&[]).map_err(|e| e.to_string())?;
    mirror.submit(pipeline, false, |_| {});
    for (i, entry) in entries.iter().enumerate() {
        let expected_seq = i as u64 + 1;
        if entry.seq != expected_seq {
            return Err(format!(
                "history has seq {} at slot {expected_seq}: the surviving \
                 record is not contiguous",
                entry.seq
            ));
        }
        let mut offline = Vec::new();
        match &entry.op {
            HistoryOp::Admit { spec, admitted } => {
                let outcome = mirror
                    .admit(spec, true, |v| offline.push(normalized_verdict_json(v)))
                    .map_err(|e| format!("offline replay failed at seq {expected_seq}: {e}"))?;
                if outcome.admitted != *admitted {
                    return Err(format!(
                        "seq {expected_seq} decided {admitted} online but {} offline",
                        outcome.admitted
                    ));
                }
            }
            HistoryOp::Withdraw { handle } => {
                mirror
                    .withdraw(*handle, true, |v| offline.push(normalized_verdict_json(v)))
                    .map_err(|e| format!("offline replay failed at seq {expected_seq}: {e}"))?;
            }
        }
        if entry.verdicts.is_empty() {
            continue;
        }
        if entry.verdicts.len() != offline.len() {
            return Err(format!(
                "seq {expected_seq} streamed {} verdicts online but {} offline",
                entry.verdicts.len(),
                offline.len()
            ));
        }
        for (j, (online, offline)) in entry.verdicts.iter().zip(&offline).enumerate() {
            if online != offline {
                return Err(format!(
                    "seq {expected_seq} verdict {j} diverges:\n  online:  {online}\n  offline: {offline}"
                ));
            }
        }
    }
    Ok(())
}

/// A scratch directory under the system temp dir, unique per tag and
/// seed and wiped on entry, so re-runs start clean.
#[must_use]
pub fn scratch_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("msmr-chaos-{tag}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
