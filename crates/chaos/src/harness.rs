//! Re-export of the shared daemon harness.
//!
//! The process plumbing (spawn `msmr-served`, parse its announcements,
//! SIGKILL/SIGTERM, reap) moved to [`msmr_cluster::testkit`] so the
//! router e2e suite and the chaos scenarios share one copy. This module
//! stays as a shim so `crate::harness::DaemonHarness` paths keep
//! working.

pub use msmr_cluster::testkit::{served_binary, wait_until, DaemonHarness};
