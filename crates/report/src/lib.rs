//! `msmr-report` — machine-readable benchmark reporting and trend
//! checks, shared by the `msmr-bench` harnesses and the `msmr-loadgen`
//! load generator.
//!
//! The [`report`] module defines the `BENCH_kernels.json` schema: a
//! [`BenchReport`] of named measurements, appended run-by-run (keyed by
//! git SHA + timestamp) into the [`BenchHistory`]. The [`trend`] module
//! reads that history back and flags kernels that regressed beyond a
//! tolerance — the `bench_trend` binary is the CI gate.
//!
//! This crate is deliberately solver-free (serde only), so anything in
//! the workspace — benches, services, load generators — can record into
//! the shared history without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod trend;

pub use report::{default_report_path, BenchHistory, BenchRecord, BenchReport, BenchRun};
pub use trend::{check_trend, Regression, TrendConfig, TrendReport};
