//! `bench_trend` — the CI trend gate over `BENCH_kernels.json`.
//!
//! ```text
//! bench_trend [--file PATH] [--window N] [--tolerance PCT] [--include-fast]
//! ```
//!
//! Loads the benchmark run history (default: the workspace's
//! `BENCH_kernels.json`, `MSMR_BENCH_OUT` respected), compares the
//! latest non-fast run against the best value each kernel achieved over
//! the previous `N` runs, and exits non-zero when any kernel regressed
//! beyond the tolerance. See `msmr_report::trend` for the comparison
//! semantics.

use std::path::PathBuf;
use std::process::ExitCode;

use msmr_report::{check_trend, default_report_path, BenchHistory, TrendConfig};

fn usage() -> &'static str {
    "usage: bench_trend [--file PATH] [--window N] [--tolerance PCT] [--include-fast]\n\n  --file PATH      history file (default: BENCH_kernels.json / $MSMR_BENCH_OUT)\n  --window N       baseline window of runs before the latest (default 5)\n  --tolerance PCT  allowed degradation vs the window's best (default 25)\n  --include-fast   also consider CI smoke (fast) runs"
}

fn main() -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut config = TrendConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let parsed: Result<(), String> = match flag.as_str() {
            "--file" => value("--file").map(|v| path = Some(PathBuf::from(v))),
            "--window" => value("--window").and_then(|v| {
                v.parse()
                    .map(|n| config.window = n)
                    .map_err(|_| "invalid --window value".to_string())
            }),
            "--tolerance" => value("--tolerance").and_then(|v| {
                v.parse()
                    .map(|t| config.tolerance_pct = t)
                    .map_err(|_| "invalid --tolerance value".to_string())
            }),
            "--include-fast" => {
                config.include_fast = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = parsed {
            eprintln!("bench_trend: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let path = path.unwrap_or_else(default_report_path);
    let history = match BenchHistory::load(&path) {
        Ok(history) => history,
        Err(e) => {
            eprintln!("bench_trend: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = check_trend(&history, &config);
    println!(
        "bench_trend: {} run(s) in {}, {} kernel(s) compared (window {}, tolerance {}%)",
        history.runs.len(),
        path.display(),
        report.compared,
        config.window,
        config.tolerance_pct
    );
    for note in &report.notes {
        println!("  note: {note}");
    }
    for regression in &report.regressions {
        println!(
            "  REGRESSION {:<44} {:>12.1} -> {:>12.1} {} (+{:.1}%)",
            regression.name,
            regression.baseline,
            regression.latest,
            regression.unit,
            regression.change_pct
        );
    }
    if report.passed() {
        println!("bench_trend: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_trend: {} kernel(s) regressed beyond {}%",
            report.regressions.len(),
            config.tolerance_pct
        );
        ExitCode::FAILURE
    }
}
