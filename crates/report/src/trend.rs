//! Regression trend checks over the `BENCH_kernels.json` run history.
//!
//! The history accumulates one [`BenchRun`] per `kernels_json` (or
//! `msmr-loadgen`) invocation; this module compares the latest run
//! against the best value each kernel achieved over the previous `N`
//! runs and flags regressions beyond a configurable tolerance. The
//! direction of "worse" follows the record's unit: `ns/op` and `us` are
//! latency-like (higher is worse), `cases/sec` and `req/sec` are
//! throughput-like (lower is worse); records with other units (e.g.
//! counts) are skipped. Runs marked `fast` are CI smoke runs whose
//! numbers are sanity signals only, so they are excluded by default.

use std::collections::HashMap;

use crate::report::{BenchHistory, BenchRun};

/// Configuration of a [`check_trend`] pass.
#[derive(Debug, Clone)]
pub struct TrendConfig {
    /// How many runs before the latest form the baseline window.
    pub window: usize,
    /// Allowed degradation, in percent, against the window's best value
    /// before a kernel counts as regressed.
    pub tolerance_pct: f64,
    /// Include `fast` (CI smoke) runs. Off by default: their numbers
    /// are measured at reduced proportions and are not trackable.
    pub include_fast: bool,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            window: 5,
            tolerance_pct: 25.0,
            include_fast: false,
        }
    }
}

/// Whether a record's unit is comparable, and in which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Higher values are worse (`ns/op`, `us`).
    LowerIsBetter,
    /// Lower values are worse (`cases/sec`, `req/sec`).
    HigherIsBetter,
}

fn direction(unit: &str) -> Option<Direction> {
    match unit {
        "ns/op" | "us" => Some(Direction::LowerIsBetter),
        "cases/sec" | "req/sec" => Some(Direction::HigherIsBetter),
        _ => None,
    }
}

/// One kernel that regressed beyond the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The record name (`group/parameter` style).
    pub name: String,
    /// The record unit.
    pub unit: String,
    /// Best value over the baseline window.
    pub baseline: f64,
    /// The latest run's value.
    pub latest: f64,
    /// Degradation in percent (always ≥ 0; sign-normalized for the
    /// unit's direction).
    pub change_pct: f64,
}

/// The outcome of one trend check.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Kernels compared (present in the latest run with a comparable
    /// unit and at least one baseline value).
    pub compared: usize,
    /// Kernels that regressed beyond the tolerance.
    pub regressions: Vec<Regression>,
    /// Human-readable notes (skipped kernels, trivially-passing
    /// checks).
    pub notes: Vec<String>,
}

impl TrendReport {
    /// `true` when no kernel regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares, for every kernel in the history, its **latest** recorded
/// value against the best value over the up-to-`window` recordings
/// before it. The comparison is per-kernel rather than per-run because
/// the history mixes run *kinds* — `kernels_json` runs and
/// `msmr-loadgen` runs record disjoint kernel sets — and the newest run
/// of one kind must not hide regressions in the other. Kernels with
/// fewer than two recordings pass with a note — a fresh repository must
/// not fail its own CI.
#[must_use]
pub fn check_trend(history: &BenchHistory, config: &TrendConfig) -> TrendReport {
    let eligible: Vec<&BenchRun> = history
        .runs
        .iter()
        .filter(|run| config.include_fast || !run.fast)
        .collect();
    let mut report = TrendReport {
        compared: 0,
        regressions: Vec::new(),
        notes: Vec::new(),
    };
    if eligible.is_empty() {
        report
            .notes
            .push("no eligible runs in the history — nothing to compare".to_string());
        return report;
    }

    // Every kernel's recordings, in run order (first occurrence fixes
    // the reporting order).
    let mut names: Vec<(String, String)> = Vec::new();
    let mut series: HashMap<(String, String), Vec<f64>> = HashMap::new();
    for run in &eligible {
        for record in &run.results {
            let key = (record.name.clone(), record.unit.clone());
            series
                .entry(key.clone())
                .or_insert_with(|| {
                    names.push(key.clone());
                    Vec::new()
                })
                .push(record.value);
        }
    }

    for key in names {
        let values = &series[&key];
        let (name, unit) = key;
        let Some(direction) = direction(&unit) else {
            report
                .notes
                .push(format!("{name}: unit `{unit}` not compared"));
            continue;
        };
        let latest = values[values.len() - 1];
        if values.len() < 2 {
            report
                .notes
                .push(format!("{name}: new kernel, no baseline yet"));
            continue;
        }
        let window_start = (values.len() - 1).saturating_sub(config.window.max(1));
        let window = &values[window_start..values.len() - 1];
        let baseline = window
            .iter()
            .copied()
            .reduce(|best, value| match direction {
                Direction::LowerIsBetter => best.min(value),
                Direction::HigherIsBetter => best.max(value),
            })
            .expect("window is non-empty");
        report.compared += 1;
        if baseline <= 0.0 || !baseline.is_finite() || !latest.is_finite() {
            report
                .notes
                .push(format!("{name}: implausible values, skipped"));
            continue;
        }
        let change_pct = match direction {
            Direction::LowerIsBetter => (latest - baseline) / baseline * 100.0,
            Direction::HigherIsBetter => (baseline - latest) / baseline * 100.0,
        };
        if change_pct > config.tolerance_pct {
            report.regressions.push(Regression {
                name,
                unit,
                baseline,
                latest,
                change_pct,
            });
        }
    }
    report
        .regressions
        .sort_by(|a, b| b.change_pct.total_cmp(&a.change_pct));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchRecord, BenchRun};

    fn run(fast: bool, records: &[(&str, f64, &str)]) -> BenchRun {
        BenchRun {
            git_sha: "test".to_string(),
            unix_time: 0,
            fast,
            results: records
                .iter()
                .map(|(name, value, unit)| BenchRecord {
                    name: (*name).to_string(),
                    value: *value,
                    unit: (*unit).to_string(),
                })
                .collect(),
        }
    }

    fn history(runs: Vec<BenchRun>) -> BenchHistory {
        BenchHistory {
            schema: BenchHistory::SCHEMA.to_string(),
            runs,
        }
    }

    #[test]
    fn single_run_histories_pass_trivially() {
        let h = history(vec![run(false, &[("k", 10.0, "ns/op")])]);
        let report = check_trend(&h, &TrendConfig::default());
        assert!(report.passed());
        assert_eq!(report.compared, 0);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn latency_regressions_beyond_tolerance_fail() {
        let h = history(vec![
            run(false, &[("k", 100.0, "ns/op")]),
            run(false, &[("k", 131.0, "ns/op")]),
        ]);
        let report = check_trend(
            &h,
            &TrendConfig {
                tolerance_pct: 30.0,
                ..TrendConfig::default()
            },
        );
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].baseline, 100.0);
        assert!((report.regressions[0].change_pct - 31.0).abs() < 1e-9);

        // Inside the tolerance it passes.
        let report = check_trend(
            &h,
            &TrendConfig {
                tolerance_pct: 35.0,
                ..TrendConfig::default()
            },
        );
        assert!(report.passed());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn throughput_direction_is_inverted() {
        let h = history(vec![
            run(false, &[("t", 1000.0, "cases/sec")]),
            run(false, &[("t", 600.0, "cases/sec")]),
        ]);
        let report = check_trend(&h, &TrendConfig::default());
        assert!(!report.passed());
        assert!((report.regressions[0].change_pct - 40.0).abs() < 1e-9);

        // A throughput *increase* is never a regression.
        let h = history(vec![
            run(false, &[("t", 1000.0, "cases/sec")]),
            run(false, &[("t", 2000.0, "cases/sec")]),
        ]);
        assert!(check_trend(&h, &TrendConfig::default()).passed());
    }

    #[test]
    fn baseline_is_the_best_of_the_window() {
        // One noisy-slow run inside the window must not raise the bar.
        let h = history(vec![
            run(false, &[("k", 100.0, "ns/op")]),
            run(false, &[("k", 180.0, "ns/op")]),
            run(false, &[("k", 120.0, "ns/op")]),
        ]);
        let report = check_trend(
            &h,
            &TrendConfig {
                tolerance_pct: 15.0,
                ..TrendConfig::default()
            },
        );
        assert!(!report.passed(), "vs best(100), +20% is a regression");

        // With a window of 1 only the 180 run is the baseline.
        let report = check_trend(
            &h,
            &TrendConfig {
                window: 1,
                tolerance_pct: 15.0,
                ..TrendConfig::default()
            },
        );
        assert!(report.passed());
    }

    #[test]
    fn fast_runs_are_excluded_by_default() {
        let h = history(vec![
            run(false, &[("k", 100.0, "ns/op")]),
            run(true, &[("k", 500.0, "ns/op")]), // CI smoke noise
        ]);
        let report = check_trend(&h, &TrendConfig::default());
        assert!(report.passed(), "a fast run must not be the latest");
        let report = check_trend(
            &h,
            &TrendConfig {
                include_fast: true,
                ..TrendConfig::default()
            },
        );
        assert!(!report.passed());
    }

    #[test]
    fn new_kernels_and_unknown_units_are_notes_not_failures() {
        let h = history(vec![
            run(false, &[("old", 10.0, "ns/op")]),
            run(
                false,
                &[
                    ("old", 10.0, "ns/op"),
                    ("fresh", 1.0, "ns/op"),
                    ("counterish", 42.0, "count"),
                ],
            ),
        ]);
        let report = check_trend(&h, &TrendConfig::default());
        assert!(report.passed());
        assert_eq!(report.compared, 1);
        assert!(report.notes.iter().any(|n| n.contains("fresh")));
        assert!(report.notes.iter().any(|n| n.contains("counterish")));
    }

    #[test]
    fn the_committed_history_passes_its_own_check() {
        // The repo's BENCH_kernels.json must stay green under the CI
        // gate's tolerance (50% — see ci.yml: live-service latency
        // percentiles swing 30-40% between shared runners), or the
        // trend step would fail on an untouched tree.
        let path = crate::report::default_report_path();
        if let Ok(history) = BenchHistory::load(&path) {
            let report = check_trend(
                &history,
                &TrendConfig {
                    tolerance_pct: 50.0,
                    ..TrendConfig::default()
                },
            );
            assert!(
                report.passed(),
                "committed history regresses: {:?}",
                report.regressions
            );
        }
    }
}
