//! Machine-readable benchmark reporting (`BENCH_kernels.json`).
//!
//! The criterion-style benches print human-readable samples; this module
//! measures the same kernels into a serializable [`BenchReport`] so the
//! performance trajectory of the repository can be tracked commit over
//! commit. The `kernels_json` bench target **appends** each run — keyed
//! by git SHA and timestamp — to the [`BenchHistory`] in
//! `BENCH_kernels.json` at the workspace root (override with the
//! `MSMR_BENCH_OUT` environment variable) instead of clobbering previous
//! measurements; legacy single-run v1 files are migrated in place. A fast
//! variant of the same harness runs as an ordinary `#[test]` in CI so the
//! report cannot bit-rot.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One measured data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark name, `group/parameter` style.
    pub name: String,
    /// Measured value (interpretation given by `unit`).
    pub value: f64,
    /// `"ns/op"` for kernels, `"cases/sec"` for throughput.
    pub unit: String,
}

/// A collection of measurements with a stable JSON schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema identifier for downstream tooling.
    pub schema: String,
    /// `true` when the report was produced by the reduced CI smoke run
    /// (numbers are then only sanity signals, not trackable).
    pub fast: bool,
    /// The measurements, in execution order.
    pub results: Vec<BenchRecord>,
}

impl BenchReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(fast: bool) -> Self {
        BenchReport {
            schema: "msmr-bench-kernels/1".to_string(),
            fast,
            results: Vec::new(),
        }
    }

    /// Times `iters` executions of `routine` per sample, takes the best of
    /// `samples` samples and records the per-iteration nanoseconds under
    /// `name`. Returns the recorded value.
    pub fn time_ns<T>(
        &mut self,
        name: &str,
        samples: usize,
        iters: usize,
        mut routine: impl FnMut() -> T,
    ) -> f64 {
        let _ = black_box(routine()); // warm-up, not recorded
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let start = Instant::now();
            for _ in 0..iters.max(1) {
                let _ = black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
            best = best.min(elapsed);
        }
        self.record(name, best, "ns/op");
        best
    }

    /// Appends an already-measured value.
    pub fn record(&mut self, name: &str, value: f64, unit: &str) {
        self.results.push(BenchRecord {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    }

    /// Looks a measurement up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&BenchRecord> {
        self.results.iter().find(|record| record.name == name)
    }

    /// Serializes the report to JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialization cannot fail")
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints a human-readable table of the measurements.
    pub fn print_table(&self) {
        for record in &self.results {
            println!(
                "  {:<44} {:>14.1} {}",
                record.name, record.value, record.unit
            );
        }
    }
}

/// One recorded benchmark run of the history file: a [`BenchReport`]
/// keyed by the git commit and wall-clock second it measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// `git rev-parse --short=12 HEAD` at measurement time (`"unknown"`
    /// outside a git checkout; overridable with `MSMR_GIT_SHA`).
    pub git_sha: String,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_time: u64,
    /// Whether the run used smoke-test proportions.
    pub fast: bool,
    /// The measurements, in execution order.
    pub results: Vec<BenchRecord>,
}

/// The append-only measurement history stored in `BENCH_kernels.json`
/// (schema v2). Every `kernels_json` run appends one [`BenchRun`], so the
/// performance trajectory survives across commits instead of being
/// overwritten.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchHistory {
    /// Schema identifier for downstream tooling.
    pub schema: String,
    /// All recorded runs, oldest first.
    pub runs: Vec<BenchRun>,
}

impl Default for BenchHistory {
    fn default() -> Self {
        BenchHistory {
            schema: BenchHistory::SCHEMA.to_string(),
            runs: Vec::new(),
        }
    }
}

impl BenchHistory {
    /// The current history schema identifier.
    pub const SCHEMA: &'static str = "msmr-bench-kernels/2";

    /// Loads the history at `path`. A missing file yields an empty
    /// history; a legacy v1 single-report file is migrated into a
    /// one-run history (SHA `"pre-history"`, timestamp 0).
    ///
    /// # Errors
    ///
    /// Returns an `InvalidData` error when the file exists but parses as
    /// neither schema, and propagates other I/O errors.
    pub fn load(path: &Path) -> std::io::Result<BenchHistory> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(BenchHistory::default())
            }
            Err(e) => return Err(e),
        };
        if let Ok(history) = serde_json::from_str::<BenchHistory>(&text) {
            return Ok(history);
        }
        match serde_json::from_str::<BenchReport>(&text) {
            Ok(legacy) => Ok(BenchHistory {
                schema: BenchHistory::SCHEMA.to_string(),
                runs: vec![BenchRun {
                    git_sha: "pre-history".to_string(),
                    unix_time: 0,
                    fast: legacy.fast,
                    results: legacy.results,
                }],
            }),
            Err(e) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: neither v2 history nor v1 report: {e}", path.display()),
            )),
        }
    }

    /// Writes the history to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)
    }

    /// The most recent run, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&BenchRun> {
        self.runs.last()
    }
}

impl BenchReport {
    /// Stamps this report into a history run keyed by the current git
    /// SHA and wall clock.
    #[must_use]
    pub fn to_run(&self) -> BenchRun {
        BenchRun {
            git_sha: git_head_sha(),
            unix_time: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            fast: self.fast,
            results: self.results.clone(),
        }
    }

    /// Appends this report as one run to the history at `path` (creating
    /// it, or migrating a legacy v1 file, as needed) and returns the
    /// updated history.
    ///
    /// # Errors
    ///
    /// Propagates load/write errors.
    pub fn append_to(&self, path: &Path) -> std::io::Result<BenchHistory> {
        let mut history = BenchHistory::load(path)?;
        history.schema = BenchHistory::SCHEMA.to_string();
        history.runs.push(self.to_run());
        history.write(path)?;
        Ok(history)
    }
}

/// The short SHA of the checked-out commit: `MSMR_GIT_SHA` when set,
/// otherwise `git rev-parse`, otherwise `"unknown"`.
fn git_head_sha() -> String {
    if let Ok(sha) = std::env::var("MSMR_GIT_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The default output location: `BENCH_kernels.json` at the workspace
/// root, overridable with `MSMR_BENCH_OUT`.
#[must_use]
pub fn default_report_path() -> PathBuf {
    if let Some(path) = std::env::var_os("MSMR_BENCH_OUT") {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_kernels.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes_round_trip() {
        let mut report = BenchReport::new(true);
        let measured = report.time_ns("noop", 3, 100, || 1 + 1);
        assert!(measured >= 0.0);
        report.record("throughput", 42.5, "cases/sec");
        assert_eq!(report.get("throughput").unwrap().unit, "cases/sec");
        assert!(report.get("missing").is_none());

        let json = report.to_json();
        assert!(json.contains("msmr-bench-kernels/1"));
        let parsed: BenchReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(parsed, report);
    }

    #[test]
    fn history_appends_runs_instead_of_clobbering() {
        let path = std::env::temp_dir().join(format!(
            "msmr_bench_history_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut first = BenchReport::new(true);
        first.record("kernel/a", 1.0, "ns/op");
        let history = first.append_to(&path).unwrap();
        assert_eq!(history.runs.len(), 1);

        let mut second = BenchReport::new(false);
        second.record("kernel/a", 2.0, "ns/op");
        let history = second.append_to(&path).unwrap();
        assert_eq!(
            history.runs.len(),
            2,
            "second run must append, not overwrite"
        );
        assert_eq!(history.schema, BenchHistory::SCHEMA);
        assert!(history.runs[0].fast && !history.runs[1].fast);
        assert!(history.latest().unwrap().unix_time >= history.runs[0].unix_time);
        assert!(!history.latest().unwrap().git_sha.is_empty());

        // Reload round-trips.
        let reloaded = BenchHistory::load(&path).unwrap();
        assert_eq!(reloaded, history);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v1_reports_migrate_into_the_history() {
        let path = std::env::temp_dir().join(format!(
            "msmr_bench_v1_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut legacy = BenchReport::new(false);
        legacy.record("kernel/a", 3.5, "ns/op");
        legacy.write_json(&path).unwrap();

        let history = BenchHistory::load(&path).unwrap();
        assert_eq!(history.runs.len(), 1);
        assert_eq!(history.runs[0].git_sha, "pre-history");
        assert_eq!(history.runs[0].results, legacy.results);

        // Appending on top of a legacy file keeps the migrated run.
        let mut fresh = BenchReport::new(true);
        fresh.record("kernel/a", 3.0, "ns/op");
        let history = fresh.append_to(&path).unwrap();
        assert_eq!(history.runs.len(), 2);
        assert_eq!(history.runs[0].git_sha, "pre-history");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_history_files_load_empty() {
        let path = std::env::temp_dir().join("msmr_bench_definitely_missing.json");
        let _ = std::fs::remove_file(&path);
        let history = BenchHistory::load(&path).unwrap();
        assert!(history.runs.is_empty());
        assert_eq!(history.schema, BenchHistory::SCHEMA);
    }

    #[test]
    fn default_path_respects_the_env_override() {
        // Can't mutate the environment safely in a parallel test run, so
        // just check the default shape.
        let path = default_report_path();
        assert!(path.to_string_lossy().contains("BENCH_kernels.json"));
    }
}
