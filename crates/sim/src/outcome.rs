//! Simulation results and execution traces.

use msmr_model::{JobId, JobSet, ResourceRef, StageId, Time};

/// One contiguous interval during which a job executed on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionSlice {
    /// The resource that executed the job.
    pub resource: ResourceRef,
    /// The executing job.
    pub job: JobId,
    /// The stage being served.
    pub stage: StageId,
    /// Start of the interval (inclusive).
    pub start: Time,
    /// End of the interval (exclusive).
    pub end: Time,
}

impl ExecutionSlice {
    /// Length of the interval.
    #[must_use]
    pub fn duration(&self) -> Time {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` if two slices overlap in time (touching endpoints do
    /// not count as overlap).
    #[must_use]
    pub fn overlaps(&self, other: &ExecutionSlice) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// The result of simulating a job set under a fixed-priority assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationOutcome {
    arrivals: Vec<Time>,
    deadlines: Vec<Time>,
    completions: Vec<Time>,
    stage_completions: Vec<Vec<Time>>,
    trace: Vec<ExecutionSlice>,
}

impl SimulationOutcome {
    pub(crate) fn new(
        jobs: &JobSet,
        completions: Vec<Time>,
        stage_completions: Vec<Vec<Time>>,
        trace: Vec<ExecutionSlice>,
    ) -> Self {
        SimulationOutcome {
            arrivals: jobs.jobs().map(|j| j.arrival()).collect(),
            deadlines: jobs.jobs().map(|j| j.deadline()).collect(),
            completions,
            stage_completions,
            trace,
        }
    }

    /// Absolute completion time of a job (exit from the last stage).
    ///
    /// # Panics
    ///
    /// Panics if the job id is out of range.
    #[must_use]
    pub fn completion(&self, job: JobId) -> Time {
        self.completions[job.index()]
    }

    /// Absolute completion time of a job at one stage.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn stage_completion(&self, job: JobId, stage: StageId) -> Time {
        self.stage_completions[job.index()][stage.index()]
    }

    /// End-to-end delay `Δ_i` of a job: completion time minus arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the job id is out of range.
    #[must_use]
    pub fn delay(&self, job: JobId) -> Time {
        self.completions[job.index()].saturating_sub(self.arrivals[job.index()])
    }

    /// Returns `true` if the job met its end-to-end deadline
    /// (`Δ_i ≤ D_i`).
    ///
    /// # Panics
    ///
    /// Panics if the job id is out of range.
    #[must_use]
    pub fn meets_deadline(&self, job: JobId) -> bool {
        self.delay(job) <= self.deadlines[job.index()]
    }

    /// Returns `true` if every job met its end-to-end deadline.
    #[must_use]
    pub fn all_deadlines_met(&self) -> bool {
        (0..self.completions.len()).all(|i| self.meets_deadline(JobId::new(i)))
    }

    /// Jobs that missed their deadline, in id order.
    #[must_use]
    pub fn deadline_misses(&self) -> Vec<JobId> {
        (0..self.completions.len())
            .map(JobId::new)
            .filter(|&i| !self.meets_deadline(i))
            .collect()
    }

    /// The latest completion time over all jobs (makespan).
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.completions.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// The full execution trace: every (resource, job, stage, interval)
    /// slice, in chronological order of interval start.
    #[must_use]
    pub fn trace(&self) -> &[ExecutionSlice] {
        &self.trace
    }

    /// Total executed time of a job summed over the whole trace; equals the
    /// job's total processing demand when the simulation ran to completion.
    #[must_use]
    pub fn executed_time(&self, job: JobId) -> Time {
        self.trace
            .iter()
            .filter(|s| s.job == job)
            .map(ExecutionSlice::duration)
            .sum()
    }

    /// Number of jobs in the simulated set.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.completions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_model::ResourceId;

    #[test]
    fn slice_duration_and_overlap() {
        let r = ResourceRef::new(StageId::new(0), ResourceId::new(0));
        let a = ExecutionSlice {
            resource: r,
            job: JobId::new(0),
            stage: StageId::new(0),
            start: Time::new(2),
            end: Time::new(5),
        };
        let b = ExecutionSlice {
            resource: r,
            job: JobId::new(1),
            stage: StageId::new(0),
            start: Time::new(5),
            end: Time::new(9),
        };
        assert_eq!(a.duration(), Time::new(3));
        assert!(!a.overlaps(&b)); // touching endpoints are fine
        let c = ExecutionSlice {
            start: Time::new(4),
            ..b
        };
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }
}
