//! Per-stage fixed-priority assignments used by the simulator.

use msmr_model::{JobId, JobSet, StageId};

/// A fixed-priority assignment for simulation: one numeric priority per job
/// and stage, where a *lower* value means a *higher* priority (matching the
/// paper's convention for `ρ_i`).
///
/// Global priority orderings (problem P1) use the same priority at every
/// stage; the DCMP baseline assigns per-stage priorities derived from
/// virtual deadlines. Ties are broken by job id inside the simulator, so
/// priority values do not need to be distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityMap {
    /// `values[stage][job]` — priority of the job at that stage.
    values: Vec<Vec<u64>>,
}

impl PriorityMap {
    /// Builds a map that applies the same global priority order at every
    /// stage. `order` lists job ids from highest to lowest priority; jobs
    /// missing from `order` get the lowest priority band.
    ///
    /// # Panics
    ///
    /// Panics if `order` mentions a job id that is not part of `jobs`.
    #[must_use]
    pub fn from_global_order(jobs: &JobSet, order: &[JobId]) -> Self {
        let mut per_job = vec![u64::MAX; jobs.len()];
        for (rank, &id) in order.iter().enumerate() {
            assert!(id.index() < jobs.len(), "job {id} not in job set");
            per_job[id.index()] = rank as u64;
        }
        let values = vec![per_job; jobs.pipeline().stage_count()];
        PriorityMap { values }
    }

    /// Builds a map from per-stage priority *values* (`values[stage][job]`,
    /// lower = higher priority).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match the job set.
    #[must_use]
    pub fn from_values(jobs: &JobSet, values: Vec<Vec<u64>>) -> Self {
        assert_eq!(
            values.len(),
            jobs.pipeline().stage_count(),
            "one priority vector per stage required"
        );
        for stage_values in &values {
            assert_eq!(
                stage_values.len(),
                jobs.len(),
                "one priority per job required"
            );
        }
        PriorityMap { values }
    }

    /// Builds a map from per-stage orders: `orders[stage]` lists the job
    /// ids of that stage from highest to lowest priority.
    ///
    /// # Panics
    ///
    /// Panics if the number of orders does not match the stage count or an
    /// order mentions an unknown job.
    #[must_use]
    pub fn from_per_stage_orders(jobs: &JobSet, orders: &[Vec<JobId>]) -> Self {
        assert_eq!(
            orders.len(),
            jobs.pipeline().stage_count(),
            "one order per stage required"
        );
        let values = orders
            .iter()
            .map(|order| {
                let mut per_job = vec![u64::MAX; jobs.len()];
                for (rank, &id) in order.iter().enumerate() {
                    assert!(id.index() < jobs.len(), "job {id} not in job set");
                    per_job[id.index()] = rank as u64;
                }
                per_job
            })
            .collect();
        PriorityMap { values }
    }

    /// The priority of `job` at `stage` (lower = higher priority).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn priority(&self, stage: StageId, job: JobId) -> u64 {
        self.values[stage.index()][job.index()]
    }

    /// Returns `true` if `a` has strictly higher priority than `b` at
    /// `stage` (ties are broken by job id, mirroring the simulator).
    #[must_use]
    pub fn outranks(&self, stage: StageId, a: JobId, b: JobId) -> bool {
        (self.priority(stage, a), a.index()) < (self.priority(stage, b), b.index())
    }

    /// Number of stages covered by the map.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.values.len()
    }

    /// Number of jobs covered by the map.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};

    fn two_stage_three_jobs() -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("a", 1, PreemptionPolicy::Preemptive)
            .stage("b", 1, PreemptionPolicy::Preemptive);
        for _ in 0..3 {
            b.job()
                .deadline(Time::new(100))
                .stage_time(Time::new(5), 0)
                .stage_time(Time::new(5), 0)
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn global_order_applies_to_every_stage() {
        let jobs = two_stage_three_jobs();
        let map =
            PriorityMap::from_global_order(&jobs, &[JobId::new(2), JobId::new(0), JobId::new(1)]);
        assert_eq!(map.stage_count(), 2);
        assert_eq!(map.job_count(), 3);
        for stage in 0..2 {
            let s = StageId::new(stage);
            assert_eq!(map.priority(s, JobId::new(2)), 0);
            assert_eq!(map.priority(s, JobId::new(0)), 1);
            assert_eq!(map.priority(s, JobId::new(1)), 2);
            assert!(map.outranks(s, JobId::new(2), JobId::new(1)));
            assert!(!map.outranks(s, JobId::new(1), JobId::new(2)));
        }
    }

    #[test]
    fn jobs_missing_from_order_get_lowest_band() {
        let jobs = two_stage_three_jobs();
        let map = PriorityMap::from_global_order(&jobs, &[JobId::new(1)]);
        let s = StageId::new(0);
        assert!(map.outranks(s, JobId::new(1), JobId::new(0)));
        // Among unordered jobs the tie breaks by id.
        assert!(map.outranks(s, JobId::new(0), JobId::new(2)));
    }

    #[test]
    fn per_stage_orders_differ_between_stages() {
        let jobs = two_stage_three_jobs();
        let map = PriorityMap::from_per_stage_orders(
            &jobs,
            &[
                vec![JobId::new(0), JobId::new(1), JobId::new(2)],
                vec![JobId::new(2), JobId::new(1), JobId::new(0)],
            ],
        );
        assert!(map.outranks(StageId::new(0), JobId::new(0), JobId::new(2)));
        assert!(map.outranks(StageId::new(1), JobId::new(2), JobId::new(0)));
    }

    #[test]
    fn from_values_roundtrip() {
        let jobs = two_stage_three_jobs();
        let map = PriorityMap::from_values(&jobs, vec![vec![5, 1, 3], vec![0, 0, 0]]);
        assert_eq!(map.priority(StageId::new(0), JobId::new(1)), 1);
        // Equal values: tie broken by id.
        assert!(map.outranks(StageId::new(1), JobId::new(0), JobId::new(1)));
    }

    #[test]
    #[should_panic(expected = "one priority vector per stage")]
    fn from_values_rejects_wrong_stage_count() {
        let jobs = two_stage_three_jobs();
        let _ = PriorityMap::from_values(&jobs, vec![vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "not in job set")]
    fn unknown_job_in_order_panics() {
        let jobs = two_stage_three_jobs();
        let _ = PriorityMap::from_global_order(&jobs, &[JobId::new(7)]);
    }
}
