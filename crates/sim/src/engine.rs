//! The discrete-event simulation engine.

use msmr_model::{JobId, JobSet, PreemptionPolicy, ResourceRef, StageId, Time};

use crate::{ExecutionSlice, PriorityMap, SimulationOutcome};

/// Discrete-event simulator for one [`JobSet`].
///
/// The engine is exact for integer-valued processing times: preemptions and
/// dispatch decisions happen only at event instants (arrivals and stage
/// completions), which is sufficient for fixed-priority scheduling because
/// the ready sets only change at those instants.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    jobs: &'a JobSet,
}

/// Per-job mutable simulation state.
#[derive(Debug, Clone)]
struct JobState {
    /// Index of the stage currently being served (`== stage_count` when the
    /// job has left the pipeline).
    stage: usize,
    /// Remaining demand at the current stage.
    remaining: u64,
    /// Time the job became ready at the current stage.
    ready_at: u64,
    /// Absolute completion time of each finished stage.
    stage_completions: Vec<u64>,
    /// Absolute pipeline-exit time (valid once `done`).
    completion: u64,
    done: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given job set.
    #[must_use]
    pub fn new(jobs: &'a JobSet) -> Self {
        Simulator { jobs }
    }

    /// The simulated job set.
    #[must_use]
    pub fn jobs(&self) -> &JobSet {
        self.jobs
    }

    /// Runs the simulation to completion under the given priorities and
    /// returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `priorities` does not cover every job and stage of the job
    /// set.
    #[must_use]
    pub fn run(&self, priorities: &PriorityMap) -> SimulationOutcome {
        let n = self.jobs.len();
        let n_stages = self.jobs.stage_count();
        assert_eq!(
            priorities.stage_count(),
            n_stages,
            "priority map stage count mismatch"
        );
        assert_eq!(priorities.job_count(), n, "priority map job count mismatch");

        // Dense resource indexing: `index_map[stage][resource] -> r_idx`.
        let resources: Vec<ResourceRef> = self.jobs.pipeline().resource_refs().collect();
        let mut index_map: Vec<Vec<usize>> = vec![Vec::new(); n_stages];
        for (r_idx, r) in resources.iter().enumerate() {
            let row = &mut index_map[r.stage.index()];
            if row.len() <= r.resource.index() {
                row.resize(r.resource.index() + 1, usize::MAX);
            }
            row[r.resource.index()] = r_idx;
        }
        // How many jobs map to each resource — used only to pre-size the
        // ready lists below.
        let mut jobs_at: Vec<usize> = vec![0; resources.len()];
        for job in self.jobs.jobs() {
            for j in 0..n_stages {
                let stage = StageId::new(j);
                jobs_at[index_map[j][job.resource(stage).index()]] += 1;
            }
        }
        let policies: Vec<PreemptionPolicy> = resources
            .iter()
            .map(|r| self.jobs.pipeline().preemption(r.stage))
            .collect();
        // Zero-demand stages are rare; skip the fixed-point pass entirely
        // when no job has one.
        let has_zero_work = self
            .jobs
            .jobs()
            .any(|job| job.processing_times().iter().any(|p| p.is_zero()));
        // Future arrivals, sorted: a job's `ready_at` can only exceed the
        // current time while it waits for its initial arrival, so the next
        // arrival event is a monotone pointer into this list.
        let mut arrival_queue: Vec<(u64, JobId)> = self
            .jobs
            .jobs()
            .map(|j| (j.arrival().as_ticks(), j.id()))
            .collect();
        arrival_queue.sort_unstable_by_key(|&(arrival, id)| (arrival, id.index()));
        let mut next_arrival = 0usize;

        let mut states: Vec<JobState> = self
            .jobs
            .jobs()
            .map(|job| JobState {
                stage: 0,
                remaining: job.processing(StageId::new(0)).as_ticks(),
                ready_at: job.arrival().as_ticks(),
                stage_completions: Vec::with_capacity(n_stages),
                completion: 0,
                done: false,
            })
            .collect();
        // For non-preemptive resources: the job currently holding the
        // resource, if any.
        let mut occupied: Vec<Option<JobId>> = vec![None; resources.len()];
        let mut trace: Vec<ExecutionSlice> = Vec::new();

        let mut time = self
            .jobs
            .jobs()
            .map(|j| j.arrival().as_ticks())
            .min()
            .unwrap_or(0);

        if n == 0 {
            return SimulationOutcome::new(self.jobs, Vec::new(), Vec::new(), Vec::new());
        }

        // Per-resource ready lists, maintained incrementally: a live job
        // appears in exactly one list (the resource of its current stage)
        // from the moment it becomes ready there. Dispatch then scans only
        // genuinely ready jobs instead of every job mapped to a resource.
        let mut ready: Vec<Vec<JobId>> = jobs_at
            .iter()
            .map(|&count| Vec::with_capacity(count))
            .collect();
        while next_arrival < arrival_queue.len() && arrival_queue[next_arrival].0 <= time {
            let (_, job) = arrival_queue[next_arrival];
            ready[index_map[0][self.jobs.job(job).resource(StageId::new(0)).index()]].push(job);
            next_arrival += 1;
        }
        let mut done_count = 0usize;

        let mut running: Vec<Option<JobId>> = vec![None; resources.len()];
        loop {
            if has_zero_work {
                done_count += self.advance_zero_work(
                    &mut states,
                    &mut occupied,
                    &mut ready,
                    time,
                    &index_map,
                );
            }
            if done_count == n {
                break;
            }

            // Select the running job of every resource.
            running.fill(None);
            for (r_idx, ready_here) in ready.iter().enumerate() {
                let policy = policies[r_idx];
                if policy == PreemptionPolicy::NonPreemptive {
                    if let Some(holder) = occupied[r_idx] {
                        let st = &states[holder.index()];
                        if !st.done
                            && st.stage == resources[r_idx].stage.index()
                            && st.remaining > 0
                        {
                            running[r_idx] = Some(holder);
                            continue;
                        }
                        occupied[r_idx] = None;
                    }
                }
                if ready_here.is_empty() {
                    continue;
                }
                // Highest-priority ready job of this resource (ties to the
                // lower id); an inline scan, so dispatch allocates nothing.
                let stage = resources[r_idx].stage;
                let mut candidate: Option<(u64, JobId)> = None;
                for &id in ready_here {
                    debug_assert!({
                        let st = &states[id.index()];
                        !st.done
                            && st.ready_at <= time
                            && st.remaining > 0
                            && st.stage == stage.index()
                    });
                    let priority = priorities.priority(stage, id);
                    if candidate.is_none_or(|(best, best_id)| {
                        (priority, id.index()) < (best, best_id.index())
                    }) {
                        candidate = Some((priority, id));
                    }
                }
                let candidate = candidate.map(|(_, id)| id);
                running[r_idx] = candidate;
                if policy == PreemptionPolicy::NonPreemptive {
                    occupied[r_idx] = candidate;
                }
            }

            // Next event: earliest running-job completion or future arrival.
            let mut next: Option<u64> = None;
            for slot in running.iter().flatten() {
                let finish = time + states[slot.index()].remaining;
                next = Some(next.map_or(finish, |n: u64| n.min(finish)));
            }
            if let Some(&(arrival, _)) = arrival_queue.get(next_arrival) {
                next = Some(next.map_or(arrival, |n: u64| n.min(arrival)));
            }
            let Some(next_time) = next else {
                // No runnable work and no future events: everything left is
                // done (or the loop would have found a candidate).
                break;
            };

            // Execute the selected jobs until the next event.
            let delta = next_time - time;
            if delta > 0 {
                for (r_idx, slot) in running.iter().enumerate() {
                    let Some(job) = *slot else { continue };
                    let st = &mut states[job.index()];
                    st.remaining -= delta;
                    push_slice(
                        &mut trace,
                        ExecutionSlice {
                            resource: resources[r_idx],
                            job,
                            stage: StageId::new(st.stage),
                            start: Time::new(time),
                            end: Time::new(next_time),
                        },
                    );
                }
            }

            // Handle completions at the new time.
            for (r_idx, slot) in running.iter().enumerate() {
                let Some(job) = *slot else { continue };
                if states[job.index()].remaining == 0 {
                    occupied[r_idx] = None;
                    if complete_stage(
                        self.jobs,
                        &mut states,
                        &mut ready,
                        &index_map,
                        job,
                        next_time,
                    ) {
                        done_count += 1;
                    }
                }
            }

            time = next_time;
            // Admit jobs whose arrival has been reached.
            while next_arrival < arrival_queue.len() && arrival_queue[next_arrival].0 <= time {
                let (_, job) = arrival_queue[next_arrival];
                ready[index_map[0][self.jobs.job(job).resource(StageId::new(0)).index()]].push(job);
                next_arrival += 1;
            }
            if done_count == n {
                break;
            }
        }

        let completions = states.iter().map(|s| Time::new(s.completion)).collect();
        let stage_completions = states
            .iter()
            .map(|s| s.stage_completions.iter().map(|&t| Time::new(t)).collect())
            .collect();
        SimulationOutcome::new(self.jobs, completions, stage_completions, trace)
    }

    /// Moves jobs through stages whose demand is zero (they complete
    /// instantly once ready). Returns how many jobs left the pipeline.
    fn advance_zero_work(
        &self,
        states: &mut [JobState],
        occupied: &mut [Option<JobId>],
        ready: &mut [Vec<JobId>],
        time: u64,
        index_map: &[Vec<usize>],
    ) -> usize {
        let mut finished = 0;
        loop {
            let mut progressed = false;
            for i in 0..states.len() {
                let job = JobId::new(i);
                if !states[i].done && states[i].ready_at <= time && states[i].remaining == 0 {
                    // Release the resource if this zero-work job was holding
                    // it (possible on non-preemptive stages).
                    let stage = StageId::new(states[i].stage);
                    let resource = self.jobs.job(job).resource(stage);
                    let r_idx = index_map[stage.index()][resource.index()];
                    if occupied[r_idx] == Some(job) {
                        occupied[r_idx] = None;
                    }
                    if complete_stage(self.jobs, states, ready, index_map, job, time) {
                        finished += 1;
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        finished
    }
}

/// Records the completion of the current stage of `job` at `time`,
/// maintains the per-resource ready lists and advances the job to the next
/// stage (or out of the pipeline). Returns `true` when the job left the
/// pipeline.
fn complete_stage(
    jobs: &JobSet,
    states: &mut [JobState],
    ready: &mut [Vec<JobId>],
    index_map: &[Vec<usize>],
    job: JobId,
    time: u64,
) -> bool {
    let state = &mut states[job.index()];
    let stage = StageId::new(state.stage);
    let r_idx = index_map[state.stage][jobs.job(job).resource(stage).index()];
    if let Some(pos) = ready[r_idx].iter().position(|&x| x == job) {
        ready[r_idx].swap_remove(pos);
    }
    state.stage_completions.push(time);
    state.stage += 1;
    if state.stage == jobs.stage_count() {
        state.done = true;
        state.completion = time;
        true
    } else {
        state.ready_at = time;
        let next_stage = StageId::new(state.stage);
        state.remaining = jobs.job(job).processing(next_stage).as_ticks();
        ready[index_map[state.stage][jobs.job(job).resource(next_stage).index()]].push(job);
        false
    }
}

/// Appends a slice to the trace, merging it with the previous slice when it
/// seamlessly continues the same job on the same resource.
fn push_slice(trace: &mut Vec<ExecutionSlice>, slice: ExecutionSlice) {
    if let Some(last) = trace.last_mut() {
        if last.resource == slice.resource
            && last.job == slice.job
            && last.stage == slice.stage
            && last.end == slice.start
        {
            last.end = slice.end;
            return;
        }
    }
    trace.push(slice);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_model::{JobSetBuilder, PreemptionPolicy};

    fn jid(i: usize) -> JobId {
        JobId::new(i)
    }

    fn single_cpu(policy: PreemptionPolicy, jobs: &[(u64, u64, u64)]) -> JobSet {
        // (arrival, processing, deadline)
        let mut b = JobSetBuilder::new();
        b.stage("cpu", 1, policy);
        for &(a, p, d) in jobs {
            b.job()
                .arrival(Time::new(a))
                .deadline(Time::new(d))
                .stage_time(Time::new(p), 0)
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_job_runs_unimpeded_through_the_pipeline() {
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::NonPreemptive)
            .stage("s2", 1, PreemptionPolicy::Preemptive);
        b.job()
            .arrival(Time::new(3))
            .deadline(Time::new(100))
            .stage_time(Time::new(4), 0)
            .stage_time(Time::new(5), 0)
            .stage_time(Time::new(6), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.delay(jid(0)), Time::new(15));
        assert_eq!(outcome.completion(jid(0)), Time::new(18));
        assert_eq!(
            outcome.stage_completion(jid(0), StageId::new(0)),
            Time::new(7)
        );
        assert_eq!(
            outcome.stage_completion(jid(0), StageId::new(1)),
            Time::new(12)
        );
        assert_eq!(outcome.executed_time(jid(0)), Time::new(15));
        assert!(outcome.all_deadlines_met());
    }

    #[test]
    fn preemptive_cpu_priority_order() {
        // Both arrive at 0; the higher-priority job finishes first.
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(0, 4, 10), (0, 5, 20)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.delay(jid(0)), Time::new(4));
        assert_eq!(outcome.delay(jid(1)), Time::new(9));
        assert_eq!(outcome.makespan(), Time::new(9));
    }

    #[test]
    fn preemption_interrupts_a_lower_priority_job() {
        // Low-priority job starts at 0, high-priority job arrives at 2.
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(2, 3, 10), (0, 6, 20)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        // High priority runs 2..5.
        assert_eq!(outcome.completion(jid(0)), Time::new(5));
        assert_eq!(outcome.delay(jid(0)), Time::new(3));
        // Low priority executes 0..2 and 5..9.
        assert_eq!(outcome.completion(jid(1)), Time::new(9));
        // Its trace has two slices.
        let slices: Vec<_> = outcome.trace().iter().filter(|s| s.job == jid(1)).collect();
        assert_eq!(slices.len(), 2);
    }

    #[test]
    fn non_preemptive_stage_blocks_higher_priority_job() {
        // Same scenario, non-preemptive: the low-priority job runs to
        // completion and blocks the high-priority one.
        let jobs = single_cpu(PreemptionPolicy::NonPreemptive, &[(2, 3, 10), (0, 6, 20)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(1)), Time::new(6));
        assert_eq!(outcome.completion(jid(0)), Time::new(9));
        assert_eq!(outcome.delay(jid(0)), Time::new(7));
        // Each job executes in one contiguous slice.
        assert_eq!(outcome.trace().len(), 2);
    }

    #[test]
    fn pipelined_execution_overlaps_stages() {
        // Two jobs, two single-resource stages, preemptive, same arrival.
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::Preemptive);
        for (p0, p1) in [(3u64, 4u64), (2, 5)] {
            b.job()
                .deadline(Time::new(100))
                .stage_time(Time::new(p0), 0)
                .stage_time(Time::new(p1), 0)
                .add()
                .unwrap();
        }
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        // J0: stage0 0..3, stage1 3..7. J1: stage0 3..5, stage1 7..12.
        assert_eq!(outcome.completion(jid(0)), Time::new(7));
        assert_eq!(outcome.completion(jid(1)), Time::new(12));
        // While J0 executes at stage 1 (3..7), J1 runs at stage 0 (3..5):
        // the pipeline genuinely overlaps.
        let j1_stage0 = outcome
            .trace()
            .iter()
            .find(|s| s.job == jid(1) && s.stage == StageId::new(0))
            .unwrap();
        assert_eq!(j1_stage0.start, Time::new(3));
        assert_eq!(j1_stage0.end, Time::new(5));
    }

    #[test]
    fn per_stage_priorities_can_differ() {
        // J0 beats J1 at stage 0, loses at stage 1.
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::Preemptive);
        for _ in 0..2 {
            b.job()
                .deadline(Time::new(100))
                .stage_time(Time::new(2), 0)
                .stage_time(Time::new(10), 0)
                .add()
                .unwrap();
        }
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_per_stage_orders(
            &jobs,
            &[vec![jid(0), jid(1)], vec![jid(1), jid(0)]],
        );
        let outcome = Simulator::new(&jobs).run(&priorities);
        // Stage 0: J0 0..2, J1 2..4. Stage 1: J0 ready at 2 and runs 2..4,
        // then J1 (higher priority there) preempts at 4 and runs 4..14,
        // J0 finishes 14..22.
        assert_eq!(outcome.completion(jid(1)), Time::new(14));
        assert_eq!(outcome.completion(jid(0)), Time::new(22));
    }

    #[test]
    fn heterogeneous_resources_at_one_stage_run_in_parallel() {
        let mut b = JobSetBuilder::new();
        b.stage("srv", 2, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(10))
            .stage_time(Time::new(6), 0)
            .add()
            .unwrap();
        b.job()
            .deadline(Time::new(10))
            .stage_time(Time::new(7), 1)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(0)), Time::new(6));
        assert_eq!(outcome.completion(jid(1)), Time::new(7));
    }

    #[test]
    fn zero_work_stages_complete_instantly() {
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(10))
            .stage_time(Time::ZERO, 0)
            .stage_time(Time::new(5), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(0)), Time::new(5));
        assert_eq!(
            outcome.stage_completion(jid(0), StageId::new(0)),
            Time::ZERO
        );
    }

    #[test]
    fn deadline_misses_are_reported() {
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(0, 5, 10), (0, 5, 6)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert!(!outcome.all_deadlines_met());
        assert_eq!(outcome.deadline_misses(), vec![jid(1)]);
        assert!(outcome.meets_deadline(jid(0)));
    }

    #[test]
    fn trace_has_no_overlapping_slices_per_resource() {
        let jobs = single_cpu(
            PreemptionPolicy::Preemptive,
            &[(0, 4, 100), (1, 3, 100), (2, 5, 100)],
        );
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(2), jid(1), jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        let trace = outcome.trace();
        for (i, a) in trace.iter().enumerate() {
            for b in &trace[i + 1..] {
                if a.resource == b.resource {
                    assert!(!a.overlaps(b), "overlapping execution on one resource");
                }
            }
        }
        // Work conservation: every job executes exactly its demand.
        for i in 0..3 {
            assert_eq!(
                outcome.executed_time(jid(i)),
                jobs.job(jid(i)).total_processing()
            );
        }
    }

    #[test]
    fn late_arrivals_idle_the_resource() {
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(10, 2, 5)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(0)), Time::new(12));
        assert_eq!(outcome.delay(jid(0)), Time::new(2));
    }
}
