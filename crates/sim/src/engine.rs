//! The discrete-event simulation engine.

use msmr_model::{JobId, JobSet, PreemptionPolicy, ResourceRef, StageId, Time};

use crate::{ExecutionSlice, PriorityMap, SimulationOutcome};

/// Discrete-event simulator for one [`JobSet`].
///
/// The engine is exact for integer-valued processing times: preemptions and
/// dispatch decisions happen only at event instants (arrivals and stage
/// completions), which is sufficient for fixed-priority scheduling because
/// the ready sets only change at those instants.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    jobs: &'a JobSet,
}

/// Per-job mutable simulation state.
#[derive(Debug, Clone)]
struct JobState {
    /// Index of the stage currently being served (`== stage_count` when the
    /// job has left the pipeline).
    stage: usize,
    /// Remaining demand at the current stage.
    remaining: u64,
    /// Time the job became ready at the current stage.
    ready_at: u64,
    /// Absolute completion time of each finished stage.
    stage_completions: Vec<u64>,
    /// Absolute pipeline-exit time (valid once `done`).
    completion: u64,
    done: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given job set.
    #[must_use]
    pub fn new(jobs: &'a JobSet) -> Self {
        Simulator { jobs }
    }

    /// The simulated job set.
    #[must_use]
    pub fn jobs(&self) -> &JobSet {
        self.jobs
    }

    /// Runs the simulation to completion under the given priorities and
    /// returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `priorities` does not cover every job and stage of the job
    /// set.
    #[must_use]
    pub fn run(&self, priorities: &PriorityMap) -> SimulationOutcome {
        let n = self.jobs.len();
        let n_stages = self.jobs.stage_count();
        assert_eq!(
            priorities.stage_count(),
            n_stages,
            "priority map stage count mismatch"
        );
        assert_eq!(priorities.job_count(), n, "priority map job count mismatch");

        // Dense resource indexing.
        let resources: Vec<ResourceRef> = self.jobs.pipeline().resource_refs().collect();
        let resource_index = |r: ResourceRef| -> usize {
            resources
                .iter()
                .position(|&x| x == r)
                .expect("resource of a validated job exists")
        };

        let mut states: Vec<JobState> = self
            .jobs
            .jobs()
            .map(|job| JobState {
                stage: 0,
                remaining: job.processing(StageId::new(0)).as_ticks(),
                ready_at: job.arrival().as_ticks(),
                stage_completions: Vec::with_capacity(n_stages),
                completion: 0,
                done: false,
            })
            .collect();
        // For non-preemptive resources: the job currently holding the
        // resource, if any.
        let mut occupied: Vec<Option<JobId>> = vec![None; resources.len()];
        let mut trace: Vec<ExecutionSlice> = Vec::new();

        let mut time = self
            .jobs
            .jobs()
            .map(|j| j.arrival().as_ticks())
            .min()
            .unwrap_or(0);

        if n == 0 {
            return SimulationOutcome::new(self.jobs, Vec::new(), Vec::new(), Vec::new());
        }

        loop {
            self.advance_zero_work(&mut states, &mut occupied, time, &resources, resource_index);
            if states.iter().all(|s| s.done) {
                break;
            }

            // Select the running job of every resource.
            let mut running: Vec<Option<JobId>> = vec![None; resources.len()];
            for (r_idx, &resource) in resources.iter().enumerate() {
                let policy = self.jobs.pipeline().preemption(resource.stage);
                if policy == PreemptionPolicy::NonPreemptive {
                    if let Some(holder) = occupied[r_idx] {
                        let st = &states[holder.index()];
                        if !st.done && st.stage == resource.stage.index() && st.remaining > 0 {
                            running[r_idx] = Some(holder);
                            continue;
                        }
                        occupied[r_idx] = None;
                    }
                }
                let candidate = self
                    .ready_candidates(&states, time, resource)
                    .into_iter()
                    .min_by_key(|&id| (priorities.priority(resource.stage, id), id.index()));
                running[r_idx] = candidate;
                if policy == PreemptionPolicy::NonPreemptive {
                    occupied[r_idx] = candidate;
                }
            }

            // Next event: earliest running-job completion or future arrival.
            let mut next: Option<u64> = None;
            for (r_idx, slot) in running.iter().enumerate() {
                if let Some(job) = slot {
                    let _ = r_idx;
                    let finish = time + states[job.index()].remaining;
                    next = Some(next.map_or(finish, |n: u64| n.min(finish)));
                }
            }
            for (idx, st) in states.iter().enumerate() {
                let _ = idx;
                if !st.done && st.ready_at > time {
                    next = Some(next.map_or(st.ready_at, |n: u64| n.min(st.ready_at)));
                }
            }
            let Some(next_time) = next else {
                // No runnable work and no future events: everything left is
                // done (or the loop would have found a candidate).
                break;
            };

            // Execute the selected jobs until the next event.
            let delta = next_time - time;
            if delta > 0 {
                for (r_idx, slot) in running.iter().enumerate() {
                    let Some(job) = *slot else { continue };
                    let st = &mut states[job.index()];
                    st.remaining -= delta;
                    push_slice(
                        &mut trace,
                        ExecutionSlice {
                            resource: resources[r_idx],
                            job,
                            stage: StageId::new(st.stage),
                            start: Time::new(time),
                            end: Time::new(next_time),
                        },
                    );
                }
            }

            // Handle completions at the new time.
            for (r_idx, slot) in running.iter().enumerate() {
                let Some(job) = *slot else { continue };
                if states[job.index()].remaining == 0 {
                    occupied[r_idx] = None;
                    self.complete_stage(&mut states[job.index()], job, next_time);
                }
            }

            time = next_time;
            if states.iter().all(|s| s.done) {
                break;
            }
        }

        let completions = states.iter().map(|s| Time::new(s.completion)).collect();
        let stage_completions = states
            .iter()
            .map(|s| s.stage_completions.iter().map(|&t| Time::new(t)).collect())
            .collect();
        SimulationOutcome::new(self.jobs, completions, stage_completions, trace)
    }

    /// Jobs ready to execute on `resource` at `time`.
    fn ready_candidates(
        &self,
        states: &[JobState],
        time: u64,
        resource: ResourceRef,
    ) -> Vec<JobId> {
        self.jobs
            .jobs()
            .filter(|job| {
                let st = &states[job.id().index()];
                !st.done
                    && st.ready_at <= time
                    && st.remaining > 0
                    && st.stage == resource.stage.index()
                    && job.resource(resource.stage) == resource.resource
            })
            .map(|job| job.id())
            .collect()
    }

    /// Moves jobs through stages whose demand is zero (they complete
    /// instantly once ready).
    fn advance_zero_work(
        &self,
        states: &mut [JobState],
        occupied: &mut [Option<JobId>],
        time: u64,
        resources: &[ResourceRef],
        resource_index: impl Fn(ResourceRef) -> usize,
    ) {
        loop {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // parallel mutation of `states` and `occupied`
            for i in 0..states.len() {
                let job = JobId::new(i);
                if !states[i].done && states[i].ready_at <= time && states[i].remaining == 0 {
                    // Release the resource if this zero-work job was holding
                    // it (possible on non-preemptive stages).
                    let stage = StageId::new(states[i].stage);
                    let r = ResourceRef::new(stage, self.jobs.job(job).resource(stage));
                    let r_idx = resource_index(r);
                    if occupied[r_idx] == Some(job) {
                        occupied[r_idx] = None;
                    }
                    let _ = &resources;
                    self.complete_stage(&mut states[i], job, time);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Records the completion of the current stage of `job` at `time` and
    /// advances it to the next stage (or out of the pipeline).
    fn complete_stage(&self, state: &mut JobState, job: JobId, time: u64) {
        state.stage_completions.push(time);
        state.stage += 1;
        if state.stage == self.jobs.stage_count() {
            state.done = true;
            state.completion = time;
        } else {
            state.ready_at = time;
            state.remaining = self
                .jobs
                .job(job)
                .processing(StageId::new(state.stage))
                .as_ticks();
        }
    }
}

/// Appends a slice to the trace, merging it with the previous slice when it
/// seamlessly continues the same job on the same resource.
fn push_slice(trace: &mut Vec<ExecutionSlice>, slice: ExecutionSlice) {
    if let Some(last) = trace.last_mut() {
        if last.resource == slice.resource
            && last.job == slice.job
            && last.stage == slice.stage
            && last.end == slice.start
        {
            last.end = slice.end;
            return;
        }
    }
    trace.push(slice);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_model::{JobSetBuilder, PreemptionPolicy};

    fn jid(i: usize) -> JobId {
        JobId::new(i)
    }

    fn single_cpu(policy: PreemptionPolicy, jobs: &[(u64, u64, u64)]) -> JobSet {
        // (arrival, processing, deadline)
        let mut b = JobSetBuilder::new();
        b.stage("cpu", 1, policy);
        for &(a, p, d) in jobs {
            b.job()
                .arrival(Time::new(a))
                .deadline(Time::new(d))
                .stage_time(Time::new(p), 0)
                .add()
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_job_runs_unimpeded_through_the_pipeline() {
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::NonPreemptive)
            .stage("s2", 1, PreemptionPolicy::Preemptive);
        b.job()
            .arrival(Time::new(3))
            .deadline(Time::new(100))
            .stage_time(Time::new(4), 0)
            .stage_time(Time::new(5), 0)
            .stage_time(Time::new(6), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.delay(jid(0)), Time::new(15));
        assert_eq!(outcome.completion(jid(0)), Time::new(18));
        assert_eq!(
            outcome.stage_completion(jid(0), StageId::new(0)),
            Time::new(7)
        );
        assert_eq!(
            outcome.stage_completion(jid(0), StageId::new(1)),
            Time::new(12)
        );
        assert_eq!(outcome.executed_time(jid(0)), Time::new(15));
        assert!(outcome.all_deadlines_met());
    }

    #[test]
    fn preemptive_cpu_priority_order() {
        // Both arrive at 0; the higher-priority job finishes first.
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(0, 4, 10), (0, 5, 20)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.delay(jid(0)), Time::new(4));
        assert_eq!(outcome.delay(jid(1)), Time::new(9));
        assert_eq!(outcome.makespan(), Time::new(9));
    }

    #[test]
    fn preemption_interrupts_a_lower_priority_job() {
        // Low-priority job starts at 0, high-priority job arrives at 2.
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(2, 3, 10), (0, 6, 20)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        // High priority runs 2..5.
        assert_eq!(outcome.completion(jid(0)), Time::new(5));
        assert_eq!(outcome.delay(jid(0)), Time::new(3));
        // Low priority executes 0..2 and 5..9.
        assert_eq!(outcome.completion(jid(1)), Time::new(9));
        // Its trace has two slices.
        let slices: Vec<_> = outcome.trace().iter().filter(|s| s.job == jid(1)).collect();
        assert_eq!(slices.len(), 2);
    }

    #[test]
    fn non_preemptive_stage_blocks_higher_priority_job() {
        // Same scenario, non-preemptive: the low-priority job runs to
        // completion and blocks the high-priority one.
        let jobs = single_cpu(PreemptionPolicy::NonPreemptive, &[(2, 3, 10), (0, 6, 20)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(1)), Time::new(6));
        assert_eq!(outcome.completion(jid(0)), Time::new(9));
        assert_eq!(outcome.delay(jid(0)), Time::new(7));
        // Each job executes in one contiguous slice.
        assert_eq!(outcome.trace().len(), 2);
    }

    #[test]
    fn pipelined_execution_overlaps_stages() {
        // Two jobs, two single-resource stages, preemptive, same arrival.
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::Preemptive);
        for (p0, p1) in [(3u64, 4u64), (2, 5)] {
            b.job()
                .deadline(Time::new(100))
                .stage_time(Time::new(p0), 0)
                .stage_time(Time::new(p1), 0)
                .add()
                .unwrap();
        }
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        // J0: stage0 0..3, stage1 3..7. J1: stage0 3..5, stage1 7..12.
        assert_eq!(outcome.completion(jid(0)), Time::new(7));
        assert_eq!(outcome.completion(jid(1)), Time::new(12));
        // While J0 executes at stage 1 (3..7), J1 runs at stage 0 (3..5):
        // the pipeline genuinely overlaps.
        let j1_stage0 = outcome
            .trace()
            .iter()
            .find(|s| s.job == jid(1) && s.stage == StageId::new(0))
            .unwrap();
        assert_eq!(j1_stage0.start, Time::new(3));
        assert_eq!(j1_stage0.end, Time::new(5));
    }

    #[test]
    fn per_stage_priorities_can_differ() {
        // J0 beats J1 at stage 0, loses at stage 1.
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::Preemptive);
        for _ in 0..2 {
            b.job()
                .deadline(Time::new(100))
                .stage_time(Time::new(2), 0)
                .stage_time(Time::new(10), 0)
                .add()
                .unwrap();
        }
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_per_stage_orders(
            &jobs,
            &[vec![jid(0), jid(1)], vec![jid(1), jid(0)]],
        );
        let outcome = Simulator::new(&jobs).run(&priorities);
        // Stage 0: J0 0..2, J1 2..4. Stage 1: J0 ready at 2 and runs 2..4,
        // then J1 (higher priority there) preempts at 4 and runs 4..14,
        // J0 finishes 14..22.
        assert_eq!(outcome.completion(jid(1)), Time::new(14));
        assert_eq!(outcome.completion(jid(0)), Time::new(22));
    }

    #[test]
    fn heterogeneous_resources_at_one_stage_run_in_parallel() {
        let mut b = JobSetBuilder::new();
        b.stage("srv", 2, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(10))
            .stage_time(Time::new(6), 0)
            .add()
            .unwrap();
        b.job()
            .deadline(Time::new(10))
            .stage_time(Time::new(7), 1)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(0)), Time::new(6));
        assert_eq!(outcome.completion(jid(1)), Time::new(7));
    }

    #[test]
    fn zero_work_stages_complete_instantly() {
        let mut b = JobSetBuilder::new();
        b.stage("s0", 1, PreemptionPolicy::Preemptive)
            .stage("s1", 1, PreemptionPolicy::Preemptive);
        b.job()
            .deadline(Time::new(10))
            .stage_time(Time::ZERO, 0)
            .stage_time(Time::new(5), 0)
            .add()
            .unwrap();
        let jobs = b.build().unwrap();
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(0)), Time::new(5));
        assert_eq!(
            outcome.stage_completion(jid(0), StageId::new(0)),
            Time::ZERO
        );
    }

    #[test]
    fn deadline_misses_are_reported() {
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(0, 5, 10), (0, 5, 6)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0), jid(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert!(!outcome.all_deadlines_met());
        assert_eq!(outcome.deadline_misses(), vec![jid(1)]);
        assert!(outcome.meets_deadline(jid(0)));
    }

    #[test]
    fn trace_has_no_overlapping_slices_per_resource() {
        let jobs = single_cpu(
            PreemptionPolicy::Preemptive,
            &[(0, 4, 100), (1, 3, 100), (2, 5, 100)],
        );
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(2), jid(1), jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        let trace = outcome.trace();
        for (i, a) in trace.iter().enumerate() {
            for b in &trace[i + 1..] {
                if a.resource == b.resource {
                    assert!(!a.overlaps(b), "overlapping execution on one resource");
                }
            }
        }
        // Work conservation: every job executes exactly its demand.
        for i in 0..3 {
            assert_eq!(
                outcome.executed_time(jid(i)),
                jobs.job(jid(i)).total_processing()
            );
        }
    }

    #[test]
    fn late_arrivals_idle_the_resource() {
        let jobs = single_cpu(PreemptionPolicy::Preemptive, &[(10, 2, 5)]);
        let priorities = PriorityMap::from_global_order(&jobs, &[jid(0)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert_eq!(outcome.completion(jid(0)), Time::new(12));
        assert_eq!(outcome.delay(jid(0)), Time::new(2));
    }
}
