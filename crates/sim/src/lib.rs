//! Discrete-event simulator for fixed-priority multi-stage multi-resource
//! (MSMR) pipelines.
//!
//! The simulator executes a [`JobSet`](msmr_model::JobSet) under a
//! per-stage fixed-priority assignment ([`PriorityMap`]) and reports the
//! exact completion time of every job at every stage
//! ([`SimulationOutcome`]). Each stage honours its
//! [`PreemptionPolicy`](msmr_model::PreemptionPolicy): preemptive resources
//! always run the highest-priority ready job, non-preemptive resources run
//! a started job to completion of its stage demand.
//!
//! Inside the workspace the simulator serves two purposes:
//!
//! * it *is* the DCMP baseline of the paper's evaluation (§VI-A), which
//!   decomposes end-to-end deadlines into per-stage virtual deadlines and
//!   then simulates deadline-monotonic execution, and
//! * it provides an executable ground truth against which the delay
//!   composition bounds of `msmr-dca` are validated (simulated delay never
//!   exceeds the analytical bound for priority orderings).
//!
//! # Example
//!
//! ```
//! use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};
//! use msmr_sim::{PriorityMap, Simulator};
//!
//! # fn main() -> Result<(), msmr_model::ModelError> {
//! let mut b = JobSetBuilder::new();
//! b.stage("cpu", 1, PreemptionPolicy::Preemptive);
//! b.job()
//!     .deadline(Time::from_millis(10))
//!     .stage_time(Time::from_millis(4), 0)
//!     .add()?;
//! b.job()
//!     .deadline(Time::from_millis(20))
//!     .stage_time(Time::from_millis(5), 0)
//!     .add()?;
//! let jobs = b.build()?;
//!
//! // Job 0 gets the higher priority.
//! let priorities = PriorityMap::from_global_order(&jobs, &[0.into(), 1.into()]);
//! let outcome = Simulator::new(&jobs).run(&priorities);
//! assert_eq!(outcome.delay(0.into()), Time::from_millis(4));
//! assert_eq!(outcome.delay(1.into()), Time::from_millis(9));
//! assert!(outcome.all_deadlines_met());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod outcome;
mod priority;
mod render;

pub use engine::Simulator;
pub use outcome::{ExecutionSlice, SimulationOutcome};
pub use priority::PriorityMap;
pub use render::render_gantt;
