//! Textual rendering of execution traces (ASCII Gantt charts).

use std::fmt::Write as _;

use msmr_model::{JobSet, ResourceRef, Time};

use crate::SimulationOutcome;

/// Renders the execution trace of a simulation as an ASCII Gantt chart,
/// one row per resource, one column per `tick_width` time units.
///
/// Intended for debugging and for the examples; the output is stable and
/// deterministic, so it can also be asserted against in tests.
///
/// # Example
///
/// ```
/// use msmr_model::{JobSetBuilder, PreemptionPolicy, Time};
/// use msmr_sim::{render_gantt, PriorityMap, Simulator};
///
/// # fn main() -> Result<(), msmr_model::ModelError> {
/// let mut b = JobSetBuilder::new();
/// b.stage("cpu", 1, PreemptionPolicy::Preemptive);
/// b.job().deadline(Time::new(10)).stage_time(Time::new(2), 0).add()?;
/// b.job().deadline(Time::new(10)).stage_time(Time::new(3), 0).add()?;
/// let jobs = b.build()?;
/// let outcome = Simulator::new(&jobs)
///     .run(&PriorityMap::from_global_order(&jobs, &[0.into(), 1.into()]));
/// let chart = render_gantt(&jobs, &outcome, 1);
/// assert!(chart.contains("S0/R0"));
/// assert!(chart.contains("00111"));
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `tick_width` is zero.
#[must_use]
pub fn render_gantt(jobs: &JobSet, outcome: &SimulationOutcome, tick_width: u64) -> String {
    assert!(tick_width > 0, "tick width must be positive");
    let makespan = outcome.makespan();
    let columns = makespan.as_ticks().div_ceil(tick_width);
    let resources: Vec<ResourceRef> = jobs.pipeline().resource_refs().collect();

    let mut output = String::new();
    let _ = writeln!(
        output,
        "time 0..{} ({} per column)",
        makespan,
        Time::new(tick_width)
    );
    for resource in resources {
        let mut row = vec!['.'; columns as usize];
        for slice in outcome.trace().iter().filter(|s| s.resource == resource) {
            let start = slice.start.as_ticks() / tick_width;
            let end = slice.end.as_ticks().div_ceil(tick_width);
            for cell in row.iter_mut().take(end as usize).skip(start as usize) {
                // Single-character job label: digits for the first ten
                // jobs, letters afterwards.
                let idx = slice.job.index();
                *cell = if idx < 10 {
                    char::from(b'0' + idx as u8)
                } else {
                    char::from(b'a' + ((idx - 10) % 26) as u8)
                };
            }
        }
        let _ = writeln!(output, "{resource:>8} |{}|", row.iter().collect::<String>());
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PriorityMap, Simulator};
    use msmr_model::{JobId, JobSetBuilder, PreemptionPolicy};

    fn two_stage_jobs() -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("net", 1, PreemptionPolicy::Preemptive).stage(
            "cpu",
            2,
            PreemptionPolicy::Preemptive,
        );
        b.job()
            .deadline(Time::new(30))
            .stage_time(Time::new(2), 0)
            .stage_time(Time::new(4), 0)
            .add()
            .unwrap();
        b.job()
            .deadline(Time::new(30))
            .stage_time(Time::new(3), 0)
            .stage_time(Time::new(5), 1)
            .add()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn gantt_covers_every_resource_and_job() {
        let jobs = two_stage_jobs();
        let priorities = PriorityMap::from_global_order(&jobs, &[JobId::new(0), JobId::new(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        let chart = render_gantt(&jobs, &outcome, 1);
        // One header line plus one line per resource (1 + 2).
        assert_eq!(chart.lines().count(), 1 + 3);
        assert!(chart.contains("S0/R0"));
        assert!(chart.contains("S1/R1"));
        // Both jobs appear somewhere in the chart.
        assert!(chart.contains('0'));
        assert!(chart.contains('1'));
    }

    #[test]
    fn coarser_ticks_shorten_the_rows() {
        let jobs = two_stage_jobs();
        let priorities = PriorityMap::from_global_order(&jobs, &[JobId::new(0), JobId::new(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        let fine = render_gantt(&jobs, &outcome, 1);
        let coarse = render_gantt(&jobs, &outcome, 4);
        assert!(coarse.len() < fine.len());
    }

    #[test]
    #[should_panic(expected = "tick width")]
    fn zero_tick_width_panics() {
        let jobs = two_stage_jobs();
        let priorities = PriorityMap::from_global_order(&jobs, &[JobId::new(0), JobId::new(1)]);
        let outcome = Simulator::new(&jobs).run(&priorities);
        let _ = render_gantt(&jobs, &outcome, 0);
    }
}
