//! The flight recorder: a fixed-capacity ring of recent structured
//! events, kept so the post-mortem exists *before* anything went wrong.
//!
//! Counters say how often something happened; the flight recorder says
//! what happened *last*, in order. Every seam that already feeds the
//! [`crate::StatsRegistry`] counters (`record_admit`, `record_overload`,
//! TTL evictions, snapshot quarantines, seq dedupes, client attach /
//! detach) also appends one [`Event`] here. Recording is one short
//! mutex push into a bounded ring — no allocation beyond the event
//! itself, no I/O — so it is safe on the admission hot path; when the
//! ring is full the oldest event is overwritten (the recorder remembers
//! how many were dropped).
//!
//! The recorded history is exported as a [`FlightDump`]: seq-ordered
//! (oldest first), serde-serializable JSON. Three surfaces dump it:
//! the side-channel `flight` command, the daemon's SIGTERM path
//! (`--flight-out`), and the daemon's panic hook — so a crashed or
//! killed run still leaves a readable record of its last moments.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Default event capacity of the recorder ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// What happened. Unit variants only, so the wire form is a plain
/// string (`"Admit"`) and adding a payload later is a wire change the
/// reader will reject loudly instead of misparse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An admission was accepted.
    Admit,
    /// An admission was rejected.
    Reject,
    /// An admitted job was withdrawn.
    Withdraw,
    /// A session (re)submission replaced the job set.
    Submit,
    /// A request bounced with a typed `Overload` frame.
    Overload,
    /// The TTL reaper evicted an idle session.
    Eviction,
    /// A session snapshot was written to the snapshot store.
    SnapshotWrite,
    /// A corrupt snapshot file was quarantined at restore time.
    SnapshotQuarantine,
    /// A replayed seq named a recorded decision with a different op.
    SeqConflict,
    /// A replayed op was acknowledged by seq-dedupe without re-applying.
    Dedup,
    /// A client attached to the main endpoint.
    ClientAttach,
    /// A client detached from the main endpoint.
    ClientDetach,
}

/// One recorded event.
///
/// `session` and `op_seq` are filled when the recording seam knows them
/// (the cluster store labels its sessions; the session layer knows its
/// own decision seq) and `None` otherwise, so the classic single-session
/// daemon records unlabeled events through the same seams.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Recorder-assigned monotonic sequence number (1-based).
    pub seq: u64,
    /// Microseconds since the recorder was created (daemon boot).
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Session name, when the seam knows it.
    pub session: Option<String>,
    /// The session-level decision seq of the op, when the seam knows it.
    pub op_seq: Option<u64>,
}

/// A serializable export of the recorder's current contents:
/// seq-ordered events (oldest first) plus the bookkeeping needed to
/// read a truncated history honestly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Ring capacity the recorder ran with.
    pub capacity: u64,
    /// Events ever recorded (monotonic).
    pub recorded: u64,
    /// Events overwritten by newer ones (`recorded - events.len()`).
    pub dropped: u64,
    /// The surviving events, seq-ordered oldest first.
    pub events: Vec<Event>,
}

impl FlightDump {
    /// Events of one kind still in the dump.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.events.iter().filter(|e| e.kind == kind).count() as u64
    }
}

/// The fixed-capacity, overwrite-oldest event ring.
///
/// All state lives behind one mutex; the critical section is a seq
/// increment and a bounded `VecDeque` push, so contention is comparable
/// to the registry's per-verdict solver-table lock.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    inner: Mutex<FlightInner>,
}

#[derive(Debug)]
struct FlightInner {
    next_seq: u64,
    ring: VecDeque<Event>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Creates a recorder with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Creates a recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            start: Instant::now(),
            capacity,
            inner: Mutex::new(FlightInner {
                next_seq: 0,
                ring: VecDeque::with_capacity(capacity),
            }),
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one event, overwriting the oldest when full.
    pub fn record(&self, kind: EventKind, session: Option<&str>, op_seq: Option<u64>) {
        let ts_us = self.start.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().expect("flight recorder lock");
        inner.next_seq += 1;
        let event = Event {
            seq: inner.next_seq,
            ts_us,
            kind,
            session: session.map(str::to_string),
            op_seq,
        };
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
    }

    /// Events ever recorded (monotonic; not capped by the ring).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").next_seq
    }

    /// Point-in-time export of the surviving events, oldest first.
    #[must_use]
    pub fn dump(&self) -> FlightDump {
        let inner = self.inner.lock().expect("flight recorder lock");
        let events: Vec<Event> = inner.ring.iter().cloned().collect();
        FlightDump {
            capacity: self.capacity as u64,
            recorded: inner.next_seq,
            dropped: inner.next_seq - events.len() as u64,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_seq_ordered_and_timestamped() {
        let recorder = FlightRecorder::new();
        recorder.record(EventKind::ClientAttach, None, None);
        recorder.record(EventKind::Admit, Some("tenant-a"), Some(1));
        recorder.record(EventKind::Reject, Some("tenant-a"), Some(2));
        let dump = recorder.dump();
        assert_eq!(dump.recorded, 3);
        assert_eq!(dump.dropped, 0);
        assert_eq!(dump.capacity, DEFAULT_FLIGHT_CAPACITY as u64);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(dump.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(dump.events[1].session.as_deref(), Some("tenant-a"));
        assert_eq!(dump.events[1].op_seq, Some(1));
        assert_eq!(dump.count(EventKind::Admit), 1);
        assert_eq!(dump.count(EventKind::Eviction), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let recorder = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            recorder.record(EventKind::Admit, None, Some(i + 1));
        }
        let dump = recorder.dump();
        assert_eq!(dump.capacity, 4);
        assert_eq!(dump.recorded, 10);
        assert_eq!(dump.dropped, 6);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest events were overwritten");
    }

    #[test]
    fn dump_round_trips_through_json() {
        let recorder = FlightRecorder::with_capacity(8);
        recorder.record(EventKind::SnapshotQuarantine, Some("tenant-x"), None);
        recorder.record(EventKind::Dedup, Some("tenant-y"), Some(7));
        let dump = recorder.dump();
        let json = serde_json::to_string(&dump).expect("dumps serialize");
        let parsed: FlightDump = serde_json::from_str(&json).expect("dumps parse");
        assert_eq!(parsed, dump);
    }

    #[test]
    fn events_tolerate_unknown_fields_for_forward_compat() {
        // A newer daemon may append fields; an older reader must still
        // parse the ones it knows. The vendored derive reads only the
        // declared keys, which this test pins.
        let json = r#"{"seq":3,"ts_us":99,"kind":"Overload","session":"t",
                       "op_seq":null,"future_field":{"nested":[1,2]}}"#;
        let event: Event = serde_json::from_str(json).expect("unknown fields are ignored");
        assert_eq!(event.seq, 3);
        assert_eq!(event.kind, EventKind::Overload);
        assert_eq!(event.session.as_deref(), Some("t"));
        assert_eq!(event.op_seq, None);
    }

    #[test]
    fn concurrent_recording_never_loses_events() {
        let recorder = std::sync::Arc::new(FlightRecorder::with_capacity(4096));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let recorder = std::sync::Arc::clone(&recorder);
                scope.spawn(move || {
                    for i in 0..250u64 {
                        recorder.record(EventKind::Admit, None, Some(i));
                    }
                });
            }
        });
        let dump = recorder.dump();
        assert_eq!(dump.recorded, 1000);
        assert_eq!(dump.dropped, 0);
        // Seqs are unique and strictly increasing in the dump.
        assert!(dump.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
