//! Streaming stats deltas for the `--stats-addr` side channel.
//!
//! A polling dashboard re-serializes the entire [`StatsSnapshot`] per
//! poll. The streaming mode instead sends one full snapshot as a
//! baseline and then periodic [`StatsDelta`] frames, each carrying only
//! what moved: counter *increments*, absolute gauge values, per-op
//! sample and per-bucket histogram *increments*, per-solver row
//! increments, and the session table as a wholesale replacement (rows
//! are tiny and churn structurally).
//!
//! The merge contract — pinned by proptest in `tests/delta_props.rs` —
//! is exact reconstruction: for snapshots `S₀ … Sₙ` taken from one
//! daemon, folding `apply` over the deltas `diff(Sᵢ, Sᵢ₊₁)` reproduces
//! every intermediate snapshot *byte-for-byte* (`S₀ ⊕ d₁ ⊕ … ⊕ dᵢ ≡
//! Sᵢ`), because every incremental field in the model is monotonic
//! (counters, histogram buckets, solver work tallies) and everything
//! non-monotonic (gauges, ring percentiles, session rows) travels as
//! absolute values.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::model::{OpLatency, SessionRow, SolverRow, StatsCounters, StatsGauges, StatsSnapshot};

/// Per-op latency delta: increments for the monotonic parts, absolute
/// values for the windowed percentiles (which move non-monotonically as
/// the ring slides).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpLatencyDelta {
    /// New samples since the previous frame.
    pub samples: u64,
    /// Absolute ring p50, microseconds.
    pub p50_us: f64,
    /// Absolute ring p99, microseconds.
    pub p99_us: f64,
    /// Per-bucket histogram increments, indexed like
    /// [`OpLatency::histo_buckets`] and trimmed to the *new* trimmed
    /// length (bucket counts only grow, so the trimmed prefix only
    /// extends).
    pub histo_buckets: Vec<u64>,
    /// Absolute histogram p50, microseconds.
    pub histo_p50_us: f64,
    /// Absolute histogram p99, microseconds.
    pub histo_p99_us: f64,
}

/// One frame of the streaming side channel.
///
/// `counters`, `ops` and `solvers` carry increments (reusing
/// [`StatsCounters`] / [`SolverRow`] — every field is a monotonic
/// tally, so the increment has the same shape as the total); `gauges`
/// and `sessions` carry absolute state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsDelta {
    /// Counter increments since the previous frame.
    pub counters: StatsCounters,
    /// Absolute gauge values at this frame.
    pub gauges: StatsGauges,
    /// Per-op latency deltas (every op present in the new snapshot).
    pub ops: BTreeMap<String, OpLatencyDelta>,
    /// Per-solver row increments (every solver present in the new
    /// snapshot; a solver's first appearance is its full row).
    pub solvers: BTreeMap<String, SolverRow>,
    /// The session table at this frame, replacing the previous one.
    pub sessions: Vec<SessionRow>,
}

impl StatsDelta {
    /// Whether this frame carries no monotonic progress: no counter,
    /// sample or solver increments. Gauges and sessions may still have
    /// moved; callers using this as a quiescence signal should compare
    /// the folded snapshot against a fresh one.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.counters == StatsCounters::default()
            && self.ops.values().all(|op| op.samples == 0)
            && self
                .solvers
                .values()
                .all(|row| *row == SolverRow::default())
    }
}

fn diff_counters(prev: &StatsCounters, next: &StatsCounters) -> StatsCounters {
    StatsCounters {
        admits: next.admits.saturating_sub(prev.admits),
        rejects: next.rejects.saturating_sub(prev.rejects),
        withdraws: next.withdraws.saturating_sub(prev.withdraws),
        submits: next.submits.saturating_sub(prev.submits),
        warm_decides: next.warm_decides.saturating_sub(prev.warm_decides),
        cold_decides: next.cold_decides.saturating_sub(prev.cold_decides),
        implied_decides: next.implied_decides.saturating_sub(prev.implied_decides),
        overloads: next.overloads.saturating_sub(prev.overloads),
        evictions: next.evictions.saturating_sub(prev.evictions),
        snapshot_writes: next.snapshot_writes.saturating_sub(prev.snapshot_writes),
        trace_spans: next.trace_spans.saturating_sub(prev.trace_spans),
        snapshot_quarantined: next
            .snapshot_quarantined
            .saturating_sub(prev.snapshot_quarantined),
        deduped_ops: next.deduped_ops.saturating_sub(prev.deduped_ops),
    }
}

fn add_counters(base: &StatsCounters, inc: &StatsCounters) -> StatsCounters {
    StatsCounters {
        admits: base.admits + inc.admits,
        rejects: base.rejects + inc.rejects,
        withdraws: base.withdraws + inc.withdraws,
        submits: base.submits + inc.submits,
        warm_decides: base.warm_decides + inc.warm_decides,
        cold_decides: base.cold_decides + inc.cold_decides,
        implied_decides: base.implied_decides + inc.implied_decides,
        overloads: base.overloads + inc.overloads,
        evictions: base.evictions + inc.evictions,
        snapshot_writes: base.snapshot_writes + inc.snapshot_writes,
        trace_spans: base.trace_spans + inc.trace_spans,
        snapshot_quarantined: base.snapshot_quarantined + inc.snapshot_quarantined,
        deduped_ops: base.deduped_ops + inc.deduped_ops,
    }
}

fn diff_solver(prev: &SolverRow, next: &SolverRow) -> SolverRow {
    SolverRow {
        verdicts: next.verdicts.saturating_sub(prev.verdicts),
        accepted: next.accepted.saturating_sub(prev.accepted),
        warm: next.warm.saturating_sub(prev.warm),
        cold: next.cold.saturating_sub(prev.cold),
        implied: next.implied.saturating_sub(prev.implied),
        sdca_calls: next.sdca_calls.saturating_sub(prev.sdca_calls),
        nodes_explored: next.nodes_explored.saturating_sub(prev.nodes_explored),
        elapsed_micros: next.elapsed_micros.saturating_sub(prev.elapsed_micros),
    }
}

fn add_solver(base: &SolverRow, inc: &SolverRow) -> SolverRow {
    SolverRow {
        verdicts: base.verdicts + inc.verdicts,
        accepted: base.accepted + inc.accepted,
        warm: base.warm + inc.warm,
        cold: base.cold + inc.cold,
        implied: base.implied + inc.implied,
        sdca_calls: base.sdca_calls + inc.sdca_calls,
        nodes_explored: base.nodes_explored + inc.nodes_explored,
        elapsed_micros: base.elapsed_micros + inc.elapsed_micros,
    }
}

fn diff_buckets(prev: &[u64], next: &[u64]) -> Vec<u64> {
    next.iter()
        .enumerate()
        .map(|(i, &n)| n.saturating_sub(prev.get(i).copied().unwrap_or(0)))
        .collect()
}

fn add_buckets(base: &[u64], inc: &[u64]) -> Vec<u64> {
    let len = base.len().max(inc.len());
    (0..len)
        .map(|i| base.get(i).copied().unwrap_or(0) + inc.get(i).copied().unwrap_or(0))
        .collect()
}

/// Computes the delta frame turning `prev` into `next`.
#[must_use]
pub fn diff(prev: &StatsSnapshot, next: &StatsSnapshot) -> StatsDelta {
    let empty_op = OpLatency::default();
    let ops = next
        .ops
        .iter()
        .map(|(name, op)| {
            let before = prev.ops.get(name).unwrap_or(&empty_op);
            (
                name.clone(),
                OpLatencyDelta {
                    samples: op.samples.saturating_sub(before.samples),
                    p50_us: op.p50_us,
                    p99_us: op.p99_us,
                    histo_buckets: diff_buckets(&before.histo_buckets, &op.histo_buckets),
                    histo_p50_us: op.histo_p50_us,
                    histo_p99_us: op.histo_p99_us,
                },
            )
        })
        .collect();
    let empty_row = SolverRow::default();
    let solvers = next
        .solvers
        .iter()
        .map(|(name, row)| {
            let before = prev.solvers.get(name).unwrap_or(&empty_row);
            (name.clone(), diff_solver(before, row))
        })
        .collect();
    StatsDelta {
        counters: diff_counters(&prev.counters, &next.counters),
        gauges: next.gauges.clone(),
        ops,
        solvers,
        sessions: next.sessions.clone(),
    }
}

/// Applies one delta frame to a base snapshot, producing the next one.
///
/// With `delta = diff(base, next)` over snapshots of one live daemon,
/// the result equals `next` exactly — the merge contract the proptest
/// pins. Ops and solvers absent from the frame are carried over
/// unchanged (maps never shrink in the model).
#[must_use]
pub fn apply(base: &StatsSnapshot, delta: &StatsDelta) -> StatsSnapshot {
    let mut ops = base.ops.clone();
    for (name, inc) in &delta.ops {
        let entry = ops.entry(name.clone()).or_default();
        entry.samples += inc.samples;
        entry.p50_us = inc.p50_us;
        entry.p99_us = inc.p99_us;
        entry.histo_buckets = add_buckets(&entry.histo_buckets, &inc.histo_buckets);
        entry.histo_p50_us = inc.histo_p50_us;
        entry.histo_p99_us = inc.histo_p99_us;
    }
    let mut solvers = base.solvers.clone();
    for (name, inc) in &delta.solvers {
        let entry = solvers.entry(name.clone()).or_default();
        *entry = add_solver(entry, inc);
    }
    StatsSnapshot {
        counters: add_counters(&base.counters, &delta.counters),
        gauges: delta.gauges.clone(),
        ops,
        solvers,
        sessions: delta.sessions.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OpLatency;

    fn snapshot_with(admits: u64, buckets: Vec<u64>) -> StatsSnapshot {
        let mut snapshot = StatsSnapshot::default();
        snapshot.counters.admits = admits;
        snapshot.ops.insert(
            "admit".into(),
            OpLatency {
                samples: buckets.iter().sum(),
                p50_us: 10.0,
                p99_us: 20.0,
                histo_buckets: buckets,
                histo_p50_us: 15.0,
                histo_p99_us: 31.0,
            },
        );
        snapshot
    }

    #[test]
    fn diff_then_apply_reproduces_the_next_snapshot() {
        let prev = snapshot_with(3, vec![1, 2]);
        let mut next = snapshot_with(7, vec![1, 3, 2]);
        next.gauges.queue_depth = 4;
        next.solvers.insert(
            "OPDCA".into(),
            SolverRow {
                verdicts: 5,
                accepted: 4,
                warm: 5,
                ..SolverRow::default()
            },
        );
        next.sessions.push(SessionRow {
            name: "t".into(),
            jobs: 2,
            version: 9,
            attached: 1,
        });
        let delta = diff(&prev, &next);
        assert_eq!(delta.counters.admits, 4);
        assert_eq!(delta.ops["admit"].samples, 3);
        assert_eq!(delta.ops["admit"].histo_buckets, vec![0, 1, 2]);
        assert_eq!(delta.solvers["OPDCA"].verdicts, 5);
        assert_eq!(apply(&prev, &delta), next);
    }

    #[test]
    fn identity_delta_is_quiescent_and_applies_to_itself() {
        let snap = snapshot_with(5, vec![0, 5]);
        let delta = diff(&snap, &snap);
        assert!(delta.is_quiescent());
        assert_eq!(apply(&snap, &delta), snap);
    }

    #[test]
    fn nonquiescent_delta_is_detected() {
        let prev = snapshot_with(5, vec![0, 5]);
        let next = snapshot_with(6, vec![0, 6]);
        assert!(!diff(&prev, &next).is_quiescent());
    }

    #[test]
    fn delta_round_trips_with_unknown_field_tolerance() {
        let prev = snapshot_with(1, vec![1]);
        let next = snapshot_with(4, vec![2, 1]);
        let delta = diff(&prev, &next);
        let json = serde_json::to_string(&delta).expect("deltas serialize");
        let parsed: StatsDelta = serde_json::from_str(&json).expect("deltas parse");
        assert_eq!(parsed, delta);
        // Forward compatibility: a frame from a newer daemon with extra
        // top-level fields still parses into the fields we know.
        let extended = json.replacen('{', "{\"future\":123,", 1);
        let parsed: StatsDelta = serde_json::from_str(&extended).expect("unknown fields ignored");
        assert_eq!(parsed, delta);
    }
}
