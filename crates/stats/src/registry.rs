//! The lock-cheap [`StatsRegistry`] every layer feeds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use msmr_sched::Verdict;

use crate::events::{EventKind, FlightDump, FlightRecorder};
use crate::histo::LatencyHisto;
use crate::model::{OpLatency, SolverRow, StatsCounters, StatsSnapshot};
use crate::ring::LatencyRing;
use crate::trace::TraceWriter;

/// Shared live-metrics sink for one daemon.
///
/// Counter and latency recording is atomics-only (relaxed ordering —
/// the counters are independent monotonic tallies, not a synchronized
/// protocol), so instrumenting the admission hot path costs a handful
/// of uncontended atomic ops. The only locks are the per-solver
/// aggregation table (taken once per verdict, never per probe) and the
/// optional trace writer.
///
/// The registry is deliberately ignorant of gauges it does not own:
/// [`StatsRegistry::snapshot`] fills counters, the attached-clients
/// gauge, per-op percentiles and the solver table; the cluster engine
/// layers per-shard session counts, queue depth and per-session rows on
/// top before serving the snapshot.
#[derive(Default)]
pub struct StatsRegistry {
    admits: AtomicU64,
    rejects: AtomicU64,
    withdraws: AtomicU64,
    submits: AtomicU64,
    warm_decides: AtomicU64,
    cold_decides: AtomicU64,
    implied_decides: AtomicU64,
    overloads: AtomicU64,
    evictions: AtomicU64,
    snapshot_writes: AtomicU64,
    snapshot_quarantined: AtomicU64,
    deduped_ops: AtomicU64,
    attached: AtomicU64,
    admit_ring: LatencyRing,
    withdraw_ring: LatencyRing,
    submit_ring: LatencyRing,
    admit_histo: LatencyHisto,
    withdraw_histo: LatencyHisto,
    submit_histo: LatencyHisto,
    solvers: Mutex<BTreeMap<String, SolverRow>>,
    trace: Mutex<Option<TraceWriter>>,
    flight: FlightRecorder,
}

impl std::fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("admits", &self.admits.load(Ordering::Relaxed))
            .field("rejects", &self.rejects.load(Ordering::Relaxed))
            .field("withdraws", &self.withdraws.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl StatsRegistry {
    /// Creates an empty registry with default-size latency rings.
    #[must_use]
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Records an admission decision and its latency.
    pub fn record_admit(&self, admitted: bool, micros: u64) {
        self.record_admit_for(None, None, admitted, micros);
    }

    /// [`StatsRegistry::record_admit`] with flight-event context: the
    /// session name and decision seq, when the caller knows them.
    pub fn record_admit_for(
        &self,
        session: Option<&str>,
        seq: Option<u64>,
        admitted: bool,
        micros: u64,
    ) {
        let kind = if admitted {
            self.admits.fetch_add(1, Ordering::Relaxed);
            EventKind::Admit
        } else {
            self.rejects.fetch_add(1, Ordering::Relaxed);
            EventKind::Reject
        };
        self.admit_ring.record(micros);
        self.admit_histo.record(micros);
        self.flight.record(kind, session, seq);
    }

    /// Records a successful withdrawal and its latency.
    pub fn record_withdraw(&self, micros: u64) {
        self.record_withdraw_for(None, None, micros);
    }

    /// [`StatsRegistry::record_withdraw`] with flight-event context.
    pub fn record_withdraw_for(&self, session: Option<&str>, seq: Option<u64>, micros: u64) {
        self.withdraws.fetch_add(1, Ordering::Relaxed);
        self.withdraw_ring.record(micros);
        self.withdraw_histo.record(micros);
        self.flight.record(EventKind::Withdraw, session, seq);
    }

    /// Records a session (re)submission and its latency.
    pub fn record_submit(&self, micros: u64) {
        self.record_submit_for(None, micros);
    }

    /// [`StatsRegistry::record_submit`] with flight-event context.
    pub fn record_submit_for(&self, session: Option<&str>, micros: u64) {
        self.submits.fetch_add(1, Ordering::Relaxed);
        self.submit_ring.record(micros);
        self.submit_histo.record(micros);
        self.flight.record(EventKind::Submit, session, None);
    }

    /// Records a request refused with a typed `Overload` frame.
    pub fn record_overload(&self) {
        self.record_overload_for(None);
    }

    /// [`StatsRegistry::record_overload`] with flight-event context.
    pub fn record_overload_for(&self, session: Option<&str>) {
        self.overloads.fetch_add(1, Ordering::Relaxed);
        self.flight.record(EventKind::Overload, session, None);
    }

    /// Records a TTL eviction.
    pub fn record_eviction(&self) {
        self.record_eviction_for(None);
    }

    /// [`StatsRegistry::record_eviction`] with flight-event context.
    pub fn record_eviction_for(&self, session: Option<&str>) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.flight.record(EventKind::Eviction, session, None);
    }

    /// Records a session snapshot written to the snapshot store.
    pub fn record_snapshot_write(&self) {
        self.record_snapshot_write_for(None);
    }

    /// [`StatsRegistry::record_snapshot_write`] with flight-event
    /// context.
    pub fn record_snapshot_write_for(&self, session: Option<&str>) {
        self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        self.flight.record(EventKind::SnapshotWrite, session, None);
    }

    /// Records a corrupt snapshot file quarantined at restore time.
    pub fn record_snapshot_quarantine(&self) {
        self.record_snapshot_quarantine_for(None);
    }

    /// [`StatsRegistry::record_snapshot_quarantine`] with flight-event
    /// context.
    pub fn record_snapshot_quarantine_for(&self, session: Option<&str>) {
        self.snapshot_quarantined.fetch_add(1, Ordering::Relaxed);
        self.flight
            .record(EventKind::SnapshotQuarantine, session, None);
    }

    /// Records a replayed op acknowledged by seq-dedupe without being
    /// re-applied.
    pub fn record_dedup(&self) {
        self.record_dedup_for(None, None);
    }

    /// [`StatsRegistry::record_dedup`] with flight-event context.
    pub fn record_dedup_for(&self, session: Option<&str>, seq: Option<u64>) {
        self.deduped_ops.fetch_add(1, Ordering::Relaxed);
        self.flight.record(EventKind::Dedup, session, seq);
    }

    /// Records a replayed seq that named a recorded decision with a
    /// *different* op — a client bug or corruption the daemon refused.
    /// Flight-event only: there is no counter for conflicts (the op is
    /// rejected, so no tally moves), but the recorder keeps the
    /// evidence.
    pub fn record_seq_conflict(&self, session: Option<&str>, seq: Option<u64>) {
        self.flight.record(EventKind::SeqConflict, session, seq);
    }

    /// Raises the attached-clients gauge.
    pub fn client_attached(&self) {
        self.attached.fetch_add(1, Ordering::Relaxed);
        self.flight.record(EventKind::ClientAttach, None, None);
    }

    /// Lowers the attached-clients gauge (saturating).
    pub fn client_detached(&self) {
        let _ = self
            .attached
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        self.flight.record(EventKind::ClientDetach, None, None);
    }

    /// The flight recorder every `record_*` seam feeds.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Seq-ordered export of the flight recorder's surviving events.
    #[must_use]
    pub fn flight_dump(&self) -> FlightDump {
        self.flight.dump()
    }

    /// Current attached-clients gauge.
    #[must_use]
    pub fn attached(&self) -> u64 {
        self.attached.load(Ordering::Relaxed)
    }

    /// Observes one solver verdict: classifies it warm / cold-fallback
    /// / implied, aggregates its work counters into the per-solver
    /// table and forwards a span to the trace writer when one is
    /// attached. This is the closure body behind
    /// `SolverRegistry::set_verdict_hook` — it reads the verdict and
    /// never mutates it, so byte-identity between instrumented and
    /// plain evaluation holds by construction.
    pub fn observe_verdict(&self, verdict: &Verdict) {
        let implied = verdict.stats.implied_by.is_some();
        let cold = verdict.stats.cold_fallback.is_some();
        if implied {
            self.implied_decides.fetch_add(1, Ordering::Relaxed);
        } else if cold {
            self.cold_decides.fetch_add(1, Ordering::Relaxed);
        } else {
            self.warm_decides.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut solvers = self.solvers.lock().expect("solver table lock");
            let row = solvers.entry(verdict.solver.clone()).or_default();
            row.verdicts += 1;
            row.accepted += u64::from(verdict.is_accepted());
            row.implied += u64::from(implied);
            row.cold += u64::from(cold && !implied);
            row.warm += u64::from(!cold && !implied);
            row.sdca_calls += verdict.stats.sdca_calls;
            row.nodes_explored += verdict.stats.nodes_explored;
            row.elapsed_micros += verdict.stats.elapsed_micros;
        }
        let trace = self.trace.lock().expect("trace writer lock");
        if let Some(writer) = trace.as_ref() {
            writer.record_span(verdict);
        }
    }

    /// Attaches a trace writer; subsequent verdicts export spans.
    pub fn set_trace_writer(&self, writer: TraceWriter) {
        *self.trace.lock().expect("trace writer lock") = Some(writer);
    }

    /// Forwards one sample of a named counter track to the attached
    /// trace writer (a Chrome `"C"` event), if any. The saturation
    /// sampler calls this periodically for queue depth, attached
    /// clients and live sessions.
    pub fn trace_counter(&self, name: &str, value: u64) {
        let trace = self.trace.lock().expect("trace writer lock");
        if let Some(writer) = trace.as_ref() {
            writer.record_counter(name, value);
        }
    }

    /// Closes the attached trace writer's JSON array, if any.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the closing write fails.
    pub fn close_trace(&self) -> std::io::Result<()> {
        match self.trace.lock().expect("trace writer lock").as_ref() {
            Some(writer) => writer.finish(),
            None => Ok(()),
        }
    }

    /// Point-in-time snapshot of everything the registry owns. Gauges
    /// the registry cannot see (per-shard sessions, queue depth) stay
    /// at their defaults for the owning layer to fill.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let trace_spans = self
            .trace
            .lock()
            .expect("trace writer lock")
            .as_ref()
            .map_or(0, TraceWriter::spans);
        let mut snapshot = StatsSnapshot {
            counters: StatsCounters {
                admits: self.admits.load(Ordering::Relaxed),
                rejects: self.rejects.load(Ordering::Relaxed),
                withdraws: self.withdraws.load(Ordering::Relaxed),
                submits: self.submits.load(Ordering::Relaxed),
                warm_decides: self.warm_decides.load(Ordering::Relaxed),
                cold_decides: self.cold_decides.load(Ordering::Relaxed),
                implied_decides: self.implied_decides.load(Ordering::Relaxed),
                overloads: self.overloads.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
                snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
                trace_spans,
                snapshot_quarantined: self.snapshot_quarantined.load(Ordering::Relaxed),
                deduped_ops: self.deduped_ops.load(Ordering::Relaxed),
            },
            ..StatsSnapshot::default()
        };
        snapshot.gauges.attached_clients = self.attached();
        for (name, ring, histo) in [
            ("admit", &self.admit_ring, &self.admit_histo),
            ("withdraw", &self.withdraw_ring, &self.withdraw_histo),
            ("submit", &self.submit_ring, &self.submit_histo),
        ] {
            snapshot.ops.insert(
                name.to_string(),
                OpLatency {
                    samples: ring.recorded(),
                    p50_us: ring.percentile_us(0.50),
                    p99_us: ring.percentile_us(0.99),
                    histo_buckets: histo.counts(),
                    histo_p50_us: histo.percentile_us(0.50),
                    histo_p99_us: histo.percentile_us(0.99),
                },
            );
        }
        snapshot.solvers = self.solvers.lock().expect("solver table lock").clone();
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_sched::{Budget, DelayBoundKind, SolverRegistry};

    fn verdicts() -> Vec<Verdict> {
        let mut builder = msmr_model::JobSetBuilder::new();
        builder.stage("cpu", 1, msmr_model::PreemptionPolicy::Preemptive);
        let jobs = builder.build().expect("pipeline-only job set builds");
        SolverRegistry::paper_suite(DelayBoundKind::EdgeHybrid).evaluate(&jobs, Budget::default())
    }

    #[test]
    fn counters_and_rings_land_in_the_snapshot() {
        let stats = StatsRegistry::new();
        stats.record_admit(true, 50);
        stats.record_admit(true, 70);
        stats.record_admit(false, 90);
        stats.record_withdraw(110);
        stats.record_submit(500);
        stats.record_overload();
        stats.record_eviction();
        stats.record_snapshot_write();
        stats.record_snapshot_quarantine();
        stats.record_dedup();
        stats.record_dedup();
        stats.client_attached();
        stats.client_attached();
        stats.client_detached();

        let snapshot = stats.snapshot();
        assert_eq!(snapshot.counters.admits, 2);
        assert_eq!(snapshot.counters.rejects, 1);
        assert_eq!(snapshot.counters.withdraws, 1);
        assert_eq!(snapshot.counters.submits, 1);
        assert_eq!(snapshot.counters.overloads, 1);
        assert_eq!(snapshot.counters.evictions, 1);
        assert_eq!(snapshot.counters.snapshot_writes, 1);
        assert_eq!(snapshot.counters.snapshot_quarantined, 1);
        assert_eq!(snapshot.counters.deduped_ops, 2);
        assert_eq!(snapshot.gauges.attached_clients, 1);
        let admit = &snapshot.ops["admit"];
        assert_eq!(admit.samples, 3);
        assert_eq!(admit.p50_us, 70.0);
        assert_eq!(admit.p99_us, 90.0);
        // The histograms saw the same samples: 50 µs lands in bucket 6
        // ([32,64)), 70 and 90 in bucket 7 ([64,128)).
        assert_eq!(admit.histo_buckets, vec![0, 0, 0, 0, 0, 0, 1, 2]);
        assert_eq!(admit.histo_p50_us, 127.0);
        assert_eq!(admit.histo_p99_us, 127.0);
        assert_eq!(
            crate::histo::bucket_index(admit.histo_p99_us as u64),
            crate::histo::bucket_index(admit.p99_us as u64),
            "histogram p99 estimate stays in the ring p99's bucket"
        );
        assert_eq!(snapshot.ops["withdraw"].samples, 1);
        assert_eq!(snapshot.ops["submit"].samples, 1);
        assert_eq!(snapshot.ops["submit"].histo_buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn verdicts_classify_into_warm_cold_and_implied() {
        let stats = StatsRegistry::new();
        let mut warm = verdicts();
        // Normalize provenance so the classification under test is the
        // one this test injects, not whatever shortcuts fired.
        for verdict in &mut warm {
            verdict.stats.implied_by = None;
            verdict.stats.cold_fallback = None;
        }
        for verdict in &warm {
            stats.observe_verdict(verdict);
        }
        let mut cold = warm.remove(0);
        cold.stats.cold_fallback = Some(true);
        stats.observe_verdict(&cold);
        let mut implied = warm.remove(0);
        implied.stats.implied_by = Some("DMR".into());
        stats.observe_verdict(&implied);

        let snapshot = stats.snapshot();
        let counters = &snapshot.counters;
        assert_eq!(
            counters.warm_decides + counters.cold_decides + counters.implied_decides,
            7
        );
        assert_eq!(counters.cold_decides, 1);
        assert_eq!(counters.implied_decides, 1);
        let row = &snapshot.solvers[&cold.solver];
        assert_eq!(row.cold, 1);
        assert!(row.verdicts >= 2);
        assert_eq!(snapshot.warm_ratio(), Some(5.0 / 7.0));
    }

    #[test]
    fn detach_gauge_saturates_at_zero() {
        let stats = StatsRegistry::new();
        stats.client_detached();
        assert_eq!(stats.attached(), 0);
    }

    #[test]
    fn every_record_seam_feeds_the_flight_recorder() {
        use crate::events::EventKind;
        let stats = StatsRegistry::new();
        stats.client_attached();
        stats.record_submit_for(Some("tenant-a"), 40);
        stats.record_admit_for(Some("tenant-a"), Some(1), true, 50);
        stats.record_admit_for(Some("tenant-a"), Some(2), false, 60);
        stats.record_withdraw_for(Some("tenant-a"), Some(3), 70);
        stats.record_dedup_for(Some("tenant-a"), Some(3));
        stats.record_seq_conflict(Some("tenant-a"), Some(2));
        stats.record_overload_for(Some("tenant-a"));
        stats.record_eviction_for(Some("tenant-b"));
        stats.record_snapshot_write_for(Some("tenant-b"));
        stats.record_snapshot_quarantine_for(Some("tenant-x"));
        stats.client_detached();

        let dump = stats.flight_dump();
        assert_eq!(dump.recorded, 12);
        assert_eq!(dump.dropped, 0);
        for kind in [
            EventKind::ClientAttach,
            EventKind::Submit,
            EventKind::Admit,
            EventKind::Reject,
            EventKind::Withdraw,
            EventKind::Dedup,
            EventKind::SeqConflict,
            EventKind::Overload,
            EventKind::Eviction,
            EventKind::SnapshotWrite,
            EventKind::SnapshotQuarantine,
            EventKind::ClientDetach,
        ] {
            assert_eq!(dump.count(kind), 1, "exactly one {kind:?} event");
        }
        let admit = dump
            .events
            .iter()
            .find(|e| e.kind == EventKind::Admit)
            .expect("admit event recorded");
        assert_eq!(admit.session.as_deref(), Some("tenant-a"));
        assert_eq!(admit.op_seq, Some(1));
        // The counters and the recorder saw the same seams: flight
        // event counts reconcile with the counter snapshot.
        let snapshot = stats.snapshot();
        assert_eq!(dump.count(EventKind::Admit), snapshot.counters.admits);
        assert_eq!(dump.count(EventKind::Reject), snapshot.counters.rejects);
        assert_eq!(dump.count(EventKind::Dedup), snapshot.counters.deduped_ops);
        assert_eq!(dump.count(EventKind::Overload), snapshot.counters.overloads);
    }
}
