//! `msmr-top` — a std-only terminal dashboard over the stats side
//! channel, in the spirit of `scxtop`.
//!
//! Default mode polls a `--stats-addr` listener and redraws a compact
//! dashboard: counters, warm/cold ratio, per-op p50/p99, a worker
//! queue-depth sparkline across polls, and per-solver / per-session
//! tables. Two scripting modes double as the CI validators:
//!
//! * `--once` prints one raw JSON snapshot (optionally asserting
//!   `--min-admits N`), so shell scripts can check the side channel
//!   without a JSON tool dependency.
//! * `--check-trace FILE` validates a `--trace-out` file as
//!   trace-event JSON (optionally asserting `--expect-spans N`).
//!
//! ```text
//! msmr-top --addr 127.0.0.1:9099 [--interval-ms 1000] [--iterations 0]
//! msmr-top --addr 127.0.0.1:9099 --once [--min-admits 1]
//! msmr-top --check-trace replay.trace [--expect-spans 120]
//! ```

use std::process::ExitCode;

use msmr_stats::{fetch_stats_json, validate_trace, StatsSnapshot};

/// Glyphs of the queue-depth sparkline, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Polls of queue depth kept for the sparkline.
const SPARK_WINDOW: usize = 32;

#[derive(Debug)]
struct Options {
    addr: Option<String>,
    interval_ms: u64,
    /// 0 = poll until interrupted.
    iterations: u64,
    once: bool,
    min_admits: Option<u64>,
    check_trace: Option<String>,
    expect_spans: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            interval_ms: 1000,
            iterations: 0,
            once: false,
            min_admits: None,
            check_trace: None,
            expect_spans: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => options.addr = Some(value("--addr")?),
            "--interval-ms" => {
                options.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms needs an integer".to_string())?;
            }
            "--iterations" => {
                options.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "--iterations needs an integer".to_string())?;
            }
            "--once" => options.once = true,
            "--min-admits" => {
                options.min_admits = Some(
                    value("--min-admits")?
                        .parse()
                        .map_err(|_| "--min-admits needs an integer".to_string())?,
                );
            }
            "--check-trace" => options.check_trace = Some(value("--check-trace")?),
            "--expect-spans" => {
                options.expect_spans = Some(
                    value("--expect-spans")?
                        .parse()
                        .map_err(|_| "--expect-spans needs an integer".to_string())?,
                );
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if options.check_trace.is_none() && options.addr.is_none() {
        return Err("--addr HOST:PORT is required (or use --check-trace)".to_string());
    }
    Ok(options)
}

/// Renders a fixed-width sparkline of the depth history, newest last.
fn sparkline(depths: &[u64]) -> String {
    let max = depths.iter().copied().max().unwrap_or(0).max(1);
    depths
        .iter()
        .map(|&d| {
            SPARKS[(d as usize * (SPARKS.len() - 1))
                .div_ceil(max as usize)
                .min(SPARKS.len() - 1)]
        })
        .collect()
}

/// Renders one dashboard frame (no ANSI control codes — the caller
/// prepends the clear sequence in loop mode, tests read it plain).
fn render(snapshot: &StatsSnapshot, depths: &[u64]) -> String {
    let c = &snapshot.counters;
    let g = &snapshot.gauges;
    let mut out = String::new();
    out.push_str("msmr-top — admission daemon live stats\n\n");
    out.push_str(&format!(
        "admits {:>8}   rejects {:>6}   withdraws {:>6}   submits {:>4}   overloads {:>4}\n",
        c.admits, c.rejects, c.withdraws, c.submits, c.overloads
    ));
    out.push_str(&format!(
        "evictions {:>5}   snapshots {:>4}   quarantined {:>3}   deduped {:>5}   trace spans {:>6}\n",
        c.evictions, c.snapshot_writes, c.snapshot_quarantined, c.deduped_ops, c.trace_spans
    ));
    let ratio = snapshot
        .warm_ratio()
        .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0));
    out.push_str(&format!(
        "decides: warm {} / cold {} / implied {}   warm ratio {}\n",
        c.warm_decides, c.cold_decides, c.implied_decides, ratio
    ));
    out.push_str(&format!(
        "clients {}   sessions {}   shards {:?}\n",
        g.attached_clients, g.live_sessions, g.sessions_per_shard
    ));
    out.push_str(&format!(
        "queue {:>3}/{} ({} workers)  {}\n",
        g.queue_depth,
        g.queue_capacity,
        g.workers,
        sparkline(depths)
    ));
    out.push_str("\nop        samples      p50 µs      p99 µs\n");
    for (name, lat) in &snapshot.ops {
        out.push_str(&format!(
            "{name:<10}{:>7}  {:>10.1}  {:>10.1}\n",
            lat.samples, lat.p50_us, lat.p99_us
        ));
    }
    if !snapshot.solvers.is_empty() {
        out.push_str(
            "\nsolver    verdicts  accepted      warm      cold   implied       sdca      nodes\n",
        );
        for (name, row) in &snapshot.solvers {
            out.push_str(&format!(
                "{name:<10}{:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>9}  {:>9}\n",
                row.verdicts,
                row.accepted,
                row.warm,
                row.cold,
                row.implied,
                row.sdca_calls,
                row.nodes_explored
            ));
        }
    }
    if !snapshot.sessions.is_empty() {
        out.push_str("\nsession                          jobs   version  attached\n");
        for row in &snapshot.sessions {
            out.push_str(&format!(
                "{:<30}{:>7}  {:>8}  {:>8}\n",
                row.name, row.jobs, row.version, row.attached
            ));
        }
    }
    out
}

fn check_trace(path: &str, expect_spans: Option<u64>) -> Result<u64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spans = validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(expected) = expect_spans {
        if spans != expected {
            return Err(format!("{path}: expected {expected} spans, found {spans}"));
        }
    }
    Ok(spans)
}

fn run(options: &Options) -> Result<(), String> {
    if let Some(path) = &options.check_trace {
        let spans = check_trace(path, options.expect_spans)?;
        println!("trace OK: {spans} spans");
        return Ok(());
    }
    let addr = options.addr.as_deref().expect("addr checked by the parser");
    if options.once {
        let json = fetch_stats_json(addr).map_err(|e| format!("{addr}: {e}"))?;
        let snapshot: StatsSnapshot =
            serde_json::from_str(&json).map_err(|e| format!("{addr}: bad snapshot: {e}"))?;
        if let Some(min) = options.min_admits {
            if snapshot.counters.admits < min {
                return Err(format!(
                    "{addr}: admits {} below required {min}",
                    snapshot.counters.admits
                ));
            }
        }
        println!("{json}");
        return Ok(());
    }
    let mut depths: Vec<u64> = Vec::new();
    let mut iteration = 0u64;
    loop {
        let json = fetch_stats_json(addr).map_err(|e| format!("{addr}: {e}"))?;
        let snapshot: StatsSnapshot =
            serde_json::from_str(&json).map_err(|e| format!("{addr}: bad snapshot: {e}"))?;
        depths.push(snapshot.gauges.queue_depth);
        if depths.len() > SPARK_WINDOW {
            depths.remove(0);
        }
        // Clear + home, then one full frame.
        print!("\x1b[2J\x1b[H{}", render(&snapshot, &depths));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        iteration += 1;
        if options.iterations != 0 && iteration >= options.iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                eprintln!(
                    "usage: msmr-top --addr HOST:PORT [--interval-ms N] [--iterations N]\n\
                     \x20      msmr-top --addr HOST:PORT --once [--min-admits N]\n\
                     \x20      msmr-top --check-trace FILE [--expect-spans N]"
                );
                return ExitCode::SUCCESS;
            }
            eprintln!("msmr-top: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("msmr-top: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_stats::{OpLatency, SessionRow, SolverRow};

    #[test]
    fn sparkline_scales_to_the_window_maximum() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 4, 8]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }

    #[test]
    fn render_includes_every_table() {
        let mut snapshot = StatsSnapshot::default();
        snapshot.counters.admits = 12;
        snapshot.counters.warm_decides = 9;
        snapshot.counters.cold_decides = 3;
        snapshot.counters.snapshot_quarantined = 1;
        snapshot.counters.deduped_ops = 4;
        snapshot.gauges.queue_depth = 2;
        snapshot.gauges.queue_capacity = 64;
        snapshot.ops.insert(
            "admit".into(),
            OpLatency {
                samples: 12,
                p50_us: 51.0,
                p99_us: 130.0,
            },
        );
        snapshot.solvers.insert(
            "OPDCA".into(),
            SolverRow {
                verdicts: 12,
                accepted: 11,
                warm: 12,
                sdca_calls: 300,
                ..SolverRow::default()
            },
        );
        snapshot.sessions.push(SessionRow {
            name: "loadgen-7-0".into(),
            jobs: 8,
            version: 14,
            attached: 2,
        });
        let frame = render(&snapshot, &[0, 1, 2]);
        assert!(frame.contains("admits       12"));
        assert!(frame.contains("quarantined   1"));
        assert!(frame.contains("deduped     4"));
        assert!(frame.contains("75.0%"));
        assert!(frame.contains("OPDCA"));
        assert!(frame.contains("loadgen-7-0"));
        assert!(frame.contains("queue   2/64"));
    }

    #[test]
    fn parser_rejects_missing_addr_and_unknown_flags() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
        let options =
            parse_args(&["--addr".into(), "127.0.0.1:9".into(), "--once".into()]).unwrap();
        assert!(options.once);
        let options = parse_args(&["--check-trace".into(), "x.trace".into()]).unwrap();
        assert_eq!(options.check_trace.as_deref(), Some("x.trace"));
    }
}
