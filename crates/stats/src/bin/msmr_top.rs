//! `msmr-top` — a std-only terminal dashboard over the stats side
//! channel, in the spirit of `scxtop`.
//!
//! Default mode polls a `--stats-addr` listener and redraws a compact
//! dashboard: counters, warm/cold ratio, per-op p50/p99, a worker
//! queue-depth sparkline across polls, and per-solver / per-session
//! tables. `--tui` switches to a full-screen mode on the terminal's
//! alternate screen (plain ANSI, no terminal library): the same
//! counters plus log-bucket latency **distribution sparklines** per
//! op, per-shard session occupancy bars and a per-solver latency
//! table. Two scripting modes double as the CI validators:
//!
//! The live modes ride the side channel's **streaming delta mode**: one
//! persistent connection receives the baseline snapshot and then one
//! `StatsDelta` frame per interval, folded client-side — no
//! reconnect-per-poll churn against the daemon. If the daemon bounces,
//! the dashboard reconnects and picks up a fresh baseline. Four
//! scripting modes double as the CI validators:
//!
//! * `--once` prints one raw JSON snapshot (optionally asserting
//!   `--min-admits N`; when asserted, the per-op histograms must also
//!   be populated and agree with the ring p99 within one log bucket),
//!   so shell scripts can check the side channel without a JSON tool
//!   dependency. Its output is raw snapshot JSON — byte-stable for CI
//!   regardless of the dashboard modes.
//! * `--check-trace FILE` validates a `--trace-out` file as
//!   trace-event JSON (optionally asserting `--expect-spans N` exact
//!   span and `--expect-counters N` minimum counter-sample tallies).
//! * `--check-stream` holds one streaming connection, folds delta
//!   frames onto the baseline, and — once a quiescent frame arrives —
//!   asserts `baseline ⊕ deltas ≡ fresh snapshot` against a plain
//!   legacy fetch, pinning the merge contract end to end.
//! * `--replay FILE` is the offline post-mortem: it reconstructs
//!   per-solver lanes and counter tracks from a recorded Chrome trace,
//!   rebuilds per-solver span-latency histograms with the same
//!   log-bucket [`LatencyHisto`], and renders the report without a
//!   daemon. `--flight DUMP` folds a flight-recorder dump in;
//!   `--against SNAPSHOT` cross-checks per-solver span counts versus
//!   the live decisions counters of a saved snapshot.
//! * `--flight-dump` asks the side channel's `flight` command for the
//!   live flight-recorder ring and renders the same dump view without
//!   a trace file.
//!
//! `--flight-filter kind=overload,session=NAME` narrows the flight
//! view — both the live `--flight-dump` and the `--replay --flight`
//! fold-in — to the matching events; tallies and the event tail then
//! cover only the selection (the recorded/dropped totals stay honest).
//!
//! ```text
//! msmr-top --addr 127.0.0.1:9099 [--interval-ms 1000] [--iterations 0] [--tui]
//! msmr-top --addr 127.0.0.1:9099 --once [--min-admits 1]
//! msmr-top --addr 127.0.0.1:9099 --check-stream [--interval-ms 200]
//! msmr-top --addr 127.0.0.1:9099 --flight-dump [--flight-filter kind=K,session=S]
//! msmr-top --check-trace replay.trace [--expect-spans 120] [--expect-counters 3]
//! msmr-top --replay replay.trace [--flight flight.json] [--against snapshot.json]
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use msmr_stats::ring::DEFAULT_RING_SLOTS;
use msmr_stats::{
    bucket_bounds, bucket_index, fetch_flight_dump, fetch_stats_json, parse_trace, validate_trace,
    Event, EventKind, FlightDump, LatencyHisto, StatsSnapshot, StatsStream, TraceEvents,
    TraceSummary,
};

/// How long `--check-stream` waits for the folded stream to converge
/// with a fresh snapshot before giving up.
const CHECK_STREAM_DEADLINE: Duration = Duration::from_secs(30);

/// Flight-recorder events listed (newest last) in a replay report.
const REPLAY_FLIGHT_TAIL: usize = 10;

/// Glyphs of the queue-depth sparkline, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Polls of queue depth kept for the sparkline.
const SPARK_WINDOW: usize = 32;

/// Widest per-shard occupancy bar in the TUI.
const SHARD_BAR_WIDTH: usize = 30;

#[derive(Debug)]
struct Options {
    addr: Option<String>,
    interval_ms: u64,
    /// 0 = poll until interrupted.
    iterations: u64,
    once: bool,
    tui: bool,
    min_admits: Option<u64>,
    check_trace: Option<String>,
    expect_spans: Option<u64>,
    expect_counters: Option<u64>,
    check_stream: bool,
    replay: Option<String>,
    flight: Option<String>,
    against: Option<String>,
    flight_dump: bool,
    flight_filter: Option<FlightFilter>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            interval_ms: 1000,
            iterations: 0,
            once: false,
            tui: false,
            min_admits: None,
            check_trace: None,
            expect_spans: None,
            expect_counters: None,
            check_stream: false,
            replay: None,
            flight: None,
            against: None,
            flight_dump: false,
            flight_filter: None,
        }
    }
}

/// Every [`EventKind`] under the lowercase name `--flight-filter`
/// accepts; the parser strips `-`/`_` so `snapshot-write` works too.
const EVENT_KINDS: &[(&str, EventKind)] = &[
    ("admit", EventKind::Admit),
    ("reject", EventKind::Reject),
    ("withdraw", EventKind::Withdraw),
    ("submit", EventKind::Submit),
    ("overload", EventKind::Overload),
    ("eviction", EventKind::Eviction),
    ("snapshotwrite", EventKind::SnapshotWrite),
    ("snapshotquarantine", EventKind::SnapshotQuarantine),
    ("seqconflict", EventKind::SeqConflict),
    ("dedup", EventKind::Dedup),
    ("clientattach", EventKind::ClientAttach),
    ("clientdetach", EventKind::ClientDetach),
];

fn parse_event_kind(name: &str) -> Result<EventKind, String> {
    let normalized: String = name
        .chars()
        .filter(|c| !matches!(c, '-' | '_'))
        .collect::<String>()
        .to_ascii_lowercase();
    EVENT_KINDS
        .iter()
        .find(|(known, _)| *known == normalized)
        .map(|(_, kind)| *kind)
        .ok_or_else(|| {
            let names: Vec<&str> = EVENT_KINDS.iter().map(|(known, _)| *known).collect();
            format!("unknown event kind `{name}` (one of: {})", names.join(", "))
        })
}

/// The `--flight-filter` selection: comma-separated `kind=…` /
/// `session=…` pairs, conjunctive when both are given. Applied to the
/// flight view wherever it renders — the live `--flight-dump` and the
/// `--replay --flight` fold-in.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlightFilter {
    kind: Option<EventKind>,
    session: Option<String>,
}

impl FlightFilter {
    fn parse(spec: &str) -> Result<FlightFilter, String> {
        let mut filter = FlightFilter {
            kind: None,
            session: None,
        };
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!(
                    "`{pair}` is not a key=value pair (kind=… or session=…)"
                ));
            };
            match key.trim() {
                "kind" => filter.kind = Some(parse_event_kind(value.trim())?),
                "session" => filter.session = Some(value.trim().to_string()),
                other => return Err(format!("unknown filter key `{other}` (kind, session)")),
            }
        }
        if filter.kind.is_none() && filter.session.is_none() {
            return Err("empty filter: give kind=… and/or session=…".to_string());
        }
        Ok(filter)
    }

    fn matches(&self, event: &Event) -> bool {
        self.kind.is_none_or(|kind| event.kind == kind)
            && self
                .session
                .as_deref()
                .is_none_or(|name| event.session.as_deref() == Some(name))
    }

    /// The filter restated for the report header, e.g.
    /// `kind=Overload session=tenant-3`.
    fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(kind) = self.kind {
            parts.push(format!("kind={kind:?}"));
        }
        if let Some(session) = &self.session {
            parts.push(format!("session={session}"));
        }
        parts.join(" ")
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => options.addr = Some(value("--addr")?),
            "--interval-ms" => {
                options.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms needs an integer".to_string())?;
            }
            "--iterations" => {
                options.iterations = value("--iterations")?
                    .parse()
                    .map_err(|_| "--iterations needs an integer".to_string())?;
            }
            "--once" => options.once = true,
            "--tui" => options.tui = true,
            "--min-admits" => {
                options.min_admits = Some(
                    value("--min-admits")?
                        .parse()
                        .map_err(|_| "--min-admits needs an integer".to_string())?,
                );
            }
            "--check-trace" => options.check_trace = Some(value("--check-trace")?),
            "--expect-spans" => {
                options.expect_spans = Some(
                    value("--expect-spans")?
                        .parse()
                        .map_err(|_| "--expect-spans needs an integer".to_string())?,
                );
            }
            "--expect-counters" => {
                options.expect_counters = Some(
                    value("--expect-counters")?
                        .parse()
                        .map_err(|_| "--expect-counters needs an integer".to_string())?,
                );
            }
            "--check-stream" => options.check_stream = true,
            "--replay" => options.replay = Some(value("--replay")?),
            "--flight" => options.flight = Some(value("--flight")?),
            "--against" => options.against = Some(value("--against")?),
            "--flight-dump" => options.flight_dump = true,
            "--flight-filter" => {
                options.flight_filter = Some(
                    FlightFilter::parse(&value("--flight-filter")?)
                        .map_err(|e| format!("--flight-filter: {e}"))?,
                );
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if options.replay.is_none() && (options.flight.is_some() || options.against.is_some()) {
        return Err("--flight/--against only make sense with --replay".to_string());
    }
    if options.flight_dump && (options.replay.is_some() || options.check_trace.is_some()) {
        return Err(
            "--flight-dump is a live mode; it doesn't combine with --replay/--check-trace"
                .to_string(),
        );
    }
    if options.flight_filter.is_some() && options.flight.is_none() && !options.flight_dump {
        return Err(
            "--flight-filter needs a flight view: --flight-dump or --replay --flight".to_string(),
        );
    }
    if options.check_trace.is_none() && options.replay.is_none() && options.addr.is_none() {
        return Err("--addr HOST:PORT is required (or use --check-trace / --replay)".to_string());
    }
    Ok(options)
}

/// Renders a fixed-width sparkline of the depth history, newest last.
fn sparkline(depths: &[u64]) -> String {
    let max = depths.iter().copied().max().unwrap_or(0).max(1);
    depths
        .iter()
        .map(|&d| {
            SPARKS[(d as usize * (SPARKS.len() - 1))
                .div_ceil(max as usize)
                .min(SPARKS.len() - 1)]
        })
        .collect()
}

/// The counters / gauges header both dashboard modes share.
fn render_header(snapshot: &StatsSnapshot, depths: &[u64]) -> String {
    let c = &snapshot.counters;
    let g = &snapshot.gauges;
    let mut out = String::new();
    out.push_str(&format!(
        "admits {:>8}   rejects {:>6}   withdraws {:>6}   submits {:>4}   overloads {:>4}\n",
        c.admits, c.rejects, c.withdraws, c.submits, c.overloads
    ));
    out.push_str(&format!(
        "evictions {:>5}   snapshots {:>4}   quarantined {:>3}   deduped {:>5}   trace spans {:>6}\n",
        c.evictions, c.snapshot_writes, c.snapshot_quarantined, c.deduped_ops, c.trace_spans
    ));
    let ratio = snapshot
        .warm_ratio()
        .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0));
    out.push_str(&format!(
        "decides: warm {} / cold {} / implied {}   warm ratio {}\n",
        c.warm_decides, c.cold_decides, c.implied_decides, ratio
    ));
    out.push_str(&format!(
        "clients {}   sessions {}   shards {:?}\n",
        g.attached_clients, g.live_sessions, g.sessions_per_shard
    ));
    out.push_str(&format!(
        "queue {:>3}/{} ({} workers)  {}\n",
        g.queue_depth,
        g.queue_capacity,
        g.workers,
        sparkline(depths)
    ));
    out
}

/// Renders one dashboard frame (no ANSI control codes — the caller
/// prepends the clear sequence in loop mode, tests read it plain).
fn render(snapshot: &StatsSnapshot, depths: &[u64]) -> String {
    let mut out = String::new();
    out.push_str("msmr-top — admission daemon live stats\n\n");
    out.push_str(&render_header(snapshot, depths));
    out.push_str("\nop        samples      p50 µs      p99 µs\n");
    for (name, lat) in &snapshot.ops {
        out.push_str(&format!(
            "{name:<10}{:>7}  {:>10.1}  {:>10.1}\n",
            lat.samples, lat.p50_us, lat.p99_us
        ));
    }
    if !snapshot.solvers.is_empty() {
        out.push_str(
            "\nsolver    verdicts  accepted      warm      cold   implied       sdca      nodes\n",
        );
        for (name, row) in &snapshot.solvers {
            out.push_str(&format!(
                "{name:<10}{:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>9}  {:>9}\n",
                row.verdicts,
                row.accepted,
                row.warm,
                row.cold,
                row.implied,
                row.sdca_calls,
                row.nodes_explored
            ));
        }
    }
    if !snapshot.sessions.is_empty() {
        out.push_str("\nsession                          jobs   version  attached\n");
        for row in &snapshot.sessions {
            out.push_str(&format!(
                "{:<30}{:>7}  {:>8}  {:>8}\n",
                row.name, row.jobs, row.version, row.attached
            ));
        }
    }
    out
}

/// Sparkline over the non-empty span of a log-bucket histogram plus a
/// human `[lower µs, upper µs)` range label; `None` when no samples.
fn histo_sparkline(buckets: &[u64]) -> Option<(String, String)> {
    let first = buckets.iter().position(|&c| c > 0)?;
    let last = buckets.iter().rposition(|&c| c > 0)?;
    let glyphs = sparkline(&buckets[first..=last]);
    let (lower, _) = bucket_bounds(first);
    let (_, upper) = bucket_bounds(last);
    Some((glyphs, format!("[{lower}µs, {upper}µs)")))
}

/// Renders one full-screen TUI frame (plain text; the TUI loop owns
/// the alternate-screen and cursor-addressing control codes).
fn render_tui(snapshot: &StatsSnapshot, depths: &[u64]) -> String {
    let mut out = String::new();
    out.push_str("msmr-top — admission daemon live stats (tui)\n\n");
    out.push_str(&render_header(snapshot, depths));

    out.push_str("\nlatency distributions (log-bucket, since boot)\n");
    out.push_str("op        samples   ring p50/p99 µs   histo p50/p99 µs  distribution\n");
    for (name, lat) in &snapshot.ops {
        let (glyphs, range) = histo_sparkline(&lat.histo_buckets)
            .unwrap_or_else(|| ("".to_string(), "no samples".to_string()));
        out.push_str(&format!(
            "{name:<10}{:>7}  {:>7.1}/{:<8.1} {:>7.1}/{:<8.1} {} {}\n",
            lat.samples, lat.p50_us, lat.p99_us, lat.histo_p50_us, lat.histo_p99_us, glyphs, range
        ));
    }

    if !snapshot.gauges.sessions_per_shard.is_empty() {
        out.push_str("\nshard occupancy\n");
        let max = snapshot
            .gauges
            .sessions_per_shard
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(1);
        for (shard, &count) in snapshot.gauges.sessions_per_shard.iter().enumerate() {
            let width = ((count as usize * SHARD_BAR_WIDTH) / max as usize).min(SHARD_BAR_WIDTH);
            out.push_str(&format!(
                "shard {shard:<3} {:<width$} {count}\n",
                "█".repeat(width),
                width = SHARD_BAR_WIDTH
            ));
        }
    }

    if !snapshot.solvers.is_empty() {
        out.push_str("\nsolver      verdicts   accept%     warm%    mean µs\n");
        for (name, row) in &snapshot.solvers {
            let verdicts = row.verdicts.max(1) as f64;
            out.push_str(&format!(
                "{name:<10}{:>10}  {:>7.1}%  {:>7.1}%  {:>9.1}\n",
                row.verdicts,
                row.accepted as f64 / verdicts * 100.0,
                row.warm as f64 / verdicts * 100.0,
                row.elapsed_micros as f64 / verdicts,
            ));
        }
    }

    if !snapshot.sessions.is_empty() {
        out.push_str("\nsession                          jobs   version  attached\n");
        for row in &snapshot.sessions {
            out.push_str(&format!(
                "{:<30}{:>7}  {:>8}  {:>8}\n",
                row.name, row.jobs, row.version, row.attached
            ));
        }
    }
    out
}

/// The `--once --min-admits` histogram cross-check: every op that
/// recorded samples must carry a populated histogram whose total
/// matches the sample count, and — while the ring window still holds
/// every sample — a histogram p99 estimate in the same (±1) log bucket
/// as the ring p99.
fn verify_histograms(snapshot: &StatsSnapshot) -> Result<(), String> {
    for (name, lat) in &snapshot.ops {
        if lat.samples == 0 {
            continue;
        }
        let total: u64 = lat.histo_buckets.iter().sum();
        if total != lat.samples {
            return Err(format!(
                "op `{name}`: histogram holds {total} samples but the ring recorded {}",
                lat.samples
            ));
        }
        if lat.samples <= DEFAULT_RING_SLOTS as u64 {
            let ring_bucket = bucket_index(lat.p99_us as u64);
            let histo_bucket = bucket_index(lat.histo_p99_us as u64);
            if ring_bucket.abs_diff(histo_bucket) > 1 {
                return Err(format!(
                    "op `{name}`: histogram p99 {:.1}µs (bucket {histo_bucket}) disagrees with \
                     ring p99 {:.1}µs (bucket {ring_bucket}) by more than one bucket",
                    lat.histo_p99_us, lat.p99_us
                ));
            }
        }
    }
    Ok(())
}

fn check_trace(
    path: &str,
    expect_spans: Option<u64>,
    expect_counters: Option<u64>,
) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let summary = validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(expected) = expect_spans {
        if summary.spans != expected {
            return Err(format!(
                "{path}: expected {expected} spans, found {}",
                summary.spans
            ));
        }
    }
    if let Some(expected) = expect_counters {
        if summary.counters < expected {
            return Err(format!(
                "{path}: expected at least {expected} counter samples, found {}",
                summary.counters
            ));
        }
        if summary.lanes == 0 {
            return Err(format!(
                "{path}: counter samples present but no named solver lanes"
            ));
        }
    }
    Ok(summary)
}

/// One solver lane reconstructed from a trace's spans.
#[derive(Default)]
struct ReplayLane {
    spans: u64,
    accepted: u64,
    total_us: u64,
    histo: LatencyHisto,
}

/// Rebuilds the per-solver lanes of a recorded trace: span counts,
/// accept tallies and a log-bucket latency histogram over span
/// durations — the offline analogue of the live per-op histograms.
fn replay_lanes(events: &TraceEvents) -> std::collections::BTreeMap<String, ReplayLane> {
    let mut lanes: std::collections::BTreeMap<String, ReplayLane> =
        std::collections::BTreeMap::new();
    for span in &events.spans {
        let lane = lanes.entry(span.solver.clone()).or_default();
        lane.spans += 1;
        lane.accepted += u64::from(span.accepted.unwrap_or(false));
        lane.total_us += span.dur_us;
        lane.histo.record(span.dur_us);
    }
    lanes
}

/// Renders the flight-recorder section shared by the `--replay
/// --flight` fold-in and the live `--flight-dump` view: honest
/// recorded/dropped totals, then per-kind tallies and the event tail
/// over the (optionally `--flight-filter`ed) selection.
fn render_flight(dump: &FlightDump, filter: Option<&FlightFilter>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight recorder: {} recorded, {} dropped (capacity {})\n",
        dump.recorded, dump.dropped, dump.capacity
    ));
    let selected: Vec<&Event> = dump
        .events
        .iter()
        .filter(|event| filter.is_none_or(|f| f.matches(event)))
        .collect();
    if let Some(filter) = filter {
        out.push_str(&format!(
            "filter {}: {} of {} events match\n",
            filter.describe(),
            selected.len(),
            dump.events.len()
        ));
    }
    let mut kinds: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for event in &selected {
        *kinds.entry(format!("{:?}", event.kind)).or_insert(0) += 1;
    }
    let kinds: Vec<String> = kinds
        .iter()
        .map(|(kind, count)| format!("{kind} {count}"))
        .collect();
    out.push_str(&format!("events: {}\n", kinds.join("  ")));
    let tail = selected.len().saturating_sub(REPLAY_FLIGHT_TAIL);
    out.push_str(&format!("last {} events:\n", selected.len() - tail));
    for event in &selected[tail..] {
        out.push_str(&format!(
            "  #{:<6} {:>10}µs  {:<18} {}{}\n",
            event.seq,
            event.ts_us,
            format!("{:?}", event.kind),
            event.session.as_deref().unwrap_or("-"),
            event
                .op_seq
                .map_or_else(String::new, |seq| format!(" seq={seq}"))
        ));
    }
    out
}

/// Renders the offline post-mortem report for a parsed trace (plus an
/// optional flight-recorder dump).
fn render_replay(
    path: &str,
    events: &TraceEvents,
    flight: Option<&FlightDump>,
    filter: Option<&FlightFilter>,
) -> String {
    let lanes = replay_lanes(events);
    let wall_us = events
        .spans
        .iter()
        .map(|s| s.ts_us + s.dur_us)
        .chain(events.counters.iter().map(|c| c.ts_us))
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!("msmr-top — offline replay of {path}\n\n"));
    out.push_str(&format!(
        "{} spans on {} solver lanes, {} counter samples, {:.3}s of trace\n",
        events.spans.len(),
        lanes.len(),
        events.counters.len(),
        wall_us as f64 / 1_000_000.0
    ));

    if !lanes.is_empty() {
        out.push_str(
            "\nsolver       spans  accepted    mean µs   histo p50/p99 µs  distribution\n",
        );
        for (solver, lane) in &lanes {
            let (glyphs, range) = histo_sparkline(&lane.histo.counts())
                .unwrap_or_else(|| (String::new(), "no samples".to_string()));
            out.push_str(&format!(
                "{solver:<10}{:>8}  {:>8}  {:>9.1}  {:>7.1}/{:<8.1} {} {}\n",
                lane.spans,
                lane.accepted,
                lane.total_us as f64 / lane.spans.max(1) as f64,
                lane.histo.percentile_us(50.0),
                lane.histo.percentile_us(99.0),
                glyphs,
                range
            ));
        }
    }

    // Counter tracks: per-name sample count and the value envelope.
    let mut tracks: std::collections::BTreeMap<&str, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for sample in &events.counters {
        let track = tracks.entry(sample.name.as_str()).or_insert((0, 0, 0));
        track.0 += 1;
        track.1 = sample.value;
        track.2 = track.2.max(sample.value);
    }
    if !tracks.is_empty() {
        out.push_str("\ncounter track         samples      last       max\n");
        for (name, (samples, last, max)) in &tracks {
            out.push_str(&format!("{name:<22}{samples:>7}  {last:>8}  {max:>8}\n"));
        }
    }

    if let Some(dump) = flight {
        out.push('\n');
        out.push_str(&render_flight(dump, filter));
    }
    out
}

/// The `--against` cross-check: every solver row of the saved snapshot
/// must have exactly as many trace spans as live verdicts, and the
/// trace must not carry spans for solvers the snapshot never saw.
fn verify_replay_against(events: &TraceEvents, snapshot: &StatsSnapshot) -> Result<(), String> {
    let lanes = replay_lanes(events);
    for (solver, row) in &snapshot.solvers {
        let spans = lanes.get(solver).map_or(0, |lane| lane.spans);
        if spans != row.verdicts {
            return Err(format!(
                "solver `{solver}`: trace holds {spans} spans but the live counter decided {}",
                row.verdicts
            ));
        }
    }
    for solver in lanes.keys() {
        if !snapshot.solvers.contains_key(solver) {
            return Err(format!(
                "solver `{solver}` has trace spans but no row in the snapshot"
            ));
        }
    }
    Ok(())
}

fn run_replay(options: &Options) -> Result<(), String> {
    let path = options.replay.as_deref().expect("replay checked by caller");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let flight = match &options.flight {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let dump: FlightDump = serde_json::from_str(text.trim())
                .map_err(|e| format!("{path}: bad flight dump: {e}"))?;
            Some(dump)
        }
        None => None,
    };
    if let Some(path) = &options.against {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let snapshot: StatsSnapshot =
            serde_json::from_str(text.trim()).map_err(|e| format!("{path}: bad snapshot: {e}"))?;
        verify_replay_against(&events, &snapshot).map_err(|e| format!("{path}: {e}"))?;
    }
    print!(
        "{}",
        render_replay(
            path,
            &events,
            flight.as_ref(),
            options.flight_filter.as_ref()
        )
    );
    if options.against.is_some() {
        println!("\nreplay OK: per-solver span counts match the live decision counters");
    }
    Ok(())
}

/// `--flight-dump`: fetch the live flight-recorder ring over the side
/// channel's `flight` command and render the dump view (with any
/// `--flight-filter` applied) — no trace file needed.
fn run_flight_dump(addr: &str, filter: Option<&FlightFilter>) -> Result<(), String> {
    let dump = fetch_flight_dump(addr).map_err(|e| format!("{addr}: {e}"))?;
    print!(
        "msmr-top — flight recorder dump from {addr}\n\n{}",
        render_flight(&dump, filter)
    );
    Ok(())
}

/// `--check-stream`: fold streamed deltas onto the baseline until a
/// quiescent frame arrives, then assert the fold equals a fresh legacy
/// fetch — the merge contract, checked against the live daemon.
fn run_check_stream(addr: &str, interval_ms: u64) -> Result<(), String> {
    let mut stream = StatsStream::connect(addr, interval_ms).map_err(|e| format!("{addr}: {e}"))?;
    let deadline = Instant::now() + CHECK_STREAM_DEADLINE;
    let mut frames = 0u64;
    loop {
        let frame = stream
            .next_frame()
            .map_err(|e| format!("{addr}: stream broke after {frames} frames: {e}"))?;
        frames += 1;
        if frame.is_quiescent() {
            let (_, live) = fetch_snapshot(addr)?;
            if &live == stream.snapshot() {
                println!(
                    "stream OK: baseline + {frames} delta frames == fresh snapshot \
                     ({} admits)",
                    live.counters.admits
                );
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "{addr}: folded stream never converged with a fresh snapshot \
                 ({frames} frames in {}s)",
                CHECK_STREAM_DEADLINE.as_secs()
            ));
        }
    }
}

/// RAII guard for the terminal's alternate screen: enters on
/// construction, restores (and re-shows the cursor) on drop, so every
/// exit path — including errors — leaves the terminal usable.
struct AltScreen;

impl AltScreen {
    fn enter() -> Self {
        print!("\x1b[?1049h\x1b[?25l");
        let _ = flush();
        AltScreen
    }
}

impl Drop for AltScreen {
    fn drop(&mut self) {
        print!("\x1b[?1049l\x1b[?25h");
        let _ = flush();
    }
}

fn flush() -> std::io::Result<()> {
    use std::io::Write;
    std::io::stdout().flush()
}

fn fetch_snapshot(addr: &str) -> Result<(String, StatsSnapshot), String> {
    let json = fetch_stats_json(addr).map_err(|e| format!("{addr}: {e}"))?;
    let snapshot = serde_json::from_str(&json).map_err(|e| format!("{addr}: bad snapshot: {e}"))?;
    Ok((json, snapshot))
}

fn run(options: &Options) -> Result<(), String> {
    if let Some(path) = &options.check_trace {
        let summary = check_trace(path, options.expect_spans, options.expect_counters)?;
        println!(
            "trace OK: {} spans, {} counter samples, {} solver lanes",
            summary.spans, summary.counters, summary.lanes
        );
        return Ok(());
    }
    if options.replay.is_some() {
        return run_replay(options);
    }
    let addr = options.addr.as_deref().expect("addr checked by the parser");
    if options.flight_dump {
        return run_flight_dump(addr, options.flight_filter.as_ref());
    }
    if options.check_stream {
        return run_check_stream(addr, options.interval_ms);
    }
    if options.once {
        let (json, snapshot) = fetch_snapshot(addr)?;
        if let Some(min) = options.min_admits {
            if snapshot.counters.admits < min {
                return Err(format!(
                    "{addr}: admits {} below required {min}",
                    snapshot.counters.admits
                ));
            }
            verify_histograms(&snapshot).map_err(|e| format!("{addr}: {e}"))?;
        }
        println!("{json}");
        return Ok(());
    }
    let _alt = options.tui.then(AltScreen::enter);
    let mut depths: Vec<u64> = Vec::new();
    let mut iteration = 0u64;
    // One persistent streaming connection per daemon lifetime: the
    // baseline arrives once, then delta frames pace the redraws. The
    // outer loop only reconnects after the daemon goes away.
    loop {
        let mut stream = match StatsStream::connect(addr, options.interval_ms) {
            Ok(stream) => stream,
            Err(e) if iteration == 0 => return Err(format!("{addr}: {e}")),
            Err(_) => {
                // The daemon bounced mid-watch; keep trying to reattach.
                std::thread::sleep(Duration::from_millis(options.interval_ms));
                continue;
            }
        };
        loop {
            let snapshot = stream.snapshot();
            depths.push(snapshot.gauges.queue_depth);
            if depths.len() > SPARK_WINDOW {
                depths.remove(0);
            }
            if options.tui {
                // Home the cursor and clear below, then one full frame
                // on the alternate screen.
                print!("\x1b[H\x1b[J{}", render_tui(snapshot, &depths));
            } else {
                // Clear + home, then one full frame.
                print!("\x1b[2J\x1b[H{}", render(snapshot, &depths));
            }
            let _ = flush();
            iteration += 1;
            if options.iterations != 0 && iteration >= options.iterations {
                return Ok(());
            }
            if stream.next_frame().is_err() {
                break;
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                eprintln!(
                    "usage: msmr-top --addr HOST:PORT [--interval-ms N] [--iterations N] [--tui]\n\
                     \x20      msmr-top --addr HOST:PORT --once [--min-admits N]\n\
                     \x20      msmr-top --addr HOST:PORT --check-stream [--interval-ms N]\n\
                     \x20      msmr-top --addr HOST:PORT --flight-dump [--flight-filter kind=K,session=S]\n\
                     \x20      msmr-top --check-trace FILE [--expect-spans N] [--expect-counters N]\n\
                     \x20      msmr-top --replay FILE [--flight DUMP] [--against SNAPSHOT]\n\
                     \x20                             [--flight-filter kind=K,session=S]"
                );
                return ExitCode::SUCCESS;
            }
            eprintln!("msmr-top: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("msmr-top: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_stats::{OpLatency, SessionRow, SolverRow};

    fn sample_snapshot() -> StatsSnapshot {
        let mut snapshot = StatsSnapshot::default();
        snapshot.counters.admits = 12;
        snapshot.counters.warm_decides = 9;
        snapshot.counters.cold_decides = 3;
        snapshot.counters.snapshot_quarantined = 1;
        snapshot.counters.deduped_ops = 4;
        snapshot.gauges.queue_depth = 2;
        snapshot.gauges.queue_capacity = 64;
        snapshot.ops.insert(
            "admit".into(),
            OpLatency {
                samples: 12,
                p50_us: 51.0,
                p99_us: 130.0,
                histo_buckets: vec![0, 0, 0, 0, 0, 0, 8, 3, 1],
                histo_p50_us: 63.0,
                histo_p99_us: 255.0,
            },
        );
        snapshot.solvers.insert(
            "OPDCA".into(),
            SolverRow {
                verdicts: 12,
                accepted: 11,
                warm: 12,
                sdca_calls: 300,
                elapsed_micros: 660,
                ..SolverRow::default()
            },
        );
        snapshot.sessions.push(SessionRow {
            name: "loadgen-7-0".into(),
            jobs: 8,
            version: 14,
            attached: 2,
        });
        snapshot
    }

    #[test]
    fn sparkline_scales_to_the_window_maximum() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 4, 8]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }

    #[test]
    fn render_includes_every_table() {
        let snapshot = sample_snapshot();
        let frame = render(&snapshot, &[0, 1, 2]);
        assert!(frame.contains("admits       12"));
        assert!(frame.contains("quarantined   1"));
        assert!(frame.contains("deduped     4"));
        assert!(frame.contains("75.0%"));
        assert!(frame.contains("OPDCA"));
        assert!(frame.contains("loadgen-7-0"));
        assert!(frame.contains("queue   2/64"));
    }

    #[test]
    fn tui_frame_shows_distributions_shards_and_solver_latency() {
        let mut snapshot = sample_snapshot();
        snapshot.gauges.sessions_per_shard = vec![3, 0, 1, 2];
        snapshot.gauges.live_sessions = 6;
        let frame = render_tui(&snapshot, &[0, 1, 2]);
        // Same counter header, plus the distribution table with the
        // histogram range and sparkline glyphs.
        assert!(frame.contains("admits       12"));
        assert!(frame.contains("latency distributions"));
        assert!(frame.contains("[32µs, 256µs)"));
        assert!(frame.chars().any(|c| SPARKS.contains(&c)));
        // Shard occupancy bars, one per shard, scaled to the busiest.
        assert!(frame.contains("shard 0"));
        assert!(frame.contains("shard 3"));
        assert!(frame.contains('█'));
        // Solver latency: 660 µs over 12 verdicts = 55.0 mean.
        assert!(frame.contains("55.0"));
        assert!(frame.contains("91.7%"));
        // No ANSI control codes inside the frame — the loop owns them.
        assert!(!frame.contains('\x1b'));
    }

    #[test]
    fn empty_histograms_render_without_a_range() {
        let mut snapshot = sample_snapshot();
        snapshot.ops.get_mut("admit").unwrap().histo_buckets = Vec::new();
        let frame = render_tui(&snapshot, &[]);
        assert!(frame.contains("no samples"));
    }

    #[test]
    fn histogram_verification_cross_checks_the_ring() {
        let mut snapshot = sample_snapshot();
        assert!(verify_histograms(&snapshot).is_ok());
        // A histogram that lost samples is an error...
        snapshot.ops.get_mut("admit").unwrap().histo_buckets = vec![1];
        let message = verify_histograms(&snapshot).unwrap_err();
        assert!(message.contains("histogram holds 1"));
        // ...as is a p99 estimate more than one bucket away.
        let lat = snapshot.ops.get_mut("admit").unwrap();
        lat.histo_buckets = vec![0, 0, 0, 0, 0, 0, 8, 3, 1];
        lat.histo_p99_us = 4095.0; // bucket 12 vs ring bucket 8
        let message = verify_histograms(&snapshot).unwrap_err();
        assert!(message.contains("more than one bucket"));
        // Ops with no samples are skipped entirely.
        snapshot.ops.get_mut("admit").unwrap().samples = 0;
        assert!(verify_histograms(&snapshot).is_ok());
    }

    fn sample_events() -> TraceEvents {
        use msmr_stats::{TraceCounterSample, TraceSpan};
        let mut events = TraceEvents::default();
        for (i, (solver, dur, accepted)) in [
            ("OPDCA", 40u64, true),
            ("OPDCA", 60, true),
            ("GREEDY", 500, false),
        ]
        .iter()
        .enumerate()
        {
            events.spans.push(TraceSpan {
                solver: (*solver).to_string(),
                ts_us: i as u64 * 1000,
                dur_us: *dur,
                seq: Some(i as u64),
                accepted: Some(*accepted),
            });
        }
        events.lanes.insert("OPDCA".into(), 1);
        events.lanes.insert("GREEDY".into(), 2);
        events.counters.push(TraceCounterSample {
            name: "queue depth".into(),
            ts_us: 2500,
            value: 7,
        });
        events
    }

    fn sample_dump() -> FlightDump {
        FlightDump {
            capacity: 1024,
            recorded: 2,
            dropped: 0,
            events: vec![
                Event {
                    seq: 0,
                    ts_us: 10,
                    kind: EventKind::Admit,
                    session: Some("tenant-0".into()),
                    op_seq: Some(1),
                },
                Event {
                    seq: 1,
                    ts_us: 20,
                    kind: EventKind::Overload,
                    session: None,
                    op_seq: None,
                },
            ],
        }
    }

    #[test]
    fn replay_report_rebuilds_lanes_histograms_and_counter_tracks() {
        let events = sample_events();
        let dump = sample_dump();
        let report = render_replay("run.trace", &events, Some(&dump), None);
        assert!(report.contains("offline replay of run.trace"));
        assert!(report.contains("3 spans on 2 solver lanes, 1 counter samples"));
        // Per-solver lanes: spans, accepts, mean, and a histogram range.
        assert!(report.contains("OPDCA"));
        assert!(report.contains("GREEDY"));
        assert!(report.contains("50.0")); // OPDCA mean of 40/60 µs
        assert!(report.contains("[32µs, 64µs)")); // OPDCA distribution span
        assert!(report.chars().any(|c| SPARKS.contains(&c)));
        // Counter tracks with the value envelope.
        assert!(report.contains("queue depth"));
        // Flight dump section: totals, per-kind tallies, event tail.
        assert!(report.contains("2 recorded, 0 dropped (capacity 1024)"));
        assert!(report.contains("Admit 1"));
        assert!(report.contains("Overload 1"));
        assert!(report.contains("tenant-0"));
        assert!(report.contains("seq=1"));
    }

    #[test]
    fn flight_filter_parses_pairs_and_rejects_nonsense() {
        let filter = FlightFilter::parse("kind=overload").unwrap();
        assert_eq!(filter.kind, Some(EventKind::Overload));
        assert_eq!(filter.session, None);
        // Kind names are case-insensitive and tolerate -/_ separators.
        let filter = FlightFilter::parse("kind=Snapshot-Write").unwrap();
        assert_eq!(filter.kind, Some(EventKind::SnapshotWrite));
        let filter = FlightFilter::parse("kind=ADMIT, session=tenant-0").unwrap();
        assert_eq!(filter.kind, Some(EventKind::Admit));
        assert_eq!(filter.session.as_deref(), Some("tenant-0"));
        assert_eq!(filter.describe(), "kind=Admit session=tenant-0");
        assert!(FlightFilter::parse("")
            .unwrap_err()
            .contains("empty filter"));
        assert!(FlightFilter::parse("overload")
            .unwrap_err()
            .contains("key=value"));
        assert!(FlightFilter::parse("kind=bogus")
            .unwrap_err()
            .contains("unknown event kind"));
        assert!(FlightFilter::parse("solver=OPDCA")
            .unwrap_err()
            .contains("unknown filter key"));
    }

    #[test]
    fn flight_filter_narrows_tallies_and_tail_but_not_totals() {
        let dump = sample_dump();
        // Unfiltered: both kinds tallied, both events in the tail.
        let view = render_flight(&dump, None);
        assert!(view.contains("Admit 1"));
        assert!(view.contains("Overload 1"));
        assert!(!view.contains("filter"));
        // kind filter: only the matching event survives; the honest
        // recorded/dropped totals stay.
        let filter = FlightFilter::parse("kind=overload").unwrap();
        let view = render_flight(&dump, Some(&filter));
        assert!(view.contains("2 recorded, 0 dropped (capacity 1024)"));
        assert!(view.contains("filter kind=Overload: 1 of 2 events match"));
        assert!(view.contains("Overload 1"));
        assert!(!view.contains("Admit 1"));
        assert!(!view.contains("tenant-0"));
        assert!(view.contains("last 1 events:"));
        // session filter: the unlabeled overload event drops out.
        let filter = FlightFilter::parse("session=tenant-0").unwrap();
        let view = render_flight(&dump, Some(&filter));
        assert!(view.contains("filter session=tenant-0: 1 of 2 events match"));
        assert!(view.contains("tenant-0"));
        assert!(!view.contains("Overload 1"));
        // Conjunction that nothing satisfies.
        let filter = FlightFilter::parse("kind=overload,session=tenant-0").unwrap();
        let view = render_flight(&dump, Some(&filter));
        assert!(view.contains("0 of 2 events match"));
        assert!(view.contains("last 0 events:"));
        // The replay fold-in threads the same filter through.
        let report = render_replay("run.trace", &sample_events(), Some(&dump), Some(&filter));
        assert!(report.contains("0 of 2 events match"));
    }

    #[test]
    fn replay_against_cross_checks_span_counts_with_the_snapshot() {
        let events = sample_events();
        let mut snapshot = StatsSnapshot::default();
        snapshot.solvers.insert(
            "OPDCA".into(),
            SolverRow {
                verdicts: 2,
                ..SolverRow::default()
            },
        );
        snapshot.solvers.insert(
            "GREEDY".into(),
            SolverRow {
                verdicts: 1,
                ..SolverRow::default()
            },
        );
        assert!(verify_replay_against(&events, &snapshot).is_ok());
        // A solver that decided more than the trace recorded fails...
        snapshot.solvers.get_mut("OPDCA").unwrap().verdicts = 3;
        let message = verify_replay_against(&events, &snapshot).unwrap_err();
        assert!(message.contains("holds 2 spans"));
        // ...as do trace spans for a solver the snapshot never saw.
        snapshot.solvers.get_mut("OPDCA").unwrap().verdicts = 2;
        snapshot.solvers.remove("GREEDY");
        let message = verify_replay_against(&events, &snapshot).unwrap_err();
        assert!(message.contains("no row in the snapshot"));
    }

    #[test]
    fn parser_accepts_the_replay_and_stream_modes() {
        let options = parse_args(&[
            "--replay".into(),
            "run.trace".into(),
            "--flight".into(),
            "flight.json".into(),
            "--against".into(),
            "snap.json".into(),
        ])
        .unwrap();
        assert_eq!(options.replay.as_deref(), Some("run.trace"));
        assert_eq!(options.flight.as_deref(), Some("flight.json"));
        assert_eq!(options.against.as_deref(), Some("snap.json"));
        let options = parse_args(&[
            "--addr".into(),
            "127.0.0.1:9".into(),
            "--check-stream".into(),
        ])
        .unwrap();
        assert!(options.check_stream);
        // --flight without --replay is refused, as is --check-stream
        // without an address.
        assert!(parse_args(&["--flight".into(), "x.json".into()]).is_err());
        assert!(parse_args(&["--check-stream".into()]).is_err());
    }

    #[test]
    fn parser_wires_the_flight_dump_and_filter_modes() {
        let options = parse_args(&[
            "--addr".into(),
            "127.0.0.1:9".into(),
            "--flight-dump".into(),
            "--flight-filter".into(),
            "kind=overload,session=t-1".into(),
        ])
        .unwrap();
        assert!(options.flight_dump);
        let filter = options.flight_filter.unwrap();
        assert_eq!(filter.kind, Some(EventKind::Overload));
        assert_eq!(filter.session.as_deref(), Some("t-1"));
        // The filter also rides the offline fold-in.
        let options = parse_args(&[
            "--replay".into(),
            "run.trace".into(),
            "--flight".into(),
            "flight.json".into(),
            "--flight-filter".into(),
            "session=t-1".into(),
        ])
        .unwrap();
        assert!(options.flight_filter.is_some());
        // A filter with no flight view to apply to is refused, as is
        // mixing the live dump with the offline modes, a dump with no
        // address, and a malformed filter spec.
        assert!(parse_args(&[
            "--addr".into(),
            "127.0.0.1:9".into(),
            "--flight-filter".into(),
            "kind=admit".into(),
        ])
        .is_err());
        assert!(parse_args(&[
            "--replay".into(),
            "run.trace".into(),
            "--flight-filter".into(),
            "kind=admit".into(),
        ])
        .is_err());
        assert!(parse_args(&[
            "--replay".into(),
            "run.trace".into(),
            "--flight-dump".into(),
        ])
        .is_err());
        assert!(parse_args(&["--flight-dump".into()]).is_err());
        assert!(parse_args(&[
            "--addr".into(),
            "127.0.0.1:9".into(),
            "--flight-dump".into(),
            "--flight-filter".into(),
            "kind=bogus".into(),
        ])
        .is_err());
    }

    #[test]
    fn parser_rejects_missing_addr_and_unknown_flags() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
        let options =
            parse_args(&["--addr".into(), "127.0.0.1:9".into(), "--once".into()]).unwrap();
        assert!(options.once);
        assert!(!options.tui);
        let options = parse_args(&[
            "--addr".into(),
            "127.0.0.1:9".into(),
            "--tui".into(),
            "--iterations".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(options.tui);
        assert_eq!(options.iterations, 3);
        let options = parse_args(&[
            "--check-trace".into(),
            "x.trace".into(),
            "--expect-counters".into(),
            "5".into(),
        ])
        .unwrap();
        assert_eq!(options.check_trace.as_deref(), Some("x.trace"));
        assert_eq!(options.expect_counters, Some(5));
    }
}
