//! The serde-serializable metrics model.
//!
//! [`StatsSnapshot`] is the single point-in-time view both stats
//! surfaces serve — the protocol-v4 `stats` op and the `--stats-addr`
//! side channel — and what `msmr-top` renders. Counters are monotonic
//! since daemon boot; gauges are sampled at snapshot time by whichever
//! layer owns them (the cluster engine fills per-shard session counts
//! and worker-queue depth, the classic server leaves them at their
//! defaults); latency percentiles come from the fixed-size rings.
//!
//! Every type here (de)serializes through the vendored serde, so maps
//! are `BTreeMap` (deterministic key order on the wire) and optional
//! fields round-trip as explicit `null`s like the rest of the protocol.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Monotonic event counters since daemon boot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsCounters {
    /// Accepted admissions.
    pub admits: u64,
    /// Rejected admissions.
    pub rejects: u64,
    /// Successful withdrawals.
    pub withdraws: u64,
    /// Session (re)submissions.
    pub submits: u64,
    /// Solver verdicts produced by a warm path (no provenance marker).
    pub warm_decides: u64,
    /// Solver verdicts produced by the cold `cold_fallback` adapter.
    pub cold_decides: u64,
    /// Solver verdicts synthesized through an implication shortcut.
    pub implied_decides: u64,
    /// Requests refused with a typed `Overload` frame.
    pub overloads: u64,
    /// Sessions evicted by the TTL reaper.
    pub evictions: u64,
    /// Session snapshots written to the snapshot store.
    pub snapshot_writes: u64,
    /// Spans exported to the trace-event writer.
    pub trace_spans: u64,
    /// Corrupt snapshot files quarantined (renamed to `.corrupt`)
    /// instead of aborting daemon boot.
    pub snapshot_quarantined: u64,
    /// Replayed admit/withdraw ops acknowledged by seq-dedupe without
    /// being re-applied (the client resumed after a reconnect and
    /// re-issued an op the session had already decided).
    pub deduped_ops: u64,
}

/// Point-in-time gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsGauges {
    /// Clients currently attached (connections with a live session).
    pub attached_clients: u64,
    /// Live sessions across all shards.
    pub live_sessions: u64,
    /// Live sessions per store shard (empty for the classic server).
    pub sessions_per_shard: Vec<u64>,
    /// Tasks waiting in the worker-pool queue.
    pub queue_depth: u64,
    /// Worker-pool queue capacity (0 = inline execution, no pool).
    pub queue_capacity: u64,
    /// Worker threads in the pool.
    pub workers: u64,
}

/// Latency summary for one op: windowed percentiles from its
/// fixed-size ring plus the full-lifetime log-bucket distribution from
/// its [`crate::LatencyHisto`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Samples ever recorded (monotonic, not capped by the ring).
    pub samples: u64,
    /// Nearest-rank p50 over the ring window, microseconds.
    pub p50_us: f64,
    /// Nearest-rank p99 over the ring window, microseconds.
    pub p99_us: f64,
    /// Log-bucket counts over every sample since boot: element `i`
    /// counts samples in pow-2 bucket `i` (see
    /// [`crate::bucket_bounds`]), trimmed after the last non-empty
    /// bucket. Empty when nothing was recorded.
    pub histo_buckets: Vec<u64>,
    /// Histogram-estimated p50 (bucket upper edge), microseconds.
    pub histo_p50_us: f64,
    /// Histogram-estimated p99 (bucket upper edge), microseconds.
    pub histo_p99_us: f64,
}

/// Aggregated per-solver work counters, fed from
/// [`msmr_sched::SolverStats`] by the registry's verdict hook.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverRow {
    /// Verdicts produced by this solver.
    pub verdicts: u64,
    /// Verdicts that accepted the job set.
    pub accepted: u64,
    /// Warm verdicts (neither cold fallback nor implied).
    pub warm: u64,
    /// Cold-adapter verdicts (`cold_fallback` provenance).
    pub cold: u64,
    /// Verdicts synthesized through an implication shortcut.
    pub implied: u64,
    /// Total `S_DCA` schedulability-test calls charged.
    pub sdca_calls: u64,
    /// Total search nodes explored.
    pub nodes_explored: u64,
    /// Total microseconds this solver spent producing verdicts (the
    /// sum of its verdicts' `elapsed_micros`; mean latency =
    /// `elapsed_micros / verdicts`).
    pub elapsed_micros: u64,
}

/// One live session, as the cluster store sees it at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRow {
    /// Session name.
    pub name: String,
    /// Admitted jobs currently in the session.
    pub jobs: u64,
    /// Mutation version (increments on submit/admit/withdraw).
    pub version: u64,
    /// Clients currently attached to this session.
    pub attached: u64,
}

/// The complete serializable stats view served over both channels.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Monotonic counters since boot.
    pub counters: StatsCounters,
    /// Gauges sampled at snapshot time.
    pub gauges: StatsGauges,
    /// Per-op latency summaries, keyed by op name
    /// (`admit`/`withdraw`/`submit`).
    pub ops: BTreeMap<String, OpLatency>,
    /// Per-solver work table, keyed by solver name.
    pub solvers: BTreeMap<String, SolverRow>,
    /// Live sessions (cluster daemons only; sorted by name).
    pub sessions: Vec<SessionRow>,
}

impl StatsCounters {
    /// Adds every counter of `other` into `self` (tier aggregation).
    pub fn absorb(&mut self, other: &StatsCounters) {
        self.admits += other.admits;
        self.rejects += other.rejects;
        self.withdraws += other.withdraws;
        self.submits += other.submits;
        self.warm_decides += other.warm_decides;
        self.cold_decides += other.cold_decides;
        self.implied_decides += other.implied_decides;
        self.overloads += other.overloads;
        self.evictions += other.evictions;
        self.snapshot_writes += other.snapshot_writes;
        self.trace_spans += other.trace_spans;
        self.snapshot_quarantined += other.snapshot_quarantined;
        self.deduped_ops += other.deduped_ops;
    }
}

impl SolverRow {
    /// Adds every counter of `other` into `self` (tier aggregation).
    pub fn absorb(&mut self, other: &SolverRow) {
        self.verdicts += other.verdicts;
        self.accepted += other.accepted;
        self.warm += other.warm;
        self.cold += other.cold;
        self.implied += other.implied;
        self.sdca_calls += other.sdca_calls;
        self.nodes_explored += other.nodes_explored;
        self.elapsed_micros += other.elapsed_micros;
    }
}

impl OpLatency {
    /// Folds `other` into `self` through the log-bucket histograms —
    /// how a router tier aggregates per-backend latency summaries.
    ///
    /// Histogram buckets are element-wise sums (bucket `i` is bucket
    /// `i` on every daemon — see [`crate::bucket_bounds`]) and all four
    /// percentile fields are recomputed from the merged counts via
    /// [`crate::percentile_from_counts`]: the windowed ring samples
    /// behind `p50_us`/`p99_us` are not mergeable across processes, so
    /// a merged summary reports histogram estimates in those fields
    /// too (full-lifetime, upper-bucket-edge semantics).
    pub fn absorb(&mut self, other: &OpLatency) {
        self.samples += other.samples;
        if self.histo_buckets.len() < other.histo_buckets.len() {
            self.histo_buckets.resize(other.histo_buckets.len(), 0);
        }
        for (mine, theirs) in self.histo_buckets.iter_mut().zip(&other.histo_buckets) {
            *mine += *theirs;
        }
        let p50 = crate::percentile_from_counts(&self.histo_buckets, 0.50);
        let p99 = crate::percentile_from_counts(&self.histo_buckets, 0.99);
        self.histo_p50_us = p50;
        self.histo_p99_us = p99;
        self.p50_us = p50;
        self.p99_us = p99;
    }
}

impl StatsSnapshot {
    /// Warm share of all solver verdicts, `None` before any verdict.
    #[must_use]
    pub fn warm_ratio(&self) -> Option<f64> {
        let c = &self.counters;
        let total = c.warm_decides + c.cold_decides + c.implied_decides;
        (total > 0).then(|| c.warm_decides as f64 / total as f64)
    }

    /// Merges per-backend snapshots into one tier-wide view — what the
    /// router serves on its own `--stats-addr`.
    ///
    /// Counters and per-solver rows sum field by field, so every merged
    /// counter equals the exact sum of the backends' counters. Scalar
    /// gauges sum; `sessions_per_shard` concatenates per backend in
    /// argument order (backend 0's shards first), as do the per-session
    /// rows (re-sorted by name, ties in backend order). Per-op latency
    /// merges through [`OpLatency::absorb`] — histogram buckets sum and
    /// every percentile field is recomputed from the merged buckets.
    #[must_use]
    pub fn merged(parts: &[StatsSnapshot]) -> StatsSnapshot {
        let mut merged = StatsSnapshot::default();
        for part in parts {
            merged.counters.absorb(&part.counters);
            merged.gauges.attached_clients += part.gauges.attached_clients;
            merged.gauges.live_sessions += part.gauges.live_sessions;
            merged
                .gauges
                .sessions_per_shard
                .extend_from_slice(&part.gauges.sessions_per_shard);
            merged.gauges.queue_depth += part.gauges.queue_depth;
            merged.gauges.queue_capacity += part.gauges.queue_capacity;
            merged.gauges.workers += part.gauges.workers;
            for (op, latency) in &part.ops {
                merged.ops.entry(op.clone()).or_default().absorb(latency);
            }
            for (solver, row) in &part.solvers {
                merged
                    .solvers
                    .entry(solver.clone())
                    .or_default()
                    .absorb(row);
            }
            merged.sessions.extend(part.sessions.iter().cloned());
        }
        merged.sessions.sort_by(|a, b| a.name.cmp(&b.name));
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snapshot = StatsSnapshot {
            counters: StatsCounters {
                admits: 3,
                rejects: 1,
                cold_decides: 2,
                warm_decides: 6,
                ..StatsCounters::default()
            },
            gauges: StatsGauges {
                attached_clients: 2,
                live_sessions: 4,
                sessions_per_shard: vec![1, 0, 2, 1],
                queue_depth: 3,
                queue_capacity: 64,
                workers: 2,
            },
            ..StatsSnapshot::default()
        };
        snapshot.ops.insert(
            "admit".into(),
            OpLatency {
                samples: 4,
                p50_us: 51.0,
                p99_us: 130.0,
                histo_buckets: vec![0, 0, 0, 0, 0, 0, 3, 1],
                histo_p50_us: 63.0,
                histo_p99_us: 127.0,
            },
        );
        snapshot.solvers.insert(
            "OPDCA".into(),
            SolverRow {
                verdicts: 8,
                accepted: 7,
                warm: 8,
                sdca_calls: 120,
                ..SolverRow::default()
            },
        );
        snapshot.sessions.push(SessionRow {
            name: "loadgen-7-0".into(),
            jobs: 12,
            version: 19,
            attached: 2,
        });
        let json = serde_json::to_string(&snapshot).expect("snapshots serialize");
        let parsed: StatsSnapshot = serde_json::from_str(&json).expect("snapshots parse");
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn merged_sums_counters_exactly_and_concatenates_gauges() {
        let mut a = StatsSnapshot::default();
        a.counters.admits = 10;
        a.counters.rejects = 2;
        a.counters.deduped_ops = 1;
        a.gauges.live_sessions = 3;
        a.gauges.sessions_per_shard = vec![2, 1];
        a.gauges.workers = 4;
        a.sessions.push(SessionRow {
            name: "zeta".into(),
            jobs: 5,
            version: 7,
            attached: 1,
        });
        let mut b = StatsSnapshot::default();
        b.counters.admits = 7;
        b.counters.overloads = 4;
        b.gauges.live_sessions = 1;
        b.gauges.sessions_per_shard = vec![0, 1];
        b.gauges.workers = 2;
        b.sessions.push(SessionRow {
            name: "alpha".into(),
            jobs: 2,
            version: 3,
            attached: 0,
        });
        b.solvers.insert(
            "OPDCA".into(),
            SolverRow {
                verdicts: 5,
                accepted: 4,
                ..SolverRow::default()
            },
        );

        let merged = StatsSnapshot::merged(&[a.clone(), b.clone()]);
        assert_eq!(merged.counters.admits, 17);
        assert_eq!(merged.counters.rejects, 2);
        assert_eq!(merged.counters.overloads, 4);
        assert_eq!(merged.counters.deduped_ops, 1);
        assert_eq!(merged.gauges.live_sessions, 4);
        assert_eq!(merged.gauges.workers, 6);
        assert_eq!(merged.gauges.sessions_per_shard, vec![2, 1, 0, 1]);
        let names: Vec<&str> = merged.sessions.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(merged.solvers["OPDCA"].verdicts, 5);
        // Merging one snapshot is the identity on its counters.
        assert_eq!(StatsSnapshot::merged(&[a.clone()]).counters, a.counters);
        assert_eq!(
            StatsSnapshot::merged(&[]).counters,
            StatsCounters::default()
        );
    }

    #[test]
    fn merged_op_latency_recomputes_percentiles_from_summed_buckets() {
        let mut a = StatsSnapshot::default();
        a.ops.insert(
            "admit".into(),
            OpLatency {
                samples: 3,
                p50_us: 10.0,
                p99_us: 12.0,
                histo_buckets: vec![0, 0, 0, 0, 3], // three samples in [8,16)
                histo_p50_us: 15.0,
                histo_p99_us: 15.0,
            },
        );
        let mut b = StatsSnapshot::default();
        b.ops.insert(
            "admit".into(),
            OpLatency {
                samples: 1,
                p50_us: 1500.0,
                p99_us: 1500.0,
                histo_buckets: vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1], // [1024,2048)
                histo_p50_us: 2047.0,
                histo_p99_us: 2047.0,
            },
        );
        let merged = StatsSnapshot::merged(&[a, b]);
        let admit = &merged.ops["admit"];
        assert_eq!(admit.samples, 4);
        assert_eq!(admit.histo_buckets.iter().sum::<u64>(), 4);
        // p50 rank 2 of 4 → the [8,16) bucket; p99 rank 4 → [1024,2048).
        assert_eq!(admit.histo_p50_us, 15.0);
        assert_eq!(admit.histo_p99_us, 2047.0);
        // The windowed ring fields carry the histogram estimates after a
        // merge (rings are not mergeable across processes).
        assert_eq!(admit.p50_us, 15.0);
        assert_eq!(admit.p99_us, 2047.0);
    }

    #[test]
    fn warm_ratio_handles_the_empty_and_mixed_cases() {
        let mut snapshot = StatsSnapshot::default();
        assert_eq!(snapshot.warm_ratio(), None);
        snapshot.counters.warm_decides = 3;
        snapshot.counters.cold_decides = 1;
        assert_eq!(snapshot.warm_ratio(), Some(0.75));
    }
}
