//! `msmr-stats` — live observability for the admission daemons.
//!
//! The daemons of this workspace (`msmr-served` classic and `--cluster`)
//! serve online admission traffic, but until this crate the only
//! visibility was post-hoc `BENCH_kernels.json` entries. `msmr-stats`
//! is the missing live layer, modeled on sched_ext's `scx_stats` +
//! `scxtop` split: a small serializable metrics model, a lock-cheap
//! registry every layer feeds, and tooling on top.
//!
//! * [`StatsRegistry`] — atomics-only monotonic counters (admits,
//!   rejects, withdraws, warm vs `cold_fallback` decides, overloads,
//!   evictions, snapshot writes), an attached-clients gauge, fixed-size
//!   [`LatencyRing`]s per op yielding windowed p50/p99, and log-bucket
//!   [`LatencyHisto`]s fed by the same `record_*` calls yielding the
//!   full-lifetime latency distribution. The serve session layer, the
//!   cluster engine/store/worker-pool and the solver registry (through
//!   its verdict hook) all feed the same instance; recording a sample
//!   is a handful of relaxed atomic ops, so the hot admission path
//!   never takes a lock for a counter.
//! * [`StatsSnapshot`] — the serde-serializable point-in-time view
//!   ([`model`]): counters, gauges (live sessions per shard, worker
//!   queue depth), per-op latency percentiles, a per-solver work table
//!   aggregated from [`msmr_sched::SolverStats`], and per-session rows.
//!   It travels two ways: as the protocol-v4 `stats` op answered by both
//!   daemons, and over the [`listener`] side channel (`--stats-addr`) so
//!   scraping never competes with admission traffic. The side channel
//!   also upgrades to a streaming mode — one baseline snapshot, then
//!   periodic [`StatsDelta`] frames whose fold reproduces the live
//!   snapshot exactly ([`delta`], pinned by `tests/delta_props.rs`) —
//!   and answers `flight` with the recorder dump.
//! * [`FlightRecorder`] — a fixed-capacity, lock-cheap ring of
//!   structured [`Event`]s ([`events`]) fed from the same seams as the
//!   counters: admit/reject/withdraw with session and seq, overload
//!   bounces, TTL evictions, snapshot writes and quarantines, seq
//!   conflicts, dedups, client attach/detach. Dumpable as seq-ordered
//!   JSON over the side channel, to `--flight-out` on shutdown
//!   (including SIGTERM) and from a panic hook — the daemon's black
//!   box, consumed by `msmr-chaos` post-failure accounting.
//! * [`TraceWriter`] — per-solve span export as Chrome trace-event JSON
//!   (`--trace-out`): one complete `"X"` event per solver per decision
//!   on a stable per-solver lane (`tid`), `"M"` metadata events naming
//!   the process and each lane, periodic `"C"` counter events for
//!   saturation gauges, args carrying the full `SolverStats`, so an
//!   entire replay opens in Perfetto with one named track per solver
//!   and counter tracks beside the spans.
//! * `msmr-top` — a std-only terminal dashboard over the side channel:
//!   periodic redraw (plain repaint, or a full-screen `--tui` mode with
//!   histogram sparklines), per-session and per-solver tables,
//!   warm/cold ratio and a queue-depth sparkline — fed by one held
//!   streaming connection, not reconnect-per-poll. Its `--once` /
//!   `--check-stream` / `--check-trace` modes double as the validators
//!   the CI smoke scripts use, and `--replay` renders an offline
//!   post-mortem from a recorded trace (plus optional flight dump).
//!
//! Instrumentation is provenance-only by construction: nothing in this
//! crate touches a [`msmr_sched::Verdict`], so the byte-identity
//! contract between warm and cold evaluation is unaffected (pinned by
//! `msmr_serve::normalized_verdict_json` and its unit test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod events;
pub mod histo;
pub mod listener;
pub mod model;
pub mod percentile;
pub mod registry;
pub mod ring;
pub mod trace;

pub use delta::{OpLatencyDelta, StatsDelta};
pub use events::{Event, EventKind, FlightDump, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use histo::{bucket_bounds, bucket_index, percentile_from_counts, LatencyHisto, HISTO_BUCKETS};
pub use listener::{
    fetch_flight_dump, fetch_stats_json, serve_stats, serve_stats_channel, FlightProvider,
    SnapshotProvider, StatsStream, DEFAULT_STREAM_INTERVAL_MS,
};
pub use model::{OpLatency, SessionRow, SolverRow, StatsCounters, StatsGauges, StatsSnapshot};
pub use percentile::nearest_rank;
pub use registry::StatsRegistry;
pub use ring::LatencyRing;
pub use trace::{
    parse_trace, validate_trace, TraceCounterSample, TraceEvents, TraceSpan, TraceSummary,
    TraceWriter,
};
