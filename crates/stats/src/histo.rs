//! Fixed-size log-bucket latency histograms.
//!
//! The rings ([`crate::LatencyRing`]) answer "what were the recent
//! percentiles" over a sliding sample window; the histogram answers
//! "what does the whole distribution look like since boot" in O(64)
//! space no matter how many samples land. Buckets are powers of two
//! over microseconds — bucket `i` holds samples whose bit length is
//! `i`, i.e. `[2^(i-1), 2^i)` µs, with bucket 0 for sub-microsecond
//! (`0`) samples and the last bucket absorbing everything above
//! `2^62` µs — so one cache line of counters spans nanosecond blips to
//! multi-hour stalls with bounded (±1 bucket, i.e. ≤2×) value error.
//!
//! Recording is a single relaxed `fetch_add`; merging and snapshotting
//! are plain bucket sums, which makes per-shard histograms foldable
//! into a daemon-wide one without locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of pow-2 buckets. 64 covers the full `u64` microsecond range.
pub const HISTO_BUCKETS: usize = 64;

/// A fixed-size, atomic, mergeable log-bucket latency histogram over
/// microsecond samples.
///
/// Unlike the ring it never forgets: counts are monotonic since
/// creation, so percentile estimates reflect the full lifetime
/// distribution. The estimate returned for a percentile is the
/// *inclusive upper edge* of the bucket the nearest-rank sample landed
/// in (`2^i - 1` µs for bucket `i`), which keeps the estimate inside
/// the same bucket as the true sample — "agrees within one bucket" by
/// construction whenever ring and histogram saw the same samples.
#[derive(Debug)]
pub struct LatencyHisto {
    buckets: Vec<AtomicU64>,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket a microsecond sample lands in: its bit length, clamped
/// to the last bucket. `0` → bucket 0; `[2^(i-1), 2^i)` → bucket `i`.
#[must_use]
pub fn bucket_index(micros: u64) -> usize {
    ((u64::BITS - micros.leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
}

/// The half-open `[lower, upper)` microsecond range of bucket `index`
/// (the last bucket's upper bound is `u64::MAX`).
///
/// # Panics
///
/// Panics when `index >= HISTO_BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTO_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 1),
        63 => (1 << 62, u64::MAX),
        i => (1 << (i - 1), 1 << i),
    }
}

impl LatencyHisto {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHisto {
            buckets: (0..HISTO_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one latency sample in microseconds.
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded (monotonic).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Adds every bucket of `other` into `self` — folding per-shard
    /// histograms into an aggregate.
    pub fn merge(&self, other: &LatencyHisto) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let count = theirs.load(Ordering::Relaxed);
            if count > 0 {
                mine.fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// Point-in-time copy of the bucket counts, trimmed after the last
    /// non-empty bucket (an empty histogram yields an empty vec). The
    /// trimmed form is what the serializable [`crate::OpLatency`]
    /// carries — bucket `i` of the snapshot is still bucket `i` of the
    /// histogram.
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let used = counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |last| last + 1);
        counts.truncate(used);
        counts
    }

    /// Nearest-rank percentile estimate in microseconds: the inclusive
    /// upper edge of the bucket holding the rank-`⌈p·n⌉` sample
    /// (`0.0` when empty). See [`percentile_from_counts`].
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> f64 {
        percentile_from_counts(&self.counts(), p)
    }
}

/// Nearest-rank percentile estimate over (possibly trimmed) log-bucket
/// counts, as produced by [`LatencyHisto::counts`]: walks the
/// cumulative counts to the bucket containing the rank-`⌈p·n⌉` sample
/// and returns that bucket's inclusive upper edge (`2^i - 1` µs), so
/// the estimate lies in the same bucket as the true sample. `0.0` when
/// the histogram is empty.
#[must_use]
pub fn percentile_from_counts(counts: &[u64], p: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            let (_, upper) = bucket_bounds(i.min(HISTO_BUCKETS - 1));
            return (upper - 1) as f64;
        }
    }
    // Unreachable: the cumulative sum reaches `total >= rank`.
    (u64::MAX - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_follows_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
    }

    #[test]
    fn bounds_and_index_are_consistent() {
        for index in 0..HISTO_BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert!(lower < upper);
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper - 1), index);
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let histo = LatencyHisto::new();
        assert_eq!(histo.total(), 0);
        assert!(histo.counts().is_empty());
        assert_eq!(histo.percentile_us(0.99), 0.0);
    }

    #[test]
    fn counts_trim_after_the_last_nonempty_bucket() {
        let histo = LatencyHisto::new();
        histo.record(0); // bucket 0
        histo.record(5); // bucket 3
        let counts = histo.counts();
        assert_eq!(counts, vec![1, 0, 0, 1]);
        assert_eq!(histo.total(), 2);
    }

    #[test]
    fn percentiles_land_in_the_sample_bucket() {
        let histo = LatencyHisto::new();
        for v in [50u64, 70, 90, 1500] {
            histo.record(v);
        }
        // p50 rank 2 → sample 70 (bucket 7, [64,128)); estimate = 127.
        assert_eq!(histo.percentile_us(0.50), 127.0);
        assert_eq!(bucket_index(histo.percentile_us(0.50) as u64), 7);
        // p99 rank 4 → sample 1500 (bucket 11, [1024,2048)).
        assert_eq!(histo.percentile_us(0.99), 2047.0);
    }

    #[test]
    fn merge_adds_bucket_counts() {
        let a = LatencyHisto::new();
        let b = LatencyHisto::new();
        a.record(10);
        b.record(10);
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[bucket_index(10)], 2);
        assert_eq!(a.counts()[bucket_index(100_000)], 1);
        // The source is unchanged.
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn concurrent_recording_never_loses_samples() {
        let histo = std::sync::Arc::new(LatencyHisto::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let histo = std::sync::Arc::clone(&histo);
                scope.spawn(move || {
                    for i in 0..250u64 {
                        histo.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(histo.total(), 1000);
    }
}
