//! The `--stats-addr` side channel.
//!
//! A tiny TCP listener on its own thread with its own socket, so
//! scraping (dashboards, CI asserts, `watch`-style polling) never
//! competes with admission traffic for the daemon's accept loop or
//! worker pool. The accept loop is nonblocking with a short poll, keyed
//! off the same shutdown flag as the main server, mirroring the
//! daemon's acceptor.
//!
//! Every connection first receives one JSON [`StatsSnapshot`] line —
//! byte-identical to the historical one-line-per-connection encoding,
//! so legacy pollers ([`fetch_stats_json`]) keep working unchanged. The
//! client may then speak a one-line command:
//!
//! * *(nothing — close)* — the legacy poll: one snapshot, done.
//! * `stream [interval_ms]` — the connection stays open and receives
//!   one JSON [`StatsDelta`] line per interval; the snapshot already
//!   sent is the baseline, and folding the deltas onto it with
//!   [`crate::delta::apply`] reconstructs the server's snapshot at
//!   every frame exactly (the merge contract pinned in
//!   `tests/delta_props.rs`).
//! * `flight` — one JSON [`FlightDump`] line (the flight recorder's
//!   seq-ordered recent events), then close.
//!
//! Side-channel connections are observability, not admission clients:
//! they never touch the attached-clients gauge (pinned by a regression
//! test below), so a dashboard polling or streaming cannot distort the
//! very gauge it displays.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::delta::{self, StatsDelta};
use crate::events::FlightDump;
use crate::model::StatsSnapshot;

/// Poll interval of the nonblocking accept loop (and the shutdown
/// check granularity of streaming connections).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// How long a fresh connection may take to announce a command before
/// the server treats it as a legacy one-shot poll and closes.
const COMMAND_WINDOW: Duration = Duration::from_millis(150);

/// Streaming interval when the `stream` command names none.
pub const DEFAULT_STREAM_INTERVAL_MS: u64 = 1000;

/// Snapshot provider: called once per connection plus once per
/// streamed frame.
pub type SnapshotProvider = Arc<dyn Fn() -> StatsSnapshot + Send + Sync>;

/// Flight-dump provider for the `flight` command.
pub type FlightProvider = Arc<dyn Fn() -> FlightDump + Send + Sync>;

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves the side channel until
/// `shutdown` is raised. Returns the bound address (useful with port 0)
/// and the listener thread's join handle.
///
/// `provider` is called once per connection (and once per streamed
/// frame); the daemons pass a closure that layers their gauges over
/// `StatsRegistry::snapshot`. Connections without a flight provider
/// answer the `flight` command with an empty dump; see
/// [`serve_stats_channel`].
///
/// # Errors
///
/// Returns the underlying I/O error when the address cannot be bound.
pub fn serve_stats(
    addr: &str,
    provider: SnapshotProvider,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    serve_stats_channel(addr, provider, None, shutdown)
}

/// [`serve_stats`] with a flight-dump provider wired to the `flight`
/// command.
///
/// # Errors
///
/// Returns the underlying I/O error when the address cannot be bound.
pub fn serve_stats_channel(
    addr: &str,
    provider: SnapshotProvider,
    flight: Option<FlightProvider>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    connections.retain(|conn| !conn.is_finished());
                    let provider = Arc::clone(&provider);
                    let flight = flight.clone();
                    let shutdown = Arc::clone(&shutdown);
                    connections.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, &provider, flight.as_ref(), &shutdown);
                    }));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        for conn in connections {
            let _ = conn.join();
        }
    });
    Ok((local, handle))
}

fn json_line<T: serde::Serialize>(value: &T) -> io::Result<String> {
    serde_json::to_string(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn handle_connection(
    mut stream: TcpStream,
    provider: &SnapshotProvider,
    flight: Option<&FlightProvider>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    // The baseline snapshot line goes out first, unconditionally —
    // this is the whole legacy protocol, byte-stable.
    let mut prev = provider();
    let json = json_line(&prev)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(json.as_bytes())?;
    stream.write_all(b"\n")?;

    // Then give the client a short window to announce a command.
    stream.set_read_timeout(Some(COMMAND_WINDOW))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut command = String::new();
    match reader.read_line(&mut command) {
        Ok(0) => return Ok(()), // closed — legacy one-shot poll
        Ok(_) => {}
        Err(err)
            if matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(()); // silent client — legacy one-shot poll
        }
        Err(err) => return Err(err),
    }
    let command = command.trim();
    if command == "flight" {
        let dump = flight.map_or_else(FlightDump::default, |f| f());
        let json = json_line(&dump)?;
        stream.write_all(json.as_bytes())?;
        stream.write_all(b"\n")?;
        return Ok(());
    }
    if let Some(rest) = command.strip_prefix("stream") {
        let interval_ms = rest
            .trim()
            .parse::<u64>()
            .unwrap_or(DEFAULT_STREAM_INTERVAL_MS)
            .max(10);
        loop {
            let mut waited = Duration::ZERO;
            let interval = Duration::from_millis(interval_ms);
            while waited < interval {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                let step = ACCEPT_POLL.min(interval - waited);
                std::thread::sleep(step);
                waited += step;
            }
            let next = provider();
            let frame = delta::diff(&prev, &next);
            let json = json_line(&frame)?;
            // A write error means the client went away; done.
            stream.write_all(json.as_bytes())?;
            stream.write_all(b"\n")?;
            prev = next;
        }
    }
    Ok(()) // unknown command — close
}

/// Fetches one snapshot from a side-channel listener as raw JSON (the
/// legacy one-shot poll).
///
/// # Errors
///
/// Returns the connection error, or `InvalidData` when the listener
/// sent no line.
pub fn fetch_stats_json(addr: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    let line = line.trim();
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "stats listener sent no snapshot",
        ));
    }
    Ok(line.to_string())
}

/// Fetches the flight-recorder dump over the side channel.
///
/// # Errors
///
/// Returns the connection error, or `InvalidData` when either line is
/// missing or malformed.
pub fn fetch_flight_dump(addr: &str) -> io::Result<FlightDump> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"flight\n")?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?; // baseline snapshot — not needed here
    line.clear();
    reader.read_line(&mut line)?;
    if line.trim().is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "stats listener sent no flight dump",
        ));
    }
    serde_json::from_str(line.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A client of the streaming mode: holds one connection, keeps the
/// folded snapshot current by applying each received [`StatsDelta`].
pub struct StatsStream {
    reader: BufReader<TcpStream>,
    snapshot: StatsSnapshot,
}

impl StatsStream {
    /// Connects to a side-channel listener and enters streaming mode,
    /// reading the baseline snapshot.
    ///
    /// # Errors
    ///
    /// Returns the connection error, or `InvalidData` when the baseline
    /// is missing or malformed.
    pub fn connect(addr: &str, interval_ms: u64) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.write_all(format!("stream {interval_ms}\n").as_bytes())?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let snapshot: StatsSnapshot = serde_json::from_str(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(StatsStream { reader, snapshot })
    }

    /// The folded snapshot: baseline ⊕ every delta received so far.
    #[must_use]
    pub fn snapshot(&self) -> &StatsSnapshot {
        &self.snapshot
    }

    /// Blocks for the next delta frame, folds it into the snapshot and
    /// returns it.
    ///
    /// # Errors
    ///
    /// Returns the read error, or `InvalidData` on a malformed frame or
    /// a closed stream.
    pub fn next_frame(&mut self) -> io::Result<StatsDelta> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stats stream closed",
            ));
        }
        let frame: StatsDelta = serde_json::from_str(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.snapshot = delta::apply(&self.snapshot, &frame);
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::StatsRegistry;
    use std::time::Instant;

    fn plain_provider(stats: &Arc<StatsRegistry>) -> SnapshotProvider {
        let stats = Arc::clone(stats);
        Arc::new(move || stats.snapshot())
    }

    #[test]
    fn side_channel_serves_snapshots_until_shutdown() {
        let stats = Arc::new(StatsRegistry::new());
        stats.record_admit(true, 42);
        let provider = {
            let stats = Arc::clone(&stats);
            Arc::new(move || {
                let mut snapshot = stats.snapshot();
                snapshot.gauges.queue_depth = 5;
                snapshot
            }) as SnapshotProvider
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            serve_stats("127.0.0.1:0", provider, Arc::clone(&shutdown)).expect("listener binds");

        for _ in 0..2 {
            let json = fetch_stats_json(&addr.to_string()).expect("snapshot fetches");
            let snapshot: StatsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
            assert_eq!(snapshot.counters.admits, 1);
            assert_eq!(snapshot.gauges.queue_depth, 5);
        }

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("listener thread joins");
        assert!(fetch_stats_json(&addr.to_string()).is_err());
    }

    #[test]
    fn legacy_line_is_byte_identical_to_the_serialized_snapshot() {
        let stats = Arc::new(StatsRegistry::new());
        stats.record_admit(true, 50);
        stats.record_admit(false, 1500);
        stats.record_withdraw(80);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            serve_stats("127.0.0.1:0", plain_provider(&stats), Arc::clone(&shutdown))
                .expect("listener binds");

        let line = fetch_stats_json(&addr.to_string()).expect("snapshot fetches");
        let expected = serde_json::to_string(&stats.snapshot()).expect("snapshots serialize");
        assert_eq!(line, expected, "legacy wire line is the raw serialization");

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("listener thread joins");
    }

    #[test]
    fn stream_mode_folds_deltas_back_to_the_live_snapshot() {
        let stats = Arc::new(StatsRegistry::new());
        stats.record_admit(true, 30);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            serve_stats("127.0.0.1:0", plain_provider(&stats), Arc::clone(&shutdown))
                .expect("listener binds");

        let mut stream = StatsStream::connect(&addr.to_string(), 20).expect("stream connects");
        assert_eq!(stream.snapshot().counters.admits, 1, "baseline received");

        // Mutate between frames; the folded snapshot must converge to
        // the live one exactly once the recording stops.
        stats.record_admit(true, 60);
        stats.record_admit(false, 90);
        stats.record_submit(700);
        stats.record_dedup();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let frame = stream.next_frame().expect("delta frame arrives");
            if frame.is_quiescent() && *stream.snapshot() == stats.snapshot() {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "stream never converged: folded {:?} live {:?}",
                stream.snapshot().counters,
                stats.snapshot().counters
            );
        }

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("listener thread joins");
    }

    #[test]
    fn flight_command_returns_the_recorder_dump() {
        let stats = Arc::new(StatsRegistry::new());
        stats.record_admit(true, 40);
        stats.record_overload();
        let flight = {
            let stats = Arc::clone(&stats);
            Arc::new(move || stats.flight_dump()) as FlightProvider
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) = serve_stats_channel(
            "127.0.0.1:0",
            plain_provider(&stats),
            Some(flight),
            Arc::clone(&shutdown),
        )
        .expect("listener binds");

        let dump = fetch_flight_dump(&addr.to_string()).expect("flight dump fetches");
        assert_eq!(dump.recorded, 2);
        assert_eq!(dump.count(crate::events::EventKind::Admit), 1);
        assert_eq!(dump.count(crate::events::EventKind::Overload), 1);

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("listener thread joins");
    }

    #[test]
    fn side_channel_connections_never_touch_the_attached_gauge() {
        // Regression: the dashboard's own polling/streaming must not
        // count as attached clients — only main-endpoint connections
        // move the gauge.
        let stats = Arc::new(StatsRegistry::new());
        stats.client_attached(); // one real admission client
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            serve_stats("127.0.0.1:0", plain_provider(&stats), Arc::clone(&shutdown))
                .expect("listener binds");

        for _ in 0..3 {
            let _ = fetch_stats_json(&addr.to_string()).expect("snapshot fetches");
        }
        let mut stream = StatsStream::connect(&addr.to_string(), 20).expect("stream connects");
        let _ = stream.next_frame().expect("delta frame arrives");
        assert_eq!(
            stream.snapshot().gauges.attached_clients,
            1,
            "side-channel churn left the gauge at the single real client"
        );
        assert_eq!(stats.attached(), 1);

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("listener thread joins");
    }
}
