//! The `--stats-addr` side channel.
//!
//! A tiny TCP listener that serves one JSON [`StatsSnapshot`] line per
//! connection and closes. It runs on its own thread with its own
//! socket, so scraping (dashboards, CI asserts, `watch`-style polling)
//! never competes with admission traffic for the daemon's accept loop
//! or worker pool. The accept loop is nonblocking with a short poll,
//! keyed off the same shutdown flag as the main server, mirroring the
//! daemon's acceptor.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::model::StatsSnapshot;

/// Poll interval of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves one snapshot line per
/// connection until `shutdown` is raised. Returns the bound address
/// (useful with port 0) and the listener thread's join handle.
///
/// `provider` is called once per connection; the daemons pass a closure
/// that layers their gauges over `StatsRegistry::snapshot`.
///
/// # Errors
///
/// Returns the underlying I/O error when the address cannot be bound.
pub fn serve_stats(
    addr: &str,
    provider: Arc<dyn Fn() -> StatsSnapshot + Send + Sync>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let snapshot = provider();
                    if let Ok(json) = serde_json::to_string(&snapshot) {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.write_all(json.as_bytes());
                        let _ = stream.write_all(b"\n");
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    });
    Ok((local, handle))
}

/// Fetches one snapshot from a side-channel listener as raw JSON.
///
/// # Errors
///
/// Returns the connection error, or `InvalidData` when the listener
/// sent no line.
pub fn fetch_stats_json(addr: &str) -> io::Result<String> {
    use std::io::BufRead;
    let stream = std::net::TcpStream::connect(addr)?;
    let mut line = String::new();
    std::io::BufReader::new(stream).read_line(&mut line)?;
    let line = line.trim();
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "stats listener sent no snapshot",
        ));
    }
    Ok(line.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::StatsRegistry;

    #[test]
    fn side_channel_serves_snapshots_until_shutdown() {
        let stats = Arc::new(StatsRegistry::new());
        stats.record_admit(true, 42);
        let provider = {
            let stats = Arc::clone(&stats);
            Arc::new(move || {
                let mut snapshot = stats.snapshot();
                snapshot.gauges.queue_depth = 5;
                snapshot
            }) as Arc<dyn Fn() -> StatsSnapshot + Send + Sync>
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            serve_stats("127.0.0.1:0", provider, Arc::clone(&shutdown)).expect("listener binds");

        for _ in 0..2 {
            let json = fetch_stats_json(&addr.to_string()).expect("snapshot fetches");
            let snapshot: StatsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
            assert_eq!(snapshot.counters.admits, 1);
            assert_eq!(snapshot.gauges.queue_depth, 5);
        }

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("listener thread joins");
        assert!(fetch_stats_json(&addr.to_string()).is_err());
    }
}
