//! Chrome trace-event export: one span per solver per decision, on one
//! lane per solver.
//!
//! The writer produces the trace viewer's *JSON array format*. Three
//! event phases appear:
//!
//! * `"X"` — one complete duration event per verdict, with the solver
//!   name as the event name, the verdict's own `elapsed_micros` as the
//!   duration and the full [`msmr_sched::SolverStats`] in `args`.
//!   Every solver gets a **stable lane**: its `tid` is assigned on
//!   first sight and reused for every later span, so Perfetto renders
//!   one named track per solver instead of piling all spans onto one
//!   row.
//! * `"M"` — metadata: a `process_name` event at creation and a
//!   `thread_name` event the first time each solver appears, so the
//!   viewer labels the process and each lane by name. The `pid` is the
//!   daemon's real process id (not a constant), so two daemons' traces
//!   can be diffed side by side.
//! * `"C"` — counter events ([`TraceWriter::record_counter`]): the
//!   daemons sample worker-queue depth, attached clients and live
//!   sessions periodically, so saturation shows as counter tracks
//!   right above the verdict spans.
//!
//! Span events are appended in sequence order (the per-writer `seq` in
//! `args` equals the span order), so an entire replay opens in
//! `chrome://tracing` / Perfetto as a timeline of solver work.
//!
//! The array is closed by [`TraceWriter::finish`] (the daemons call it
//! after their accept loops join). Trace viewers accept a missing
//! closing bracket for traces cut short — [`validate_trace`] applies
//! the same leniency so tooling can check a file from a daemon that was
//! killed mid-write.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use msmr_sched::Verdict;

struct TraceInner {
    writer: BufWriter<File>,
    /// Spans written (the `seq` of the next `"X"` event).
    seq: u64,
    /// Counter samples written.
    counters: u64,
    /// Array elements written (spans + metadata + counters) — drives
    /// the comma bookkeeping.
    events: u64,
    /// Stable lane assignment: solver name → `tid`.
    lanes: BTreeMap<String, u64>,
    closed: bool,
}

impl TraceInner {
    /// Appends one already-serialized event object to the array. A
    /// failed write must not panic the decision path; the event is
    /// simply lost and the validator will still parse the rest.
    fn write_event(&mut self, event: &str) {
        if self.closed {
            return;
        }
        let comma = if self.events == 0 { "" } else { "," };
        self.events += 1;
        let _ = self.writer.write_all(comma.as_bytes());
        let _ = self.writer.write_all(b"\n");
        let _ = self.writer.write_all(event.as_bytes());
        let _ = self.writer.flush();
    }
}

/// An append-only Chrome trace-event JSON writer.
///
/// Thread-safe: spans from concurrent decisions serialize through one
/// mutex, which also makes the assigned `seq` equal the span order in
/// the file.
pub struct TraceWriter {
    inner: Mutex<TraceInner>,
    start: Instant,
    pid: u32,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter").finish_non_exhaustive()
    }
}

/// The lane counter events render on (`tid` 0, below the solver lanes
/// which start at 1).
const COUNTER_TID: u64 = 0;

impl TraceWriter {
    /// Creates (truncating) the trace file, writes the array opener and
    /// the `process_name` metadata event.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// created or written.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(b"[")?;
        writer.flush()?;
        let pid = std::process::id();
        let trace = TraceWriter {
            inner: Mutex::new(TraceInner {
                writer,
                seq: 0,
                counters: 0,
                events: 0,
                lanes: BTreeMap::new(),
                closed: false,
            }),
            start: Instant::now(),
            pid,
        };
        let name = serde_json::to_string(&process_name()).expect("process names serialize");
        trace
            .inner
            .lock()
            .expect("trace writer lock")
            .write_event(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{COUNTER_TID},\
                 \"args\":{{\"name\":{name}}}}}"
            ));
        Ok(trace)
    }

    /// Appends one complete span for a verdict on the verdict's
    /// solver lane (assigning the lane, with its `thread_name`
    /// metadata event, on first sight). Returns the span's sequence
    /// number (0-based, equals its position among the spans).
    pub fn record_span(&self, verdict: &Verdict) -> u64 {
        let ts = self.start.elapsed().as_micros() as u64;
        let stats = serde_json::to_string(&verdict.stats).expect("solver stats serialize");
        let name = serde_json::to_string(&verdict.solver).expect("solver names serialize");
        let pid = self.pid;
        let mut inner = self.inner.lock().expect("trace writer lock");
        if inner.closed {
            return inner.seq;
        }
        let tid = match inner.lanes.get(&verdict.solver) {
            Some(&tid) => tid,
            None => {
                let tid = inner.lanes.len() as u64 + 1;
                inner.lanes.insert(verdict.solver.clone(), tid);
                inner.write_event(&format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":{name}}}}}"
                ));
                tid
            }
        };
        let seq = inner.seq;
        inner.seq += 1;
        inner.write_event(&format!(
            "{{\"name\":{name},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{\"seq\":{seq},\
             \"accepted\":{accepted},\"stats\":{stats}}}}}",
            dur = verdict.stats.elapsed_micros,
            accepted = verdict.is_accepted(),
        ));
        seq
    }

    /// Appends one sample of the named counter track (a `"C"` event on
    /// the counter lane). Perfetto draws one counter track per name.
    pub fn record_counter(&self, counter: &str, value: u64) {
        let ts = self.start.elapsed().as_micros() as u64;
        let name = serde_json::to_string(&counter).expect("counter names serialize");
        let pid = self.pid;
        let mut inner = self.inner.lock().expect("trace writer lock");
        if inner.closed {
            return;
        }
        inner.counters += 1;
        inner.write_event(&format!(
            "{{\"name\":{name},\"ph\":\"C\",\"pid\":{pid},\"tid\":{COUNTER_TID},\
             \"ts\":{ts},\"args\":{{\"value\":{value}}}}}"
        ));
    }

    /// Spans written so far.
    #[must_use]
    pub fn spans(&self) -> u64 {
        self.inner.lock().expect("trace writer lock").seq
    }

    /// Counter samples written so far.
    #[must_use]
    pub fn counters(&self) -> u64 {
        self.inner.lock().expect("trace writer lock").counters
    }

    /// Closes the JSON array and flushes. Idempotent; events recorded
    /// after the close are dropped.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the closing write fails.
    pub fn finish(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("trace writer lock");
        if inner.closed {
            return Ok(());
        }
        inner.closed = true;
        inner.writer.write_all(b"\n]\n")?;
        inner.writer.flush()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// The name the `process_name` metadata event carries: the running
/// executable's basename, or `"msmr"` when it cannot be determined.
fn process_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|path| path.file_name().map(|n| n.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "msmr".to_string())
}

/// What [`validate_trace`] counted in a well-formed trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Complete (`"X"`) solver spans.
    pub spans: u64,
    /// Counter (`"C"`) samples.
    pub counters: u64,
    /// Named solver lanes (`thread_name` metadata events).
    pub lanes: u64,
}

/// One complete (`"X"`) span recovered from a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// The event name — the solver that produced the verdict.
    pub solver: String,
    /// Span start, microseconds since the writer's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds (the verdict's `elapsed_micros`).
    pub dur_us: u64,
    /// The writer-assigned span order, when `args.seq` was recorded.
    pub seq: Option<u64>,
    /// The verdict's outcome, when `args.accepted` was recorded.
    pub accepted: Option<bool>,
}

/// One counter (`"C"`) sample recovered from a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCounterSample {
    /// The counter track's name (e.g. `"queue depth"`).
    pub name: String,
    /// Sample time, microseconds since the writer's epoch.
    pub ts_us: u64,
    /// The sampled value (0 when the event carried none).
    pub value: u64,
}

/// Everything [`parse_trace`] recovers from a trace file: the replay
/// model `msmr-top --replay` renders its post-mortem from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceEvents {
    /// Spans in file order (which equals writer sequence order).
    pub spans: Vec<TraceSpan>,
    /// Counter samples in file order.
    pub counters: Vec<TraceCounterSample>,
    /// Lane assignments announced by `thread_name` metadata events:
    /// solver name → `tid`.
    pub lanes: BTreeMap<String, u64>,
}

impl TraceEvents {
    /// The tallies [`validate_trace`] reports for this trace.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            spans: self.spans.len() as u64,
            counters: self.counters.len() as u64,
            lanes: self.lanes.len() as u64,
        }
    }
}

/// Validates trace-event JSON and returns the event tallies.
///
/// Accepts both a properly closed array and one cut short mid-write
/// (the trace viewers' documented leniency): a trailing comma is
/// dropped and the closing bracket appended before parsing. Every
/// element must be a named `"X"` span (unsigned `ts`/`dur`), an `"M"`
/// metadata event (an `args.name` string), or a `"C"` counter sample
/// (unsigned `ts`); any other phase is malformed.
///
/// # Errors
///
/// Returns a description of the first malformed element (or the JSON
/// parse error) when the text is not a valid trace.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    parse_trace(text).map(|events| events.summary())
}

/// Parses trace-event JSON into its structured events, with the same
/// validation and truncation leniency as [`validate_trace`] (which is
/// this walk, keeping only the tallies).
///
/// # Errors
///
/// Returns a description of the first malformed element (or the JSON
/// parse error) when the text is not a valid trace.
pub fn parse_trace(text: &str) -> Result<TraceEvents, String> {
    let mut trimmed = text.trim().to_string();
    if !trimmed.starts_with('[') {
        return Err("trace is not a JSON array".into());
    }
    if !trimmed.ends_with(']') {
        trimmed = trimmed.trim_end_matches(',').to_string();
        trimmed.push(']');
    }
    let value: serde::Value = serde_json::from_str(&trimmed).map_err(|e| e.to_string())?;
    let serde::Value::Seq(events) = value else {
        return Err("trace is not a JSON array".into());
    };
    let mut parsed = TraceEvents::default();
    for (index, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(|v| match v {
            serde::Value::Str(s) => Some(s.as_str()),
            _ => None,
        });
        let name = match event.get("name") {
            Some(serde::Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let unsigned = |field: &str| match event.get(field) {
            Some(&serde::Value::UInt(n)) => Some(n),
            _ => None,
        };
        match ph {
            Some("X") => {
                let Some(solver) = name else {
                    return Err(format!("span event {index} has no name"));
                };
                let mut fields = [0u64; 2];
                for (slot, field) in fields.iter_mut().zip(["ts", "dur"]) {
                    *slot = unsigned(field)
                        .ok_or_else(|| format!("span event {index} has no unsigned `{field}`"))?;
                }
                let args = event.get("args");
                let arg = |key: &str| args.and_then(|a| a.get(key));
                parsed.spans.push(TraceSpan {
                    solver,
                    ts_us: fields[0],
                    dur_us: fields[1],
                    seq: match arg("seq") {
                        Some(&serde::Value::UInt(n)) => Some(n),
                        _ => None,
                    },
                    accepted: match arg("accepted") {
                        Some(&serde::Value::Bool(b)) => Some(b),
                        _ => None,
                    },
                });
            }
            Some("M") => {
                let label = match event.get("args").and_then(|args| args.get("name")) {
                    Some(serde::Value::Str(s)) => Some(s.clone()),
                    _ => None,
                };
                let (Some(name), Some(label)) = (name, label) else {
                    return Err(format!("metadata event {index} carries no `args.name`"));
                };
                if name == "thread_name" {
                    let tid = unsigned("tid").unwrap_or(parsed.lanes.len() as u64 + 1);
                    parsed.lanes.entry(label).or_insert(tid);
                }
            }
            Some("C") => {
                let Some(name) = name else {
                    return Err(format!("counter event {index} has no name"));
                };
                let Some(ts_us) = unsigned("ts") else {
                    return Err(format!("counter event {index} has no unsigned `ts`"));
                };
                let value = match event.get("args").and_then(|args| args.get("value")) {
                    Some(&serde::Value::UInt(n)) => n,
                    Some(&serde::Value::Int(n)) => n.max(0) as u64,
                    _ => 0,
                };
                parsed
                    .counters
                    .push(TraceCounterSample { name, ts_us, value });
            }
            _ => {
                return Err(format!(
                    "event {index} is not a span (X), metadata (M) or counter (C) event"
                ));
            }
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_sched::{Budget, DelayBoundKind, SolverRegistry};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("msmr-stats-{}-{}.trace", std::process::id(), tag))
    }

    fn sample_verdicts() -> Vec<Verdict> {
        let mut builder = msmr_model::JobSetBuilder::new();
        builder.stage("cpu", 1, msmr_model::PreemptionPolicy::Preemptive);
        let jobs = builder.build().expect("pipeline-only job set builds");
        SolverRegistry::paper_suite(DelayBoundKind::EdgeHybrid).evaluate(&jobs, Budget::default())
    }

    fn parse_events(text: &str) -> Vec<serde::Value> {
        let value: serde::Value = serde_json::from_str(text).expect("closed trace parses");
        let serde::Value::Seq(events) = value else {
            panic!("expected an array")
        };
        events
    }

    fn str_field<'a>(event: &'a serde::Value, field: &str) -> Option<&'a str> {
        match event.get(field) {
            Some(serde::Value::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    #[test]
    fn spans_export_as_valid_seq_ordered_trace_events() {
        let path = temp_path("roundtrip");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        let verdicts = sample_verdicts();
        for verdict in &verdicts {
            writer.record_span(verdict);
        }
        assert_eq!(writer.spans(), verdicts.len() as u64);
        writer.finish().expect("trace closes");
        let text = std::fs::read_to_string(&path).expect("trace reads");
        let solvers: std::collections::BTreeSet<&str> =
            verdicts.iter().map(|v| v.solver.as_str()).collect();
        assert_eq!(
            validate_trace(&text),
            Ok(TraceSummary {
                spans: verdicts.len() as u64,
                counters: 0,
                lanes: solvers.len() as u64,
            })
        );
        // One span per solver per decision, in sequence order.
        let events = parse_events(&text);
        let spans: Vec<&serde::Value> = events
            .iter()
            .filter(|e| str_field(e, "ph") == Some("X"))
            .collect();
        for (index, (event, verdict)) in spans.iter().zip(&verdicts).enumerate() {
            assert_eq!(str_field(event, "name"), Some(verdict.solver.as_str()));
            let args = event.get("args").expect("span has args");
            assert_eq!(args.get("seq"), Some(&serde::Value::UInt(index as u64)));
            assert!(args
                .get("stats")
                .and_then(|s| s.get("sdca_calls"))
                .is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solvers_get_stable_named_lanes_and_a_real_pid() {
        let path = temp_path("lanes");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        let verdicts = sample_verdicts();
        // Two rounds: every solver's lane must stay put on repeats.
        for verdict in verdicts.iter().chain(&verdicts) {
            writer.record_span(verdict);
        }
        writer.finish().expect("trace closes");
        let text = std::fs::read_to_string(&path).expect("trace reads");
        let events = parse_events(&text);

        // The first event names the process, with the daemon's real pid.
        let pid = serde::Value::UInt(u64::from(std::process::id()));
        assert_eq!(str_field(&events[0], "name"), Some("process_name"));
        assert_eq!(events[0].get("pid"), Some(&pid));
        assert!(matches!(events[0].get("args").and_then(|a| a.get("name")),
                     Some(serde::Value::Str(name)) if !name.is_empty()));

        // Every solver lane is announced exactly once, and all of that
        // solver's spans ride it.
        let mut lanes: std::collections::BTreeMap<String, &serde::Value> =
            std::collections::BTreeMap::new();
        for event in &events {
            if str_field(event, "name") == Some("thread_name") {
                assert_eq!(str_field(event, "ph"), Some("M"));
                assert_eq!(event.get("pid"), Some(&pid));
                let solver = match event.get("args").and_then(|a| a.get("name")) {
                    Some(serde::Value::Str(s)) => s.clone(),
                    other => panic!("thread_name without args.name: {other:?}"),
                };
                let tid = event.get("tid").expect("metadata has a tid");
                assert!(
                    lanes.insert(solver, tid).is_none(),
                    "a lane was announced twice"
                );
            }
        }
        let solvers: std::collections::BTreeSet<&str> =
            verdicts.iter().map(|v| v.solver.as_str()).collect();
        assert_eq!(lanes.len(), solvers.len());
        for event in &events {
            if str_field(event, "ph") == Some("X") {
                let solver = str_field(event, "name").expect("span has a name");
                assert_eq!(event.get("pid"), Some(&pid));
                assert_eq!(event.get("tid"), Some(lanes[solver]));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counter_samples_export_as_counter_events() {
        let path = temp_path("counters");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        writer.record_counter("queue depth", 3);
        writer.record_counter("attached clients", 2);
        writer.record_counter("queue depth", 0);
        assert_eq!(writer.counters(), 3);
        assert_eq!(writer.spans(), 0);
        writer.finish().expect("trace closes");
        let text = std::fs::read_to_string(&path).expect("trace reads");
        assert_eq!(
            validate_trace(&text),
            Ok(TraceSummary {
                spans: 0,
                counters: 3,
                lanes: 0,
            })
        );
        let events = parse_events(&text);
        let counters: Vec<&serde::Value> = events
            .iter()
            .filter(|e| str_field(e, "ph") == Some("C"))
            .collect();
        assert_eq!(str_field(counters[0], "name"), Some("queue depth"));
        assert_eq!(
            counters[0].get("args").and_then(|a| a.get("value")),
            Some(&serde::Value::UInt(3))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_traces_still_validate() {
        let path = temp_path("truncated");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        let verdicts = sample_verdicts();
        for verdict in &verdicts {
            writer.record_span(verdict);
        }
        // No finish(): simulate a daemon killed mid-write by reading
        // the unterminated array.
        let text = std::fs::read_to_string(&path).expect("trace reads");
        assert!(!text.trim_end().ends_with(']'));
        let summary = validate_trace(&text).expect("truncated traces validate");
        assert_eq!(summary.spans, verdicts.len() as u64);
        writer.finish().expect("trace closes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_trace_recovers_spans_counters_and_lanes() {
        let path = temp_path("parse");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        let verdicts = sample_verdicts();
        for verdict in &verdicts {
            writer.record_span(verdict);
        }
        writer.record_counter("queue depth", 5);
        writer.finish().expect("trace closes");
        let text = std::fs::read_to_string(&path).expect("trace reads");
        let events = parse_trace(&text).expect("recorded traces parse");
        assert_eq!(events.summary(), validate_trace(&text).unwrap());
        assert_eq!(events.spans.len(), verdicts.len());
        for (index, (span, verdict)) in events.spans.iter().zip(&verdicts).enumerate() {
            assert_eq!(span.solver, verdict.solver);
            assert_eq!(span.dur_us, verdict.stats.elapsed_micros);
            assert_eq!(span.seq, Some(index as u64));
            assert_eq!(span.accepted, Some(verdict.is_accepted()));
        }
        // Every span rides a lane announced for its solver.
        for span in &events.spans {
            assert!(events.lanes.contains_key(&span.solver));
        }
        assert_eq!(events.counters.len(), 1);
        assert_eq!(events.counters[0].name, "queue depth");
        assert_eq!(events.counters[0].value, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(validate_trace("{}").is_err());
        // Unknown phases are still rejected — leniency covers
        // truncation, not arbitrary event soup.
        assert!(validate_trace("[{\"ph\":\"B\",\"name\":\"x\"}]").is_err());
        assert!(validate_trace("[{\"ph\":\"X\",\"ts\":1,\"dur\":2}]").is_err());
        // Metadata without a label, counters without a timestamp.
        assert!(validate_trace("[{\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{}}]").is_err());
        assert!(validate_trace("[{\"ph\":\"C\",\"name\":\"q\",\"args\":{\"value\":1}}]").is_err());
        assert_eq!(validate_trace("[]"), Ok(TraceSummary::default()));
    }
}
