//! Chrome trace-event export: one span per solver per decision.
//!
//! The writer produces the trace viewer's *JSON array format*: a single
//! array of complete (`"ph":"X"`) duration events, one per verdict,
//! with the solver name as the event name, the verdict's own
//! `elapsed_micros` as the duration and the full
//! [`msmr_sched::SolverStats`] in `args`. Events are appended in
//! sequence order (the per-writer `seq` in `args` equals the file
//! order), so an entire replay opens in `chrome://tracing` / Perfetto
//! as a timeline of solver work.
//!
//! The array is closed by [`TraceWriter::finish`] (the daemons call it
//! after their accept loops join). Trace viewers accept a missing
//! closing bracket for traces cut short — [`validate_trace`] applies
//! the same leniency so tooling can check a file from a daemon that was
//! killed mid-write.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use msmr_sched::Verdict;

struct TraceInner {
    writer: BufWriter<File>,
    seq: u64,
    closed: bool,
}

/// An append-only Chrome trace-event JSON writer.
///
/// Thread-safe: spans from concurrent decisions serialize through one
/// mutex, which also makes the assigned `seq` equal the file order.
pub struct TraceWriter {
    inner: Mutex<TraceInner>,
    start: Instant,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter").finish_non_exhaustive()
    }
}

impl TraceWriter {
    /// Creates (truncating) the trace file and writes the array opener.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// created or written.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(b"[")?;
        writer.flush()?;
        Ok(TraceWriter {
            inner: Mutex::new(TraceInner {
                writer,
                seq: 0,
                closed: false,
            }),
            start: Instant::now(),
        })
    }

    /// Appends one complete span for a verdict. Returns the span's
    /// sequence number (0-based, equals its index in the file).
    pub fn record_span(&self, verdict: &Verdict) -> u64 {
        let ts = self.start.elapsed().as_micros() as u64;
        let stats = serde_json::to_string(&verdict.stats).expect("solver stats serialize");
        let name = serde_json::to_string(&verdict.solver).expect("solver names serialize");
        let mut inner = self.inner.lock().expect("trace writer lock");
        if inner.closed {
            return inner.seq;
        }
        let seq = inner.seq;
        inner.seq += 1;
        let comma = if seq == 0 { "" } else { "," };
        let event = format!(
            "{comma}\n{{\"name\":{name},\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{\"seq\":{seq},\
             \"accepted\":{accepted},\"stats\":{stats}}}}}",
            dur = verdict.stats.elapsed_micros,
            accepted = verdict.is_accepted(),
        );
        // A failed write must not panic the decision path; the span is
        // simply lost and the validator will still parse the rest.
        let _ = inner.writer.write_all(event.as_bytes());
        let _ = inner.writer.flush();
        seq
    }

    /// Spans written so far.
    #[must_use]
    pub fn spans(&self) -> u64 {
        self.inner.lock().expect("trace writer lock").seq
    }

    /// Closes the JSON array and flushes. Idempotent; spans recorded
    /// after the close are dropped.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the closing write fails.
    pub fn finish(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("trace writer lock");
        if inner.closed {
            return Ok(());
        }
        inner.closed = true;
        inner.writer.write_all(b"\n]\n")?;
        inner.writer.flush()
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Validates trace-event JSON and returns the number of spans.
///
/// Accepts both a properly closed array and one cut short mid-write
/// (the trace viewers' documented leniency): a trailing comma is
/// dropped and the closing bracket appended before parsing. Every
/// element must be a complete `"X"` event with a name and an
/// unsigned `ts`/`dur`.
///
/// # Errors
///
/// Returns a description of the first malformed element (or the JSON
/// parse error) when the text is not a valid trace.
pub fn validate_trace(text: &str) -> Result<u64, String> {
    let mut trimmed = text.trim().to_string();
    if !trimmed.starts_with('[') {
        return Err("trace is not a JSON array".into());
    }
    if !trimmed.ends_with(']') {
        trimmed = trimmed.trim_end_matches(',').to_string();
        trimmed.push(']');
    }
    let value: serde::Value = serde_json::from_str(&trimmed).map_err(|e| e.to_string())?;
    let serde::Value::Seq(events) = value else {
        return Err("trace is not a JSON array".into());
    };
    for (index, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(|v| match v {
            serde::Value::Str(s) => Some(s.as_str()),
            _ => None,
        });
        if ph != Some("X") {
            return Err(format!("event {index} is not a complete (ph=X) span"));
        }
        if !matches!(event.get("name"), Some(serde::Value::Str(_))) {
            return Err(format!("event {index} has no name"));
        }
        for field in ["ts", "dur"] {
            if !matches!(event.get(field), Some(serde::Value::UInt(_))) {
                return Err(format!("event {index} has no unsigned `{field}`"));
            }
        }
    }
    Ok(events.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msmr_sched::{Budget, DelayBoundKind, SolverRegistry};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("msmr-stats-{}-{}.trace", std::process::id(), tag))
    }

    fn sample_verdicts() -> Vec<Verdict> {
        let mut builder = msmr_model::JobSetBuilder::new();
        builder.stage("cpu", 1, msmr_model::PreemptionPolicy::Preemptive);
        let jobs = builder.build().expect("pipeline-only job set builds");
        SolverRegistry::paper_suite(DelayBoundKind::EdgeHybrid).evaluate(&jobs, Budget::default())
    }

    #[test]
    fn spans_export_as_valid_seq_ordered_trace_events() {
        let path = temp_path("roundtrip");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        let verdicts = sample_verdicts();
        for verdict in &verdicts {
            writer.record_span(verdict);
        }
        assert_eq!(writer.spans(), verdicts.len() as u64);
        writer.finish().expect("trace closes");
        let text = std::fs::read_to_string(&path).expect("trace reads");
        assert_eq!(validate_trace(&text), Ok(verdicts.len() as u64));
        // One span per solver per decision, in sequence order.
        let value: serde::Value = serde_json::from_str(&text).expect("closed trace parses");
        let serde::Value::Seq(events) = value else {
            panic!("expected an array")
        };
        for (index, (event, verdict)) in events.iter().zip(&verdicts).enumerate() {
            assert_eq!(
                event.get("name"),
                Some(&serde::Value::Str(verdict.solver.clone()))
            );
            let args = event.get("args").expect("span has args");
            assert_eq!(args.get("seq"), Some(&serde::Value::UInt(index as u64)));
            assert!(args
                .get("stats")
                .and_then(|s| s.get("sdca_calls"))
                .is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_traces_still_validate() {
        let path = temp_path("truncated");
        let writer = TraceWriter::create(&path).expect("trace file creates");
        let verdicts = sample_verdicts();
        for verdict in &verdicts {
            writer.record_span(verdict);
        }
        // No finish(): simulate a daemon killed mid-write by reading
        // the unterminated array.
        let text = std::fs::read_to_string(&path).expect("trace reads");
        assert!(!text.trim_end().ends_with(']'));
        assert_eq!(validate_trace(&text), Ok(verdicts.len() as u64));
        writer.finish().expect("trace closes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(validate_trace("{}").is_err());
        assert!(validate_trace("[{\"ph\":\"B\",\"name\":\"x\"}]").is_err());
        assert!(validate_trace("[{\"ph\":\"X\",\"ts\":1,\"dur\":2}]").is_err());
        assert_eq!(validate_trace("[]"), Ok(0));
    }
}
