//! Nearest-rank percentile selection.
//!
//! The workspace previously computed percentiles with a linear-index
//! rounding formula (`round((n-1)·p)`), which reports a too-low p99 on
//! small sample sets — for 100 samples it selects the 99th-smallest
//! value instead of the 100th. The canonical *nearest-rank* definition
//! used here is `rank = ⌈p·n⌉` (1-based) over the sorted **full** sample
//! set, which is what every consumer of the latency rings — `msmr-top`,
//! `msmr-admit --json`, `msmr-loadgen` — now shares.

/// Returns the nearest-rank `p`-th percentile (`p` in `0.0..=1.0`) of
/// the sample set, or `0.0` when it is empty. The slice does not need
/// to be sorted; the full set participates (no truncation, no
/// interpolation).
#[must_use]
pub fn nearest_rank(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let rank = (p.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_yields_zero() {
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn nearest_rank_is_the_ceiling_rank_on_the_full_set() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        // p99 of 1..=100 is the 99th-ranked value under nearest-rank.
        assert_eq!(nearest_rank(&samples, 0.99), 99.0);
        // p100 selects the maximum — the old round((n-1)p) formula
        // already did, but via the clamp, not the definition.
        assert_eq!(nearest_rank(&samples, 1.0), 100.0);
        assert_eq!(nearest_rank(&samples, 0.50), 50.0);
        // p0 selects the minimum (rank clamps to 1).
        assert_eq!(nearest_rank(&samples, 0.0), 1.0);
    }

    #[test]
    fn unsorted_input_and_small_sets() {
        assert_eq!(nearest_rank(&[30.0, 10.0, 20.0], 0.5), 20.0);
        assert_eq!(nearest_rank(&[30.0, 10.0, 20.0], 0.99), 30.0);
        assert_eq!(nearest_rank(&[7.5], 0.99), 7.5);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(nearest_rank(&[1.0, 2.0], 2.0), 2.0);
        assert_eq!(nearest_rank(&[1.0, 2.0], -1.0), 1.0);
    }
}
