//! Fixed-size, lock-free latency rings.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::percentile::nearest_rank;

/// Default number of slots per ring: enough for the percentile window
/// of a sustained burst while keeping the snapshot copy cheap.
pub const DEFAULT_RING_SLOTS: usize = 1024;

/// A fixed-size ring of latency samples (microseconds) writable from
/// any number of threads without a lock.
///
/// Writers claim a slot with one `fetch_add` on the write cursor and
/// store the sample with one relaxed atomic store; once the ring wraps,
/// the oldest samples are overwritten, so percentiles reflect a sliding
/// window of the most recent [`LatencyRing::capacity`] samples while
/// [`LatencyRing::recorded`] keeps the monotonic total. Readers take a
/// point-in-time copy; a torn read during a concurrent wrap can at worst
/// observe a mix of the newest and the about-to-be-evicted sample —
/// both real latencies — never a made-up value.
#[derive(Debug)]
pub struct LatencyRing {
    slots: Vec<AtomicU64>,
    next: AtomicU64,
}

impl Default for LatencyRing {
    fn default() -> Self {
        Self::new(DEFAULT_RING_SLOTS)
    }
}

impl LatencyRing {
    /// Creates a ring with `slots` sample slots (minimum 1).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        LatencyRing {
            slots: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Monotonic count of samples ever recorded (not capped by the
    /// ring size).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one latency sample in microseconds.
    pub fn record(&self, micros: u64) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        self.slots[slot].store(micros, Ordering::Relaxed);
    }

    /// Copies the currently live samples (at most
    /// [`LatencyRing::capacity`], the most recent ones once wrapped).
    #[must_use]
    pub fn samples(&self) -> Vec<f64> {
        let filled = (self.recorded() as usize).min(self.slots.len());
        self.slots[..filled]
            .iter()
            .map(|s| s.load(Ordering::Relaxed) as f64)
            .collect()
    }

    /// Nearest-rank percentile over the live window, `0.0` when empty.
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> f64 {
        nearest_rank(&self.samples(), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_reports_zero() {
        let ring = LatencyRing::new(8);
        assert_eq!(ring.recorded(), 0);
        assert_eq!(ring.percentile_us(0.99), 0.0);
        assert!(ring.samples().is_empty());
    }

    #[test]
    fn partial_fill_only_reads_written_slots() {
        let ring = LatencyRing::new(8);
        ring.record(10);
        ring.record(30);
        ring.record(20);
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.samples().len(), 3);
        assert_eq!(ring.percentile_us(0.5), 20.0);
        assert_eq!(ring.percentile_us(1.0), 30.0);
    }

    #[test]
    fn wrapping_keeps_the_most_recent_window() {
        let ring = LatencyRing::new(4);
        for v in 1..=10u64 {
            ring.record(v);
        }
        assert_eq!(ring.recorded(), 10);
        let mut samples = ring.samples();
        samples.sort_by(f64::total_cmp);
        assert_eq!(samples, vec![7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn concurrent_writers_never_lose_the_count() {
        let ring = std::sync::Arc::new(LatencyRing::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        ring.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 400);
        assert_eq!(ring.samples().len(), 64);
    }
}
