//! Property suite pinning the streaming-delta merge contract: for any
//! op sequence driven through a live [`StatsRegistry`] and any snapshot
//! cadence, folding `apply` over the frames `diff(Sᵢ, Sᵢ₊₁)` — after a
//! JSON round-trip, exactly as the wire does it — reproduces **every**
//! intermediate snapshot byte-for-byte: counters, gauges, per-bucket
//! histogram counts, solver rows and session tables alike. Applying any
//! *prefix* of the stream therefore yields the server's snapshot at
//! that point, which is the guarantee `msmr-top`'s streaming mode and
//! the smoke scripts' `--check-stream` lean on.

use msmr_stats::delta::{apply, diff, StatsDelta};
use msmr_stats::{SessionRow, StatsRegistry, StatsSnapshot};
use proptest::prelude::*;

/// One recordable op: `(selector, micros)` where the selector picks the
/// registry seam and `micros` feeds its latency sample (ignored by the
/// latency-less seams).
fn ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..10, 0u64..100_000_000), 0..40)
}

fn drive(stats: &StatsRegistry, op: u8, micros: u64) {
    match op {
        0 => stats.record_admit(true, micros),
        1 => stats.record_admit(false, micros),
        2 => stats.record_withdraw(micros),
        3 => stats.record_submit(micros),
        4 => stats.record_overload(),
        5 => stats.record_eviction(),
        6 => stats.record_snapshot_write(),
        7 => stats.record_snapshot_quarantine(),
        8 => stats.record_dedup(),
        _ => stats.client_attached(),
    }
}

/// Overlays the gauges and session rows an engine would layer on top of
/// the registry snapshot, so the absolute (non-monotonic) parts of the
/// delta are exercised too.
fn overlay(mut snapshot: StatsSnapshot, depth: u64, sessions: u64) -> StatsSnapshot {
    snapshot.gauges.queue_depth = depth;
    snapshot.gauges.live_sessions = sessions;
    snapshot.gauges.sessions_per_shard = vec![sessions, depth % 3];
    snapshot.sessions = (0..sessions)
        .map(|i| SessionRow {
            name: format!("tenant-{i}"),
            jobs: depth + i,
            version: i * 2,
            attached: u64::from(i == 0),
        })
        .collect();
    snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge contract: baseline ⊕ deltas ≡ fresh snapshot, at every
    /// prefix of the stream.
    #[test]
    fn baseline_plus_any_delta_prefix_reproduces_the_snapshot(
        batches in proptest::collection::vec(ops(), 1..8),
        depths in proptest::collection::vec((0u64..50, 0u64..4), 9),
    ) {
        let stats = StatsRegistry::new();
        let mut snapshots = Vec::new();
        let (d0, s0) = depths[0];
        snapshots.push(overlay(stats.snapshot(), d0, s0));
        for (i, batch) in batches.iter().enumerate() {
            for &(op, micros) in batch {
                drive(&stats, op, micros);
            }
            let (d, s) = depths[(i + 1) % depths.len()];
            snapshots.push(overlay(stats.snapshot(), d, s));
        }

        let mut folded = snapshots[0].clone();
        for window in snapshots.windows(2) {
            let frame = diff(&window[0], &window[1]);
            // Round-trip the frame through JSON exactly as the side
            // channel transports it.
            let json = serde_json::to_string(&frame).expect("frames serialize");
            let frame: StatsDelta = serde_json::from_str(&json).expect("frames parse");
            folded = apply(&folded, &frame);
            prop_assert_eq!(
                &folded,
                &window[1],
                "folded stream diverged from the live snapshot"
            );
        }
    }

    /// Deltas between identical snapshots are quiescent and folding
    /// them is the identity — the signal `--check-stream` keys off.
    #[test]
    fn identical_snapshots_yield_quiescent_identity_deltas(
        batch in ops(),
        depth in 0u64..50,
        sessions in 0u64..4,
    ) {
        let stats = StatsRegistry::new();
        for &(op, micros) in &batch {
            drive(&stats, op, micros);
        }
        let snapshot = overlay(stats.snapshot(), depth, sessions);
        let frame = diff(&snapshot, &snapshot);
        prop_assert!(frame.is_quiescent());
        prop_assert_eq!(apply(&snapshot, &frame), snapshot);
    }
}
