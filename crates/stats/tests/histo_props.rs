//! Property suite for the log-bucket latency histograms: bucket
//! boundaries, merge additivity, serde round-trips of the snapshot
//! form, and the headline contract — the histogram's percentile
//! estimates agree with the exact nearest-rank ring percentiles to
//! within one log bucket whenever both saw the same samples.

use msmr_stats::{
    bucket_bounds, bucket_index, percentile_from_counts, LatencyHisto, LatencyRing, OpLatency,
    HISTO_BUCKETS,
};
use proptest::prelude::*;

/// Latency samples spanning sub-microsecond blips to multi-minute
/// stalls (the interesting log-bucket range).
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..100_000_000, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sample lands in the bucket whose bounds contain it, and
    /// the bucket partition has no gaps or overlaps.
    #[test]
    fn bucket_boundaries_contain_their_samples(micros in 0u64..=u64::MAX) {
        let index = bucket_index(micros);
        prop_assert!(index < HISTO_BUCKETS);
        let (lower, upper) = bucket_bounds(index);
        prop_assert!(lower <= micros);
        // The last bucket's upper bound is inclusive at u64::MAX.
        prop_assert!(micros < upper || index == HISTO_BUCKETS - 1);
        if index > 0 {
            let (_, previous_upper) = bucket_bounds(index - 1);
            prop_assert_eq!(previous_upper, lower, "buckets tile without gaps");
        }
    }

    /// Recording splits samples across buckets without losing any, and
    /// merging two histograms is count-wise addition.
    #[test]
    fn merge_is_bucketwise_addition((a, b) in (samples(), samples())) {
        let left = LatencyHisto::new();
        let right = LatencyHisto::new();
        for &v in &a {
            left.record(v);
        }
        for &v in &b {
            right.record(v);
        }
        prop_assert_eq!(left.total(), a.len() as u64);
        prop_assert_eq!(right.total(), b.len() as u64);

        let both = LatencyHisto::new();
        for &v in a.iter().chain(&b) {
            both.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.counts(), both.counts());
        prop_assert_eq!(left.total(), (a.len() + b.len()) as u64);
    }

    /// The serializable [`OpLatency`] carrying the trimmed bucket
    /// counts round-trips through JSON, and the trimmed form computes
    /// the same percentiles as the live histogram.
    #[test]
    fn snapshot_form_round_trips_and_preserves_percentiles(values in samples()) {
        let histo = LatencyHisto::new();
        for &v in &values {
            histo.record(v);
        }
        let lat = OpLatency {
            samples: histo.total(),
            p50_us: 0.0,
            p99_us: 0.0,
            histo_buckets: histo.counts(),
            histo_p50_us: histo.percentile_us(0.50),
            histo_p99_us: histo.percentile_us(0.99),
        };
        let json = serde_json::to_string(&lat).expect("op latency serializes");
        let parsed: OpLatency = serde_json::from_str(&json).expect("op latency parses");
        prop_assert_eq!(&parsed, &lat);
        prop_assert_eq!(
            percentile_from_counts(&parsed.histo_buckets, 0.50),
            lat.histo_p50_us
        );
        prop_assert_eq!(
            percentile_from_counts(&parsed.histo_buckets, 0.99),
            lat.histo_p99_us
        );
    }

    /// Histogram ≡ ring: fed the same samples (within the ring
    /// window), the histogram's p50/p99 estimates sit in the same log
    /// bucket as the exact nearest-rank percentiles — within one
    /// bucket, i.e. a bounded ≤2× value error.
    #[test]
    fn histogram_percentiles_agree_with_the_ring_within_one_bucket(values in samples()) {
        let ring = LatencyRing::new(values.len());
        let histo = LatencyHisto::new();
        for &v in &values {
            ring.record(v);
            histo.record(v);
        }
        for p in [0.50, 0.90, 0.99] {
            let exact = ring.percentile_us(p);
            let estimate = histo.percentile_us(p);
            let exact_bucket = bucket_index(exact as u64);
            let estimate_bucket = bucket_index(estimate as u64);
            prop_assert!(
                exact_bucket.abs_diff(estimate_bucket) <= 1,
                "p{}: exact {exact} (bucket {exact_bucket}) vs estimate {estimate} \
                 (bucket {estimate_bucket})",
                p * 100.0
            );
            // The estimate never undershoots its own bucket: it is the
            // inclusive upper edge of the bucket the rank landed in.
            prop_assert!(estimate >= exact.floor() || estimate_bucket == exact_bucket);
        }
    }
}
