#!/usr/bin/env bash
# Smoke-tests the distributed admission tier end to end from the
# outside, against release binaries. First the seeded router-failover
# chaos scenario (SIGKILL a backend mid-replay; the resuming client's
# journal applies exactly once and the surviving history byte-verifies
# offline). Then a real tier: three msmr-served --cluster backends on a
# shared snapshot directory behind one msmr-router — a verified
# multi-client loadgen burst through the router with --check-stats
# against the *aggregated* snapshot (which must equal the run's tallies
# exactly, i.e. the per-backend sum), an exact cross-check of the
# router's stats side channel against the per-backend side channels, a
# live migration over the admin channel, a SIGKILL of the migrated
# session's backend with warm restore on a survivor, a second verified
# burst over the degraded tier, and a single shutdown op through the
# router that takes the whole tier down gracefully.
#
# Usage: scripts/router_smoke.sh [seed]
set -euo pipefail

SEED="${1:-7}"
BASE="${TMPDIR:-/tmp}/msmr-router-smoke-$$"
SNAPDIR="$BASE-snapshots"
PIDFILE="$BASE-router.pid"
ROUTER_LOG="$BASE-router.log"
SERVED="target/release/msmr-served"
ROUTER="target/release/msmr-router"
LOADGEN="target/release/msmr-loadgen"
ADMIT="target/release/msmr-admit"
TOP="target/release/msmr-top"
CHAOS="target/release/msmr-chaos"

cargo build --release -p msmr-cluster -p msmr-router -p msmr-chaos -p msmr-stats

# The seeded kill-mid-replay scenario through the router: failover to a
# survivor, exactly-once journal resume, offline byte-identity.
MSMR_SERVED_BIN="$SERVED" "$CHAOS" --scenario router-failover --seed "$SEED"

# Boot the tier: three backends sharing one snapshot directory (the
# failover and migration stories move sessions between daemons by
# snapshot), each with its own stats side channel for the cross-check.
mkdir -p "$SNAPDIR"
BACKEND_PIDS=()
BACKEND_LOGS=()
for i in 1 2 3; do
    LOG="$BASE-backend$i.log"
    "$SERVED" --cluster --tcp 127.0.0.1:0 --snapshot-dir "$SNAPDIR" \
        --stats-addr 127.0.0.1:0 >"$LOG" 2>&1 &
    BACKEND_PIDS+=($!)
    BACKEND_LOGS+=("$LOG")
done
cleanup() {
    kill "${BACKEND_PIDS[@]}" "${ROUTER_PID:-}" 2>/dev/null || true
    rm -rf "$BASE"*
}
trap cleanup EXIT

BACKENDS=()
BACKEND_STATS=()
for LOG in "${BACKEND_LOGS[@]}"; do
    for _ in $(seq 1 100); do
        grep -q "stats on tcp://" "$LOG" && break
        sleep 0.1
    done
    ADDR="$(sed -n 's|.*listening on tcp://||p' "$LOG" | head -n 1)"
    STATS="$(sed -n 's|.*stats on tcp://||p' "$LOG" | head -n 1)"
    [ -n "$ADDR" ] && [ -n "$STATS" ] || {
        echo "a backend did not report its addresses ($LOG)" >&2
        exit 1
    }
    BACKENDS+=("$ADDR")
    BACKEND_STATS+=("$STATS")
done

"$ROUTER" --tcp 127.0.0.1:0 \
    --backend "${BACKENDS[0]}" --backend "${BACKENDS[1]}" --backend "${BACKENDS[2]}" \
    --admin-addr 127.0.0.1:0 --stats-addr 127.0.0.1:0 --pidfile "$PIDFILE" \
    --health-interval-ms 50 --health-failures 2 >"$ROUTER_LOG" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
    grep -q "stats on tcp://" "$ROUTER_LOG" && [ -f "$PIDFILE" ] && break
    sleep 0.1
done
ROUTER_ADDR="$(sed -n 's|.*listening on tcp://||p' "$ROUTER_LOG" | head -n 1)"
ADMIN_ADDR="$(sed -n 's|.*admin on tcp://||p' "$ROUTER_LOG" | head -n 1)"
STATS_ADDR="$(sed -n 's|.*stats on tcp://||p' "$ROUTER_LOG" | head -n 1)"
[ -n "$ROUTER_ADDR" ] && [ -n "$ADMIN_ADDR" ] && [ -n "$STATS_ADDR" ] || {
    echo "router did not report its addresses" >&2
    exit 1
}

# One admin command per connection; replies end with an ok/err line.
admin() {
    exec 3<>"/dev/tcp/${ADMIN_ADDR%:*}/${ADMIN_ADDR##*:}"
    printf '%s\n' "$1" >&3
    local line
    while IFS= read -r line <&3; do
        printf '%s\n' "$line"
        case "$line" in ok\ * | err\ *) break ;; esac
    done
    exec 3<&- 3>&-
}

admin backends | grep -q "ok 3 backends" || {
    echo "admin channel does not list 3 backends" >&2
    exit 1
}

# A verified multi-client burst *through the router*. The backends are
# fresh, so --check-stats — answered by the router with the aggregated
# snapshot — must equal the run's tallies exactly: aggregation sums the
# per-backend counters with nothing lost and nothing double-counted.
"$LOADGEN" --tcp "$ROUTER_ADDR" \
    --clients 3 --sessions 3 --jobs 12 --seed "$SEED" \
    --withdraw-ratio 0.25 --verify --check-stats --no-record

# The router's stats side channel serves the same aggregate: its admits
# counter must equal the sum over the per-backend side channels.
admits_of() {
    "$TOP" --addr "$1" --once | sed -n 's/.*"admits":\([0-9]*\).*/\1/p'
}
ROUTER_ADMITS="$(admits_of "$STATS_ADDR")"
BACKEND_SUM=0
for STATS in "${BACKEND_STATS[@]}"; do
    BACKEND_SUM=$((BACKEND_SUM + $(admits_of "$STATS")))
done
[ "$ROUTER_ADMITS" = "$BACKEND_SUM" ] && [ "$ROUTER_ADMITS" -gt 0 ] || {
    echo "aggregated admits $ROUTER_ADMITS != per-backend sum $BACKEND_SUM" >&2
    exit 1
}

# Live migration over the admin channel: move one loadgen session to a
# backend it is not on, and see the route flip.
SESSION="loadgen-$SEED-0"
OWNER="$(admin routes | awk -v s="$SESSION" '$1 == s { print $2 }')"
[ -n "$OWNER" ] || { echo "router has no route for $SESSION" >&2; exit 1; }
TARGET=""
for ADDR in "${BACKENDS[@]}"; do
    [ "$ADDR" != "$OWNER" ] && TARGET="$ADDR" && break
done
admin "migrate $SESSION $TARGET" | grep -q "^ok migrated" || {
    echo "migrate $SESSION $TARGET was refused" >&2
    exit 1
}
admin routes | grep -q "^$SESSION $TARGET\$" || {
    echo "route of $SESSION did not flip to $TARGET" >&2
    exit 1
}

# SIGKILL the migrated session's new backend. The health monitor must
# declare it dead and proactively restore its sessions — the migrated
# one included — warm on the survivors from the shared snapshot dir.
for i in 0 1 2; do
    [ "${BACKENDS[$i]}" = "$TARGET" ] && kill -9 "${BACKEND_PIDS[$i]}"
done
FAILED_OVER=""
for _ in $(seq 1 100); do
    if grep -q "backend $TARGET is dead" "$ROUTER_LOG" \
        && grep -q "session \`$SESSION\` restored on" "$ROUTER_LOG"; then
        FAILED_OVER=1
        break
    fi
    sleep 0.1
done
[ -n "$FAILED_OVER" ] || {
    echo "router never failed $TARGET over (see $ROUTER_LOG)" >&2
    exit 1
}
admin backends | grep -q "^$TARGET dead\$" || {
    echo "admin channel does not show $TARGET dead" >&2
    exit 1
}
# The restored session answers per-session stats through the router.
"$ADMIT" --tcp "$ROUTER_ADDR" --stats --session "$SESSION" >/dev/null || {
    echo "per-session stats for $SESSION failed after the failover" >&2
    exit 1
}

# The degraded tier still takes verified traffic: a second burst (new
# seed => new sessions, placed over the two survivors) byte-verifies
# its replays offline.
"$LOADGEN" --tcp "$ROUTER_ADDR" \
    --clients 2 --sessions 2 --jobs 10 --seed $((SEED + 100)) \
    --withdraw-ratio 0.25 --verify --no-record

# One shutdown op through the router takes the whole tier down: the
# router broadcasts to the alive backends, then exits itself.
"$ADMIT" --tcp "$ROUTER_ADDR" --shutdown >/dev/null
wait "$ROUTER_PID"
grep -q "shutdown complete" "$ROUTER_LOG" || {
    echo "router did not report a clean shutdown" >&2
    exit 1
}
[ ! -e "$PIDFILE" ] || { echo "router pidfile survived the shutdown" >&2; exit 1; }
for i in 0 1 2; do
    [ "${BACKENDS[$i]}" = "$TARGET" ] && continue
    wait "${BACKEND_PIDS[$i]}" || {
        echo "backend ${BACKENDS[$i]} did not exit cleanly" >&2
        exit 1
    }
done

trap - EXIT
rm -rf "$BASE"*
echo "router smoke: OK"
