#!/usr/bin/env bash
# Runs the full msmr-chaos fault-injection suite against release
# binaries (SIGKILL/restart resume, torn-snapshot quarantine, overload
# storms, byte-level frame chaos, clock skew) — asserting the
# kill-restart scenario leaves its flight-recorder dump behind — then
# boots a daemon on a poisoned snapshot directory to assert the
# fail-soft path end to end from the outside: the boot survives,
# msmr-top's live snapshot shows the quarantine counter, SIGTERM shuts
# down cleanly (exit 0, pidfile removed, flight dump written) and
# msmr-top --replay renders the run's trace offline. Fails on any
# non-zero exit; every chaos scenario prints its seed on failure so
# runs reproduce exactly.
#
# Usage: scripts/chaos_smoke.sh [seed]
set -euo pipefail

SEED="${1:-7}"
SNAPDIR="${TMPDIR:-/tmp}/msmr-chaos-smoke-$$-snapshots"
PIDFILE="${TMPDIR:-/tmp}/msmr-chaos-smoke-$$.pid"
SERVED_LOG="${TMPDIR:-/tmp}/msmr-chaos-smoke-$$-served.log"
CHAOS_LOG="${TMPDIR:-/tmp}/msmr-chaos-smoke-$$-chaos.log"
FLIGHT_OUT="${TMPDIR:-/tmp}/msmr-chaos-smoke-$$-flight.json"
TRACE_OUT="${TMPDIR:-/tmp}/msmr-chaos-smoke-$$.trace"
SERVED="target/release/msmr-served"
CHAOS="target/release/msmr-chaos"
TOP="target/release/msmr-top"

cargo build --release -p msmr-cluster -p msmr-chaos -p msmr-stats

# The full scenario suite, seeded for reproducibility. The SIGKILL
# scenario must report the flight-recorder dump its restarted daemon
# wrote on the graceful way down (reconciled against the counters).
MSMR_SERVED_BIN="$SERVED" "$CHAOS" --all --seed "$SEED" | tee "$CHAOS_LOG"
grep -q "SIGTERM wrote the flight dump" "$CHAOS_LOG" || {
    echo "kill-restart did not report a flight-recorder dump" >&2
    exit 1
}

# Fail-soft boot, observable from the outside: poison the snapshot dir
# with a torn file, then boot a daemon on it.
mkdir -p "$SNAPDIR"
printf '{"session":"broken"' > "$SNAPDIR/broken.json"
"$SERVED" --cluster --tcp 127.0.0.1:0 --snapshot-dir "$SNAPDIR" \
    --stats-addr 127.0.0.1:0 --pidfile "$PIDFILE" \
    --flight-out "$FLIGHT_OUT" --trace-out "$TRACE_OUT" >"$SERVED_LOG" 2>&1 &
SERVED_PID=$!
cleanup() {
    kill "$SERVED_PID" 2>/dev/null || true
    rm -rf "$SNAPDIR" "$PIDFILE" "$SERVED_LOG" "$CHAOS_LOG" "$FLIGHT_OUT" "$TRACE_OUT"
}
trap cleanup EXIT

for _ in $(seq 1 100); do
    grep -q "stats on tcp://" "$SERVED_LOG" && [ -f "$PIDFILE" ] && break
    sleep 0.1
done
STATS_ADDR="$(sed -n 's|.*stats on tcp://||p' "$SERVED_LOG" | head -n 1)"
[ -n "$STATS_ADDR" ] || { echo "daemon did not report a stats address" >&2; exit 1; }

# The daemon must have quarantined the torn file (not died on it)...
[ -f "$SNAPDIR/broken.json.corrupt" ] || {
    echo "torn snapshot was not quarantined to .json.corrupt" >&2
    exit 1
}
grep -q "quarantined corrupt snapshot" "$SERVED_LOG" || {
    echo "daemon did not log the quarantine" >&2
    exit 1
}
# ...and say so on the live stats channel.
"$TOP" --addr "$STATS_ADDR" --once | grep -q '"snapshot_quarantined":1' || {
    echo "msmr-top does not show the quarantine counter" >&2
    exit 1
}

# Graceful SIGTERM: exit 0, pidfile removed, flight dump on disk.
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"
[ ! -e "$PIDFILE" ] || { echo "pidfile survived the SIGTERM shutdown" >&2; exit 1; }
[ -s "$FLIGHT_OUT" ] || {
    echo "SIGTERM shutdown left no flight-recorder dump" >&2
    exit 1
}

# The run's trace replays offline, with the flight dump folded into the
# post-mortem report.
"$TOP" --replay "$TRACE_OUT" --flight "$FLIGHT_OUT"

trap - EXIT
rm -rf "$SNAPDIR" "$PIDFILE" "$SERVED_LOG" "$CHAOS_LOG" "$FLIGHT_OUT" "$TRACE_OUT"
echo "chaos smoke: OK"
