#!/usr/bin/env bash
# Trend gate over the BENCH_kernels.json run history: compares the
# latest non-fast run against the best value each kernel achieved over
# the previous N runs and fails when any kernel regressed beyond the
# tolerance (see crates/report/src/trend.rs for the semantics).
#
# Usage: scripts/bench_trend.sh [--window N] [--tolerance PCT] [--file PATH] [--include-fast]
set -euo pipefail

cargo run --release -q -p msmr-report --bin bench_trend -- "$@"
