#!/usr/bin/env bash
# Boots the admission daemon on a Unix socket, replays a workload trace
# through the client with offline verdict verification, and shuts the
# daemon down. Fails on non-zero exit (including any verdict mismatch).
#
# Usage: scripts/service_smoke.sh [jobs] [seed]
set -euo pipefail

JOBS="${1:-40}"
SEED="${2:-7}"
SOCK="${TMPDIR:-/tmp}/msmr-smoke-$$.sock"
SERVED="target/release/msmr-served"
ADMIT="target/release/msmr-admit"

# msmr-admit lives in msmr-serve; the msmr-served daemon in msmr-cluster.
cargo build --release -p msmr-serve -p msmr-cluster

"$SERVED" --uds "$SOCK" &
SERVED_PID=$!
cleanup() {
    kill "$SERVED_PID" 2>/dev/null || true
    rm -f "$SOCK"
}
trap cleanup EXIT

# Wait for the daemon to bind.
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon did not bind $SOCK" >&2; exit 1; }

# A withdraw mix exercises the general O(n·N) mid-set withdraw of the
# online seam; --verify byte-checks every admit *and* withdraw verdict
# stream against offline evaluate.
"$ADMIT" --uds "$SOCK" --replay --jobs "$JOBS" --seed "$SEED" --withdraw-ratio 0.25 --verify
"$ADMIT" --uds "$SOCK" --shutdown
wait "$SERVED_PID"
trap - EXIT
rm -f "$SOCK"
echo "service smoke: OK"
