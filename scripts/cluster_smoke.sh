#!/usr/bin/env bash
# Boots the admission daemon in --cluster mode on a Unix socket (with the
# stats side channel and trace-event export on), runs a short
# multi-client msmr-loadgen burst over shared named sessions with
# serialized-replay verification and daemon-counter cross-checking,
# queries the live stats channel mid-burst through msmr-top (one-shot
# and a held streaming-delta connection validating the merge contract),
# exercises the snapshot op through msmr-admit, shuts the daemon down,
# validates the written trace and replays it offline against the final
# live snapshot. Fails on any non-zero exit (including verdict
# mismatches in the loadgen verification).
#
# Usage: scripts/cluster_smoke.sh [clients] [sessions] [jobs] [seed]
set -euo pipefail

CLIENTS="${1:-2}"
SESSIONS="${2:-1}"
JOBS="${3:-16}"
SEED="${4:-7}"
SOCK="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$.sock"
SNAPDIR="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$-snapshots"
BENCH_OUT="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$-bench.json"
TRACE_OUT="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$.trace"
FINAL_SNAP="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$-final.json"
SERVED_LOG="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$-served.log"
SERVED="target/release/msmr-served"
ADMIT="target/release/msmr-admit"
LOADGEN="target/release/msmr-loadgen"
TOP="target/release/msmr-top"

cargo build --release -p msmr-serve -p msmr-cluster -p msmr-stats

"$SERVED" --uds "$SOCK" --cluster --shards 4 --workers 2 --snapshot-dir "$SNAPDIR" \
    --stats-addr 127.0.0.1:0 --trace-out "$TRACE_OUT" >"$SERVED_LOG" &
SERVED_PID=$!
cleanup() {
    kill "$SERVED_PID" 2>/dev/null || true
    rm -rf "$SOCK" "$SNAPDIR" "$BENCH_OUT" "$TRACE_OUT" "$SERVED_LOG" "$FINAL_SNAP"
}
trap cleanup EXIT

# Wait for the daemon to bind both the socket and the stats channel
# (the stats line carries the ephemeral port picked for 127.0.0.1:0).
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && grep -q "stats on tcp://" "$SERVED_LOG" && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon did not bind $SOCK" >&2; exit 1; }
STATS_ADDR="$(sed -n 's|.*stats on tcp://||p' "$SERVED_LOG" | head -n 1)"
[ -n "$STATS_ADDR" ] || { echo "daemon did not report a stats address" >&2; exit 1; }

# A concurrent burst over shared sessions — with a withdraw mix, so the
# general O(n·N) mid-set withdraw of the online seam runs under
# multi-client load — verified against a serialized offline replay, and
# cross-checked against the daemon's own stats counters (the daemon is
# fresh, so loadgen's admit/reject/withdraw/overload tallies must match
# it exactly); results go to a scratch history file so CI runs do not
# pollute the committed BENCH_kernels.json.
MSMR_BENCH_OUT="$BENCH_OUT" "$LOADGEN" --uds "$SOCK" \
    --clients "$CLIENTS" --sessions "$SESSIONS" --jobs "$JOBS" --seed "$SEED" \
    --withdraw-ratio 0.3 --verify --check-stats &
LOADGEN_PID=$!

# Mid-burst, the side channel must serve a valid JSON snapshot with a
# non-zero admit counter (msmr-top --once parses and asserts it; retry
# while the burst's first admits are still in flight).
STATS_OK=""
for _ in $(seq 1 100); do
    if "$TOP" --addr "$STATS_ADDR" --once --min-admits 1 >/dev/null 2>&1; then
        STATS_OK=1
        break
    fi
    sleep 0.1
done
[ -n "$STATS_OK" ] || {
    echo "stats side channel did not serve a snapshot with admits >= 1 mid-burst" >&2
    exit 1
}

# Also mid-burst: hold one streaming connection across the rest of the
# run. msmr-top folds the baseline plus every delta frame client-side
# and asserts the merge contract (baseline + deltas == fresh snapshot)
# once the stream goes quiescent.
"$TOP" --addr "$STATS_ADDR" --check-stream --interval-ms 200 &
STREAM_PID=$!

wait "$LOADGEN_PID"

wait "$STREAM_PID" || {
    echo "streamed deltas did not fold back to the live snapshot" >&2
    exit 1
}

# The loadgen run landed in the (scratch) append-only history.
grep -q "loadgen/requests_per_sec" "$BENCH_OUT" || {
    echo "loadgen did not record into the bench history" >&2
    exit 1
}

# The run's scratch history passes the p50/p99 trend gate (a single
# run is a "new kernel" baseline for every series, including the new
# log-bucket histogram percentiles — the point is that the gate parses
# and accepts what loadgen just recorded).
scripts/bench_trend.sh --file "$BENCH_OUT"

# Post-burst, the same snapshot is also served in-band through the v4
# stats op (one JSON line with the counter fields, histograms included).
"$ADMIT" --uds "$SOCK" --stats | grep -q '"admits":' || {
    echo "the stats op did not answer with counters" >&2
    exit 1
}
"$ADMIT" --uds "$SOCK" --stats | grep -q '"histo_buckets":' || {
    echo "the stats op did not carry latency histograms" >&2
    exit 1
}

# The per-session breakdown (stats op with a session argument) answers
# for a loadgen session without attaching to it.
"$ADMIT" --uds "$SOCK" --stats --session "loadgen-$SEED-0" \
    | grep -q '"withdraws":' || {
    echo "the per-session stats breakdown did not answer" >&2
    exit 1
}

# A second tool (msmr-admit) attaches to the first loadgen session by
# name and reads its status, then the graceful shutdown snapshots every
# session (the explicit snapshot op is covered by the e2e suite). The
# final snapshot is saved first: the offline replay below cross-checks
# the trace's per-solver span counts against its decision counters.
"$TOP" --addr "$STATS_ADDR" --once > "$FINAL_SNAP"
"$ADMIT" --uds "$SOCK" --session "loadgen-$SEED-0" --status
"$ADMIT" --uds "$SOCK" --shutdown
wait "$SERVED_PID"
ls "$SNAPDIR"/loadgen-"$SEED"-*.json >/dev/null || {
    echo "shutdown did not snapshot the sessions" >&2
    exit 1
}

# The daemon closed a valid Chrome trace-event file: one complete span
# per solver verdict on a named per-solver lane, plus the periodic
# gauge counter samples (queue depth / attached clients / live
# sessions; at least one sweep of the three must have landed).
"$TOP" --check-trace "$TRACE_OUT" --expect-counters 3

# Offline post-mortem: replay the recorded trace without a daemon and
# assert every solver's span count equals the decision counter the live
# snapshot reported for it.
"$TOP" --replay "$TRACE_OUT" --against "$FINAL_SNAP"

trap - EXIT
rm -rf "$SOCK" "$SNAPDIR" "$BENCH_OUT" "$TRACE_OUT" "$SERVED_LOG" "$FINAL_SNAP"
echo "cluster smoke: OK"
