#!/usr/bin/env bash
# Boots the admission daemon in --cluster mode on a Unix socket, runs a
# short multi-client msmr-loadgen burst over shared named sessions with
# serialized-replay verification, exercises the snapshot op through
# msmr-admit, and shuts the daemon down. Fails on any non-zero exit
# (including verdict mismatches in the loadgen verification).
#
# Usage: scripts/cluster_smoke.sh [clients] [sessions] [jobs] [seed]
set -euo pipefail

CLIENTS="${1:-2}"
SESSIONS="${2:-1}"
JOBS="${3:-16}"
SEED="${4:-7}"
SOCK="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$.sock"
SNAPDIR="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$-snapshots"
BENCH_OUT="${TMPDIR:-/tmp}/msmr-cluster-smoke-$$-bench.json"
SERVED="target/release/msmr-served"
ADMIT="target/release/msmr-admit"
LOADGEN="target/release/msmr-loadgen"

cargo build --release -p msmr-serve -p msmr-cluster

"$SERVED" --uds "$SOCK" --cluster --shards 4 --workers 2 --snapshot-dir "$SNAPDIR" &
SERVED_PID=$!
cleanup() {
    kill "$SERVED_PID" 2>/dev/null || true
    rm -rf "$SOCK" "$SNAPDIR" "$BENCH_OUT"
}
trap cleanup EXIT

# Wait for the daemon to bind.
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon did not bind $SOCK" >&2; exit 1; }

# A concurrent burst over shared sessions — with a withdraw mix, so the
# general O(n·N) mid-set withdraw of the online seam runs under
# multi-client load — verified against a serialized offline replay;
# results go to a scratch history file so CI runs do not pollute the
# committed BENCH_kernels.json.
MSMR_BENCH_OUT="$BENCH_OUT" "$LOADGEN" --uds "$SOCK" \
    --clients "$CLIENTS" --sessions "$SESSIONS" --jobs "$JOBS" --seed "$SEED" \
    --withdraw-ratio 0.3 --verify

# The loadgen run landed in the (scratch) append-only history.
grep -q "loadgen/requests_per_sec" "$BENCH_OUT" || {
    echo "loadgen did not record into the bench history" >&2
    exit 1
}

# A second tool (msmr-admit) attaches to the first loadgen session by
# name and reads its status, then the graceful shutdown snapshots every
# session (the explicit snapshot op is covered by the e2e suite).
"$ADMIT" --uds "$SOCK" --session "loadgen-$SEED-0" --status
"$ADMIT" --uds "$SOCK" --shutdown
wait "$SERVED_PID"
ls "$SNAPDIR"/loadgen-"$SEED"-*.json >/dev/null || {
    echo "shutdown did not snapshot the sessions" >&2
    exit 1
}
trap - EXIT
rm -rf "$SOCK" "$SNAPDIR" "$BENCH_OUT"
echo "cluster smoke: OK"
