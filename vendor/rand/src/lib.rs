//! Minimal in-tree substitute for `rand` 0.8.
//!
//! Provides the exact API surface the workspace uses — `Rng::gen_range`
//! over integer and float ranges, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng` and `seq::SliceRandom::shuffle` — backed by a
//! xoshiro256++ generator seeded through SplitMix64. Deterministic per
//! seed, which is all the workload generators and tests rely on; the
//! stream differs from crates.io `rand`, so seeds select *a* reproducible
//! case, not the same case the real crate would produce.

use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience extension over [`RngCore`], blanket-implemented for every
/// source.
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random source that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // `span == 0` encodes the full 2^64 domain.
    if span == 0 {
        rng.next_u64()
    } else {
        // Multiply-shift bounded sampling (Lemire); bias-free enough for
        // test workloads and much cheaper than rejection.
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_u64_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + sample_u64_span(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.gen_range(0u64..1_000_000) != c.gen_range(0u64..1_000_000));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5usize..=5);
            assert_eq!(v, 5);
            let v = rng.gen_range(-3i64..=4);
            assert!((-3..=4).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let f = rng.gen_range(1.5f64..=1.5);
            assert!((f - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the identity permutation");
    }
}
