//! Minimal in-tree substitute for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls for the data
//! shapes used in this workspace: structs with named fields, newtype and
//! tuple structs, unit enums and enums with newtype variants. The input is
//! parsed directly from the token stream (no `syn`/`quote`), which is
//! sufficient because none of the derived types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(A, B, ...)` — number of fields.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { ... }` — `(variant, has_payload)` pairs.
    Enum(Vec<(String, bool)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;

    // Generic parameters are not supported (none of the workspace types
    // deriving serde are generic).
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored derive");
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive: malformed struct body: {other:?}"),
        }
    } else if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        }
    } else {
        panic!("serde_derive: unsupported item kind `{kind}`");
    };

    Item { name, shape }
}

/// Extracts the field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        fields.push(name);
        i += 1;
        // Expect ':' then skip the type up to the next top-level ','
        // (tracking `<`/`>` depth; parens and brackets arrive as groups).
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Extracts `(variant, has_payload)` pairs from an enum body. Only unit and
/// newtype variants are supported.
fn parse_variants(stream: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let mut payload = false;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            assert_eq!(
                                count_tuple_fields(g.stream()),
                                1,
                                "serde_derive: only newtype enum variants are supported"
                            );
                            payload = true;
                            i += 1;
                        }
                        Delimiter::Brace => {
                            panic!("serde_derive: struct enum variants are not supported")
                        }
                        _ => {}
                    }
                }
                variants.push((name, payload));
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for field in fields {
                pushes.push_str(&format!(
                    "map.push((::serde::Value::Str(::std::string::String::from(\"{field}\")), \
                     ::serde::Serialize::serialize(&self.{field})));\n"
                ));
            }
            format!("let mut map = ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(map)")
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut pushes = String::new();
            for idx in 0..*n {
                pushes.push_str(&format!(
                    "seq.push(::serde::Serialize::serialize(&self.{idx}));\n"
                ));
            }
            format!("let mut seq = ::std::vec::Vec::new();\n{pushes}::serde::Value::Seq(seq)")
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (variant, payload) in variants {
                if *payload {
                    arms.push_str(&format!(
                        "{name}::{variant}(inner) => ::serde::Value::Map(vec![(\
                         ::serde::Value::Str(::std::string::String::from(\"{variant}\")), \
                         ::serde::Serialize::serialize(inner))]),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from(\"{variant}\")),\n"
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for field in fields {
                inits.push_str(&format!(
                    "{field}: ::serde::de_field(value, \"{field}\")?,\n"
                ));
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::Tuple(n) => {
            let mut inits = String::new();
            for idx in 0..*n {
                inits.push_str(&format!(
                    "::serde::Deserialize::deserialize(::serde::de_element(value, {idx})?)?,\n"
                ));
            }
            format!("::std::result::Result::Ok({name}(\n{inits}))")
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (variant, payload) in variants {
                if *payload {
                    payload_arms.push_str(&format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}(\
                         ::serde::Deserialize::deserialize(inner)?)),\n"
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),\n"
                    ));
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (key, inner) = &entries[0];\n\
                 let tag = match key {{\n\
                 ::serde::Value::Str(s) => s.as_str(),\n\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\"enum tag must be a string\")),\n\
                 }};\n\
                 match tag {{\n{payload_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum representation for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}
