//! Minimal in-tree substitute for `criterion`.
//!
//! Provides the benchmarking API surface the workspace uses
//! (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! with a simple wall-clock sampler: each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and prints the minimum, mean
//! and maximum per-iteration time. No statistics beyond that — the goal is
//! honest relative numbers in an offline container, not criterion's full
//! analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b));
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Creates an id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up (not recorded).
        let _ = std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label:<48} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {label:<48} time: [{} {} {}]",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("noop", 1), &5u64, |b, input| {
            b.iter(|| {
                runs += 1;
                *input * 2
            });
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(15)).contains("µs"));
        assert!(format_duration(Duration::from_millis(2)).contains("ms"));
        assert!(format_duration(Duration::from_secs(3)).contains(" s"));
    }
}
