//! Minimal in-tree substitute for `serde_json` built on the vendored
//! `serde` data model: a JSON writer and a recursive-descent parser, enough
//! for exact round-trips of the workspace's report types.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] when a map key is not representable as a JSON
/// object key (strings and integers are).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::deserialize(&value)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::custom("non-finite float is not valid JSON"));
            }
            let text = v.to_string();
            out.push_str(&text);
            // Keep floats distinguishable from integers on re-parse.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match key {
                    Value::Str(s) => write_string(s, out),
                    Value::UInt(v) => write_string(&v.to_string(), out),
                    Value::Int(v) => write_string(&v.to_string(), out),
                    _ => return Err(Error::custom("JSON object keys must be strings")),
                }
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Value::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            // RFC 8259: non-BMP characters arrive as a
                            // UTF-16 surrogate pair of \u escapes.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::custom(
                                        "unpaired high surrogate in \\u escape",
                                    ));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom(
                                        "invalid low surrogate in \\u escape",
                                    ));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Parses four hex digits starting at `start` into a UTF-16 code unit.
    fn parse_hex4(&self, start: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb".to_string());
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u64, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), xs);

        let mut map = BTreeMap::new();
        map.insert("k".to_string(), vec![0.25f64]);
        let text = to_string(&map).unwrap();
        assert_eq!(text, "{\"k\":[0.25]}");
        assert_eq!(from_str::<BTreeMap<String, Vec<f64>>>(&text).unwrap(), map);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Python json.dumps-style escaping of a non-BMP character.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}".to_string()
        );
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83dx\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        let mut map = BTreeMap::new();
        map.insert(3u64, "c".to_string());
        map.insert(1u64, "a".to_string());
        let text = to_string(&map).unwrap();
        assert_eq!(text, "{\"1\":\"a\",\"3\":\"c\"}");
        assert_eq!(from_str::<BTreeMap<u64, String>>(&text).unwrap(), map);
        let mut map = BTreeMap::new();
        map.insert(-2i64, 9u64);
        let text = to_string(&map).unwrap();
        assert_eq!(from_str::<BTreeMap<i64, u64>>(&text).unwrap(), map);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<u64>("\"x").is_err());
    }
}
