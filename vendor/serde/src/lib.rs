//! Minimal in-tree substitute for `serde`.
//!
//! The build container has no network access, so this crate provides the
//! small serialization surface the workspace actually uses: a generic
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits implemented
//! for the standard types appearing in workspace structs, and re-exported
//! derive macros from the sibling `serde_derive` substitute. The JSON
//! front-end lives in the vendored `serde_json`.
//!
//! The trait shapes are intentionally simpler than real serde (no visitor
//! machinery); round-tripping through [`Value`] is exact for every type the
//! workspace serializes.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Looks up a map entry by string key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// Error for a missing struct field.
    #[must_use]
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    /// Error for an unknown enum variant.
    #[must_use]
    pub fn unknown_variant(enum_name: &str, variant: &str) -> Self {
        Error(format!("unknown variant `{variant}` of `{enum_name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from the data model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value does not match the expected
    /// shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Helper used by the derive macro: deserializes one named field, treating
/// a missing key as [`Value::Null`] so `Option` fields default to `None`.
///
/// # Errors
///
/// Returns an [`Error`] when the field is missing (for non-optional types)
/// or has the wrong shape.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::deserialize(v),
        None => T::deserialize(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

/// Helper used by the derive macro: fetches the `index`-th element of a
/// sequence value.
///
/// # Errors
///
/// Returns an [`Error`] when the value is not a sequence or too short.
pub fn de_element(value: &Value, index: usize) -> Result<&Value, Error> {
    match value {
        Value::Seq(items) => items
            .get(index)
            .ok_or_else(|| Error::custom(format!("sequence too short (need index {index})"))),
        _ => Err(Error::custom("expected a sequence")),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(v) => {
                        let v = i64::try_from(*v)
                            .map_err(|_| Error::custom("integer out of range"))?;
                        <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
                    }
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::UInt(v) => Ok(*v as f64),
            Value::Int(v) => Ok(*v as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

// Identity impls so `Value` itself can be (de)serialized — tooling that
// inspects arbitrary JSON (trace validators, dashboards) parses into the
// data model directly.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected a sequence")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected an array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                Ok(($( $name::deserialize(de_element(value, $idx)?)?, )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((deserialize_key::<K>(k)?, V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected a map")),
        }
    }
}

/// Deserializes a map key, retrying string keys as numbers: the JSON
/// writer stringifies integer object keys (JSON keys must be strings), so
/// the reverse direction must accept `"42"` where an integer key type is
/// expected — mirroring real serde_json's key deserializer.
fn deserialize_key<K: Deserialize>(key: &Value) -> Result<K, Error> {
    match K::deserialize(key) {
        Ok(parsed) => Ok(parsed),
        Err(err) => {
            if let Value::Str(text) = key {
                if let Ok(number) = text.parse::<u64>() {
                    return K::deserialize(&Value::UInt(number));
                }
                if let Ok(number) = text.parse::<i64>() {
                    return K::deserialize(&Value::Int(number));
                }
            }
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&7u64.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&String::from("hi").serialize()).unwrap(),
            "hi"
        );
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&xs.serialize()).unwrap(), xs);
        let pair = (2u64, 0.5f64);
        assert_eq!(<(u64, f64)>::deserialize(&pair.serialize()).unwrap(), pair);
        let arr = [0.1f64, 0.2, 0.3];
        assert_eq!(<[f64; 3]>::deserialize(&arr.serialize()).unwrap(), arr);
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn maps_round_trip() {
        let mut map = BTreeMap::new();
        map.insert(String::from("a"), 1u64);
        map.insert(String::from("b"), 2u64);
        let value = map.serialize();
        assert_eq!(value.get("a"), Some(&Value::UInt(1)));
        assert_eq!(BTreeMap::<String, u64>::deserialize(&value).unwrap(), map);
    }
}
