//! Minimal in-tree substitute for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use: range and tuple strategies, `Just`, `prop_map`,
//! `prop_flat_map`, `prop_perturb`, `prop::collection::vec`, `bool::ANY`,
//! the `proptest!` macro with `ProptestConfig::with_cases`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test RNG; there is no shrinking — a failing case
//! panics with the ordinary assertion message.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG handed to strategies and `prop_perturb` closures.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test (deterministic per name).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through `f` with access to a fork of the RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        let fork = TestRng(StdRng::seed_from_u64(rng.next_u64()));
        (self.f)(value, fork)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy generating uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating `size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __strategy = ($($strategy,)+);
            for __case in 0..__config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                // Bodies may `return Ok(())` for an early exit, mirroring
                // real proptest's Result-returning test closures.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ()> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("unit");
        let strategy = (1usize..=4, 0u64..10);
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&strategy, &mut rng);
            assert!((1..=4).contains(&a));
            assert!(b < 10);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::deterministic("combinators");
        let strategy = (1usize..=3).prop_flat_map(|n| (Just(n), prop::collection::vec(0u64..5, n)));
        for _ in 0..50 {
            let (n, xs) = Strategy::generate(&strategy, &mut rng);
            assert_eq!(xs.len(), n);
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_cases(x in 0u64..100, y in 0u64..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }
    }

    #[test]
    fn macro_generated_test_runs() {
        macro_runs_cases();
    }
}
