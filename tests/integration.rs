//! Cross-crate integration tests: workload generation → analysis →
//! priority assignment → simulation.

use msmr_dca::{Analysis, DelayBoundKind};
use msmr_experiments::{evaluate_all, AcceptanceExperiment, Approach, EVALUATION_BOUND};
use msmr_model::JobId;
use msmr_sched::{Dcmp, Dmr, Opdca, OptPairwise, PairwiseIlp};
use msmr_sim::{PriorityMap, Simulator};
use msmr_workload::{EdgeWorkloadConfig, EdgeWorkloadGenerator};

fn small_edge_config() -> EdgeWorkloadConfig {
    EdgeWorkloadConfig::default()
        .with_jobs(24)
        .with_infrastructure(6, 5)
}

#[test]
fn opdca_orderings_hold_up_in_simulation() {
    // Whenever OPDCA accepts a generated edge test case, executing the
    // ordering on the discrete-event simulator must meet every end-to-end
    // deadline, and the simulated delay never exceeds the analytical bound.
    let generator = EdgeWorkloadGenerator::new(small_edge_config()).unwrap();
    let mut accepted_cases = 0;
    for seed in 0..12 {
        let jobs = generator.generate_seeded(seed);
        let analysis = Analysis::new(&jobs);
        let Ok(result) = Opdca::new(EVALUATION_BOUND).assign_with_analysis(&analysis) else {
            continue;
        };
        accepted_cases += 1;
        let priorities = PriorityMap::from_global_order(&jobs, result.ordering().as_slice());
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert!(
            outcome.all_deadlines_met(),
            "seed {seed}: OPDCA-accepted case missed a deadline in simulation"
        );
        for job in jobs.job_ids() {
            assert!(
                outcome.delay(job) <= result.delay(job),
                "seed {seed}: simulated delay of {job} exceeds the DCA bound"
            );
        }
    }
    assert!(
        accepted_cases > 0,
        "no test case was accepted; generator too heavy"
    );
}

#[test]
fn dmr_assignments_hold_up_in_simulation_when_linearisable() {
    // A DMR pairwise assignment that can be linearised per resource is
    // executable; the simulated delays must respect the deadlines.
    let generator = EdgeWorkloadGenerator::new(small_edge_config()).unwrap();
    let mut simulated = 0;
    for seed in 0..12 {
        let jobs = generator.generate_seeded(seed);
        let Ok(assignment) = Dmr::new(EVALUATION_BOUND).assign(&jobs) else {
            continue;
        };
        let Ok(values) = assignment.to_stage_priority_values(&jobs) else {
            continue; // cyclic across resources: not executable as-is
        };
        let priorities = PriorityMap::from_values(&jobs, values);
        let outcome = Simulator::new(&jobs).run(&priorities);
        assert!(
            outcome.all_deadlines_met(),
            "seed {seed}: DMR-accepted case missed a deadline in simulation"
        );
        simulated += 1;
    }
    assert!(simulated > 0);
}

#[test]
fn approach_dominance_holds_on_generated_workloads() {
    // OPT accepts every case OPDCA or DMR accepts (it is optimal for
    // problem P2, and both produce feasible pairwise assignments).
    let generator = EdgeWorkloadGenerator::new(
        small_edge_config()
            .with_beta(0.2)
            .with_heavy_ratios([0.1, 0.1, 0.01]),
    )
    .unwrap();
    for seed in 0..10 {
        let jobs = generator.generate_seeded(seed);
        let verdicts = evaluate_all(&jobs, 100_000);
        let accepted = |a: Approach| {
            verdicts
                .iter()
                .find(|(x, _)| *x == a)
                .map(|(_, o)| o.is_accepted())
                .unwrap_or(false)
        };
        if accepted(Approach::Opdca) || accepted(Approach::Dmr) {
            assert!(accepted(Approach::Opt), "seed {seed}: OPT must dominate");
        }
    }
}

#[test]
fn acceptance_experiment_is_reproducible() {
    let experiment = AcceptanceExperiment::new(3, 99).with_opt_node_limit(50_000);
    let config = small_edge_config();
    let first = experiment.run(&config).unwrap();
    let second = experiment.run(&config).unwrap();
    assert_eq!(first.accepted, second.accepted);
    assert_eq!(first.opt_undecided, second.opt_undecided);
}

#[test]
fn dcmp_baseline_runs_and_reports_consistent_outcomes() {
    let generator = EdgeWorkloadGenerator::new(small_edge_config()).unwrap();
    let jobs = generator.generate_seeded(5);
    let outcome = Dcmp::new().evaluate(&jobs);
    // Virtual deadlines of every job sum approximately to its end-to-end
    // deadline (up to rounding), never above it by more than one tick per
    // stage.
    for job in jobs.jobs() {
        let total: u64 = (0..jobs.stage_count())
            .map(|j| outcome.virtual_deadlines[job.id().index()][j].as_ticks())
            .sum();
        let deadline = job.deadline().as_ticks();
        assert!(total <= deadline + jobs.stage_count() as u64);
        assert!(total + jobs.stage_count() as u64 >= deadline);
    }
    // Acceptance implies no end-to-end miss in the simulation.
    if outcome.accepted {
        assert!(outcome.simulation.all_deadlines_met());
    }
}

#[test]
fn exact_engines_agree_on_a_small_edge_instance() {
    let config = EdgeWorkloadConfig::default()
        .with_jobs(8)
        .with_infrastructure(3, 2)
        .with_beta(0.2);
    let generator = EdgeWorkloadGenerator::new(config).unwrap();
    for seed in 0..5 {
        let jobs = generator.generate_seeded(seed);
        let analysis = Analysis::new(&jobs);
        let search =
            OptPairwise::new(DelayBoundKind::RefinedPreemptive).assign_with_analysis(&analysis);
        let ilp =
            PairwiseIlp::new(DelayBoundKind::RefinedPreemptive).assign_with_analysis(&analysis);
        assert!(search.is_conclusive() && ilp.is_conclusive());
        assert_eq!(search.is_feasible(), ilp.is_feasible(), "seed {seed}");
    }
}

#[test]
fn admission_controllers_accept_a_superset_relationship() {
    // The admission controllers never reject jobs from a case the plain
    // algorithm accepts outright.
    let generator = EdgeWorkloadGenerator::new(small_edge_config()).unwrap();
    for seed in 0..8 {
        let jobs = generator.generate_seeded(seed);
        if Opdca::new(EVALUATION_BOUND).assign(&jobs).is_ok() {
            let outcome = Opdca::new(EVALUATION_BOUND).admission_control(&jobs);
            assert!(outcome.rejected.is_empty(), "seed {seed}");
            assert_eq!(outcome.accepted.len(), jobs.len());
        }
        if Dmr::new(EVALUATION_BOUND).assign(&jobs).is_ok() {
            let outcome = Dmr::new(EVALUATION_BOUND).admission_control(&jobs);
            assert!(outcome.rejected.is_empty(), "seed {seed}");
        }
    }
}

#[test]
fn rejected_jobs_are_never_part_of_the_final_ordering() {
    let generator =
        EdgeWorkloadGenerator::new(small_edge_config().with_beta(0.25).with_gamma(0.9)).unwrap();
    let jobs = generator.generate_seeded(2);
    let outcome = Opdca::new(EVALUATION_BOUND).admission_control(&jobs);
    for &job in &outcome.rejected {
        assert!(outcome.ordering.priority_of(job).is_none());
        assert!(!outcome.accepted.contains(&job));
    }
    for &job in &outcome.accepted {
        assert!(outcome.ordering.priority_of(job).is_some());
    }
    let all: Vec<JobId> = outcome
        .accepted
        .iter()
        .chain(outcome.rejected.iter())
        .copied()
        .collect();
    assert_eq!(all.len(), jobs.len());
}
