//! End-to-end reproductions of the concrete scenarios discussed in the
//! paper's text: Example 1, Observations IV.2 and V.1, Figure 1 and
//! Figure 2.

use msmr_dca::{Analysis, DelayBoundKind, InterferenceSets};
use msmr_model::{JobId, JobSet, JobSetBuilder, PreemptionPolicy, Time};
use msmr_sched::{Dm, Opdca, OptPairwise, PairwiseAssignment, PairwiseIlp, Sdca};

fn jid(i: usize) -> JobId {
    JobId::new(i)
}

/// Example 1: three-stage single-resource pipeline, four jobs with stage
/// processing times ⟨5,7,15⟩, ⟨7,9,17⟩, ⟨6,8,30⟩, ⟨2,4,3⟩.
fn example1(deadlines: [u64; 4]) -> JobSet {
    let mut b = JobSetBuilder::new();
    b.stage("s1", 1, PreemptionPolicy::NonPreemptive)
        .stage("s2", 1, PreemptionPolicy::NonPreemptive)
        .stage("s3", 1, PreemptionPolicy::NonPreemptive);
    let times = [[5u64, 7, 15], [7, 9, 17], [6, 8, 30], [2, 4, 3]];
    for (t, d) in times.iter().zip(deadlines) {
        b.job()
            .deadline(Time::new(d))
            .stage_time(Time::new(t[0]), 0)
            .stage_time(Time::new(t[1]), 0)
            .stage_time(Time::new(t[2]), 0)
            .add()
            .unwrap();
    }
    b.build().unwrap()
}

/// The Observation V.1 system: Example 1 processing times, the Figure 2(a)
/// mapping onto two resources per stage, deadlines {60, 55, 55, 50}.
fn observation_v1() -> JobSet {
    let mut b = JobSetBuilder::new();
    b.stage("s1", 2, PreemptionPolicy::Preemptive)
        .stage("s2", 2, PreemptionPolicy::Preemptive)
        .stage("s3", 2, PreemptionPolicy::Preemptive);
    let rows: [([u64; 3], [usize; 3], u64); 4] = [
        ([5, 7, 15], [0, 1, 1], 60),
        ([7, 9, 17], [1, 1, 1], 55),
        ([6, 8, 30], [0, 0, 0], 55),
        ([2, 4, 3], [1, 0, 0], 50),
    ];
    for (times, resources, deadline) in rows {
        b.job()
            .deadline(Time::new(deadline))
            .stage_time(Time::new(times[0]), resources[0])
            .stage_time(Time::new(times[1]), resources[1])
            .stage_time(Time::new(times[2]), resources[2])
            .add()
            .unwrap();
    }
    b.build().unwrap()
}

#[test]
fn observation_iv2_example1_delay_drops_after_a_priority_swap() {
    // Under Eq. 2, Δ_2 = 92 for the ordering J1 > J2 > J3 > J4 and drops
    // to 87 after swapping J2 and J3 — the OPA-incompatibility witness.
    let jobs = example1([1_000; 4]);
    let analysis = Analysis::new(&jobs);
    let before = InterferenceSets::from_total_order(&[jid(0), jid(1), jid(2), jid(3)], jid(1));
    let after = InterferenceSets::from_total_order(&[jid(0), jid(2), jid(1), jid(3)], jid(1));
    assert_eq!(
        analysis.non_preemptive_single_resource_bound(jid(1), &before),
        Time::new(92)
    );
    assert_eq!(
        analysis.non_preemptive_single_resource_bound(jid(1), &after),
        Time::new(87)
    );
    // The OPA-compatible Eq. 5 does not decrease under the same swap.
    assert!(
        analysis.non_preemptive_opa_bound(jid(1), &after)
            >= analysis.non_preemptive_opa_bound(jid(1), &before)
    );
}

#[test]
fn footnote9_deadline_monotonic_pushes_j1_to_the_lowest_priority() {
    // Footnote 9: with D1 = 60 (the largest deadline of the set) the
    // deadline-monotonic rule gives J1 the lowest priority and Eq. 1
    // yields Δ_1 = 82 > 60.
    let jobs = example1([60, 55, 55, 50]);
    let analysis = Analysis::new(&jobs);
    let dm = Dm::new(DelayBoundKind::PreemptiveSingleResource).assign(&jobs);
    // Every other job outranks J1 under DM.
    for k in 1..4 {
        assert!(dm.is_higher(jid(k), jid(0)));
    }
    let delays = dm.delays(&analysis, DelayBoundKind::PreemptiveSingleResource);
    assert_eq!(delays[0], Time::new(82));
    assert!(!dm.is_feasible(&analysis, DelayBoundKind::PreemptiveSingleResource));
    // In this single-resource variant the lowest-priority slot costs 82
    // time units for *any* job, so no ordering exists either — Audsley's
    // algorithm agrees.
    assert!(Opdca::new(DelayBoundKind::PreemptiveSingleResource)
        .assign(&jobs)
        .is_err());
}

#[test]
fn observation_v1_no_ordering_but_a_pairwise_assignment_exists() {
    let jobs = observation_v1();
    let analysis = Analysis::new(&jobs);
    let bound = DelayBoundKind::RefinedPreemptive;

    // P1 is infeasible: no total priority ordering passes S_DCA.
    assert!(Opdca::new(bound).assign(&jobs).is_err());

    // P2 is feasible: both exact engines find a pairwise assignment, and it
    // matches Figure 2(b) (up to the symmetric reverse cycle).
    let search = OptPairwise::new(bound).assign(&jobs);
    let assignment = search.assignment().expect("feasible per Observation V.1");
    assert!(assignment.is_feasible(&analysis, bound));
    let ilp = PairwiseIlp::new(bound).assign(&jobs);
    assert!(ilp.is_feasible());

    // The Figure 2(b) assignment itself yields the delays computed in the
    // analysis crate's tests: 34, 55, 51, 22.
    let mut fig2b = PairwiseAssignment::new();
    fig2b.set_higher(jid(2), jid(0));
    fig2b.set_higher(jid(0), jid(1));
    fig2b.set_higher(jid(1), jid(3));
    fig2b.set_higher(jid(3), jid(2));
    assert_eq!(
        fig2b.delays(&analysis, bound),
        vec![Time::new(34), Time::new(55), Time::new(51), Time::new(22)]
    );
}

#[test]
fn observation_v1_admission_controller_salvages_most_jobs() {
    // Running OPDCA as an admission controller on the Observation V.1 set
    // schedules three of the four jobs.
    let jobs = observation_v1();
    let outcome = Opdca::new(DelayBoundKind::RefinedPreemptive).admission_control(&jobs);
    assert_eq!(outcome.rejected.len(), 1);
    assert_eq!(outcome.accepted.len(), 3);
}

#[test]
fn figure1_job_additive_terms_depend_on_segment_structure() {
    // Figure 1: J_b's interference on J_i grows from zero (no shared
    // resource) to one term (single-stage segment), two terms (two-stage
    // segment) and three terms (one single-stage plus one two-stage
    // segment).
    let build = |jb_resources: [usize; 4]| -> JobSet {
        let mut b = JobSetBuilder::new();
        b.stage("s1", 2, PreemptionPolicy::Preemptive)
            .stage("s2", 2, PreemptionPolicy::Preemptive)
            .stage("s3", 2, PreemptionPolicy::Preemptive)
            .stage("s4", 2, PreemptionPolicy::Preemptive);
        // J_i uses resource 0 everywhere.
        b.job()
            .deadline(Time::new(1_000))
            .stage_time(Time::new(10), 0)
            .stage_time(Time::new(10), 0)
            .stage_time(Time::new(10), 0)
            .stage_time(Time::new(10), 0)
            .add()
            .unwrap();
        // J_b's mapping varies per scenario.
        b.job()
            .deadline(Time::new(1_000))
            .stage_time(Time::new(7), jb_resources[0])
            .stage_time(Time::new(7), jb_resources[1])
            .stage_time(Time::new(7), jb_resources[2])
            .stage_time(Time::new(7), jb_resources[3])
            .add()
            .unwrap();
        b.build().unwrap()
    };
    let interference = |jobs: &JobSet| -> u64 {
        let analysis = Analysis::new(jobs);
        let alone = analysis
            .refined_preemptive_bound(jid(0), &InterferenceSets::default())
            .as_ticks();
        let with_b = analysis
            .refined_preemptive_bound(jid(0), &InterferenceSets::new([jid(1)], []))
            .as_ticks();
        with_b - alone
    };
    // (a) no shared stage: no interference.
    assert_eq!(interference(&build([1, 1, 1, 1])), 0);
    // (b) one single-stage segment: one job-additive term (7) — the shared
    // stage's stage-additive maximum stays at 10.
    assert_eq!(interference(&build([1, 0, 1, 1])), 7);
    // (c) one two-stage segment: two job-additive terms.
    assert_eq!(interference(&build([1, 0, 0, 1])), 14);
    // (e) a single-stage and a two-stage segment: three terms.
    assert_eq!(interference(&build([0, 1, 0, 0])), 21);
}

#[test]
fn sdca_constructors_match_the_paper_defaults() {
    assert!(Sdca::preemptive().is_opa_compatible());
    assert!(Sdca::non_preemptive().is_opa_compatible());
    assert!(Sdca::edge().is_opa_compatible());
    assert_eq!(Sdca::preemptive().bound().equation(), 6);
    assert_eq!(Sdca::non_preemptive().bound().equation(), 5);
    assert_eq!(Sdca::edge().bound().equation(), 10);
}
