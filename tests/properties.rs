//! Property-based tests spanning the analysis, the scheduler and the
//! simulator.
//!
//! The central soundness property is that the delay composition bounds of
//! `msmr-dca` dominate the delays observed by the discrete-event simulator
//! for the corresponding scheduling policy; the central OPA properties are
//! the three compatibility conditions of §III-B.

use msmr_dca::{Analysis, DelayBoundKind, InterferenceSets};
use msmr_model::{JobId, JobSet, PreemptionPolicy};
use msmr_sched::{Opdca, PairwiseAssignment, PriorityOrdering};
use msmr_sim::{PriorityMap, Simulator};
use msmr_workload::{RandomMsmrConfig, RandomMsmrGenerator};
use proptest::prelude::*;

/// Strategy: a random MSMR job set plus a random total priority order.
fn jobset_and_order(
    preemption: PreemptionPolicy,
    arrivals: (u64, u64),
) -> impl Strategy<Value = (JobSet, Vec<JobId>)> {
    (0u64..10_000, Just(preemption), Just(arrivals)).prop_flat_map(
        |(seed, preemption, arrivals)| {
            let generator = RandomMsmrGenerator::new(RandomMsmrConfig {
                jobs: (2, 7),
                stages: (2, 4),
                resources_per_stage: (1, 3),
                processing: (1, 15),
                arrivals,
                deadline_factor: (1.0, 5.0),
                preemption,
            })
            .expect("valid generator configuration");
            let jobs = generator.generate_seeded(seed);
            let n = jobs.len();
            (
                Just(jobs),
                Just(()).prop_perturb(move |(), mut rng| {
                    let mut order: Vec<JobId> = (0..n).map(JobId::new).collect();
                    // Fisher-Yates with the proptest RNG for shrink-friendliness.
                    for i in (1..n).rev() {
                        let j = (rng.next_u64() as usize) % (i + 1);
                        order.swap(i, j);
                    }
                    order
                }),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simulated end-to-end delays never exceed the refined preemptive
    /// bound (Eq. 6) under any total priority ordering with synchronous
    /// release.
    #[test]
    fn eq6_dominates_preemptive_simulation(
        (jobs, order) in jobset_and_order(PreemptionPolicy::Preemptive, (0, 0))
    ) {
        let analysis = Analysis::new(&jobs);
        let priorities = PriorityMap::from_global_order(&jobs, &order);
        let outcome = Simulator::new(&jobs).run(&priorities);
        for &job in &order {
            let ctx = InterferenceSets::from_total_order(&order, job);
            let bound = analysis.refined_preemptive_bound(job, &ctx);
            prop_assert!(
                outcome.delay(job) <= bound,
                "{job}: simulated {} > bound {}", outcome.delay(job), bound
            );
        }
    }

    /// The same dominance holds for the per-segment preemptive bound
    /// (Eq. 3), which is never tighter than Eq. 6.
    #[test]
    fn eq3_dominates_eq6(
        (jobs, order) in jobset_and_order(PreemptionPolicy::Preemptive, (0, 0))
    ) {
        let analysis = Analysis::new(&jobs);
        for &job in &order {
            let ctx = InterferenceSets::from_total_order(&order, job);
            prop_assert!(
                analysis.preemptive_msmr_bound(job, &ctx)
                    >= analysis.refined_preemptive_bound(job, &ctx)
            );
        }
    }

    /// Simulated delays never exceed the OPA-compatible non-preemptive
    /// bound (Eq. 5) under fully non-preemptive execution with synchronous
    /// release; Eq. 5 in turn dominates Eq. 4.
    #[test]
    fn eq5_dominates_non_preemptive_simulation(
        (jobs, order) in jobset_and_order(PreemptionPolicy::NonPreemptive, (0, 0))
    ) {
        let analysis = Analysis::new(&jobs);
        let priorities = PriorityMap::from_global_order(&jobs, &order);
        let outcome = Simulator::new(&jobs).run(&priorities);
        for &job in &order {
            let ctx = InterferenceSets::from_total_order(&order, job);
            let eq5 = analysis.non_preemptive_opa_bound(job, &ctx);
            let eq4 = analysis.non_preemptive_msmr_bound(job, &ctx);
            prop_assert!(eq5 >= eq4);
            prop_assert!(
                outcome.delay(job) <= eq5,
                "{job}: simulated {} > Eq.5 bound {}", outcome.delay(job), eq5
            );
        }
    }

    /// OPA-compatibility condition 1/2: the bound value depends only on
    /// the *sets* of higher- and lower-priority jobs, never on the order
    /// in which they are supplied — verified by permuting the order used
    /// to construct the sets.
    #[test]
    fn compatible_bounds_ignore_relative_order_of_higher_jobs(
        (jobs, order) in jobset_and_order(PreemptionPolicy::Preemptive, (0, 4))
    ) {
        let analysis = Analysis::new(&jobs);
        let target = *order.last().expect("non-empty");
        let mut shuffled = order.clone();
        shuffled[..order.len() - 1].reverse();
        for kind in [
            DelayBoundKind::RefinedPreemptive,
            DelayBoundKind::NonPreemptiveOpa,
            DelayBoundKind::EdgeHybrid,
            DelayBoundKind::PreemptiveMsmr,
        ] {
            let a = analysis.delay_bound(kind, target, &InterferenceSets::from_total_order(&order, target));
            let b = analysis.delay_bound(kind, target, &InterferenceSets::from_total_order(&shuffled, target));
            prop_assert_eq!(a, b, "{} changed under a permutation of H_i", kind);
        }
    }

    /// OPA-compatibility condition 3 (monotonicity): moving a job from the
    /// lower-priority side to the higher-priority side never decreases the
    /// bound of the target, for every OPA-compatible bound.
    #[test]
    fn compatible_bounds_are_monotone_in_higher_set(
        (jobs, order) in jobset_and_order(PreemptionPolicy::Preemptive, (0, 3))
    ) {
        let analysis = Analysis::new(&jobs);
        let target = order[0];
        let others: Vec<JobId> = order[1..].to_vec();
        for kind in DelayBoundKind::all() {
            if !kind.is_opa_compatible() {
                continue;
            }
            let mut previous = analysis.delay_bound(
                kind,
                target,
                &InterferenceSets::new([], others.clone()),
            );
            for split in 1..=others.len() {
                let ctx = InterferenceSets::new(
                    others[..split].to_vec(),
                    others[split..].to_vec(),
                );
                let current = analysis.delay_bound(kind, target, &ctx);
                prop_assert!(
                    current >= previous,
                    "{kind}: promoting a job decreased the bound"
                );
                previous = current;
            }
        }
    }

    /// Audsley optimality: whenever a randomly drawn total ordering is
    /// feasible under Eq. 6, OPDCA also finds a feasible ordering.
    #[test]
    fn opdca_finds_an_ordering_whenever_the_random_one_works(
        (jobs, order) in jobset_and_order(PreemptionPolicy::Preemptive, (0, 0))
    ) {
        let analysis = Analysis::new(&jobs);
        let ordering = PriorityOrdering::new(order.clone());
        let random_is_feasible = order.iter().all(|&job| {
            let ctx = ordering.interference_sets(job);
            analysis.refined_preemptive_bound(job, &ctx) <= jobs.job(job).deadline()
        });
        if random_is_feasible {
            prop_assert!(
                Opdca::new(DelayBoundKind::RefinedPreemptive)
                    .assign_with_analysis(&analysis)
                    .is_ok()
            );
        }
    }

    /// A pairwise assignment derived from a total ordering is never better
    /// than the ordering itself: its per-job delays coincide with the
    /// ordering's delays.
    #[test]
    fn ordering_induced_pairwise_assignment_preserves_delays(
        (jobs, order) in jobset_and_order(PreemptionPolicy::Preemptive, (0, 0))
    ) {
        let analysis = Analysis::new(&jobs);
        let ordering = PriorityOrdering::new(order.clone());
        let assignment = PairwiseAssignment::from_ordering(&jobs, &ordering);
        for &job in &order {
            let via_ordering = analysis.refined_preemptive_bound(
                job,
                &ordering.interference_sets(job),
            );
            let via_pairwise = analysis.refined_preemptive_bound(
                job,
                &assignment.interference_sets(&jobs, job),
            );
            prop_assert_eq!(via_ordering, via_pairwise);
        }
    }

    /// Work conservation and resource exclusivity in the simulator: every
    /// job executes exactly its demand and no two slices overlap on one
    /// resource.
    #[test]
    fn simulator_trace_invariants(
        (jobs, order) in jobset_and_order(PreemptionPolicy::NonPreemptive, (0, 8))
    ) {
        let priorities = PriorityMap::from_global_order(&jobs, &order);
        let outcome = Simulator::new(&jobs).run(&priorities);
        for job in jobs.jobs() {
            prop_assert_eq!(outcome.executed_time(job.id()), job.total_processing());
            prop_assert!(outcome.completion(job.id()) >= job.arrival());
        }
        let trace = outcome.trace();
        for (i, a) in trace.iter().enumerate() {
            for b in &trace[i + 1..] {
                if a.resource == b.resource {
                    prop_assert!(!a.overlaps(b));
                }
            }
        }
    }
}
